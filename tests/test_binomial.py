"""Tests for binomial coefficient helpers."""

import math

import numpy as np

from repro.core.binomial import DEFAULT_TABLE_SIZE, PascalTable, nCk, nck_array


class TestNck:
    def test_matches_math_comb_in_table(self):
        for n in range(0, DEFAULT_TABLE_SIZE):
            for k in range(0, n + 1):
                assert nCk(n, k) == math.comb(n, k)

    def test_out_of_range_zero(self):
        assert nCk(5, 6) == 0
        assert nCk(5, -1) == 0

    def test_beyond_table_exact(self):
        assert nCk(200, 17) == math.comb(200, 17)
        assert nCk(100_000, 5) == math.comb(100_000, 5)

    def test_custom_table_size(self):
        t = PascalTable(4)
        assert t.nck(3, 2) == 3
        assert t.nck(10, 4) == 210  # falls back to math.comb


class TestNckArray:
    def test_matches_scalar(self):
        n = np.arange(0, 40)
        for k in range(0, 8):
            expect = [math.comb(int(x), k) for x in n]
            assert nck_array(n, k).tolist() == expect

    def test_below_k_is_zero(self):
        assert nck_array(np.array([0, 1, 2]), 3).tolist() == [0, 0, 0]

    def test_negative_k(self):
        assert nck_array(np.array([4, 5]), -1).tolist() == [0, 0]

    def test_exactness_within_float_range(self):
        # C(10^5, 3) ~ 1.7e14 < 2^53: must be exactly representable
        n = np.array([100_000])
        assert int(nck_array(n, 3)[0]) == math.comb(100_000, 3)
