"""Property-based tests (hypothesis) on the core data structures and the
counting invariants."""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import count_subgraphs
from repro.baselines.vf2 import count_vf2
from repro.core.fringe_count import fc_iterative, fc_recursive
from repro.core.fringe_poly import compile_fringe_polynomial
from repro.core.venn import venn_hash, venn_merge, venn_sorted
from repro.graph.csr import CSRGraph
from repro.patterns.pattern import Pattern

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def graph_edges(draw, max_n=12):
    n = draw(st.integers(min_value=2, max_value=max_n))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    mask = draw(st.lists(st.booleans(), min_size=len(pairs), max_size=len(pairs)))
    edges = [p for p, m in zip(pairs, mask) if m]
    return n, edges


@st.composite
def connected_pattern(draw, max_n=5):
    n = draw(st.integers(min_value=2, max_value=max_n))
    # random spanning tree + random extra edges ensures connectivity
    edges = set()
    for v in range(1, n):
        u = draw(st.integers(min_value=0, max_value=v - 1))
        edges.add((u, v))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n) if (i, j) not in edges]
    for p in pairs:
        if draw(st.booleans()):
            edges.add(p)
    return Pattern.from_edges(sorted(edges), n=n)


# ----------------------------------------------------------------------
# CSR invariants
# ----------------------------------------------------------------------
class TestCSRProperties:
    @SETTINGS
    @given(graph_edges())
    def test_csr_invariants(self, ne):
        n, edges = ne
        g = CSRGraph.from_edges(edges, num_vertices=n)
        assert g.rowptr[0] == 0 and g.rowptr[-1] == len(g.colidx)
        assert int(g.degrees.sum()) == 2 * g.num_edges
        for v in range(n):
            adj = g.neighbors(v)
            assert np.all(np.diff(adj) > 0)
            for w in adj.tolist():
                assert g.has_edge(w, v)  # symmetry

    @SETTINGS
    @given(graph_edges())
    def test_edge_array_round_trip(self, ne):
        n, edges = ne
        g = CSRGraph.from_edges(edges, num_vertices=n)
        g2 = CSRGraph.from_edges(g.edge_array(), num_vertices=n)
        assert g == g2


# ----------------------------------------------------------------------
# Venn invariants
# ----------------------------------------------------------------------
class TestVennProperties:
    @SETTINGS
    @given(graph_edges(max_n=10), st.data())
    def test_impls_agree_and_total_is_union(self, ne, data):
        n, edges = ne
        g = CSRGraph.from_edges(edges, num_vertices=n)
        q = data.draw(st.integers(min_value=1, max_value=min(3, n)))
        anchors = data.draw(
            st.lists(st.integers(0, n - 1), min_size=q, max_size=q, unique=True)
        )
        a = venn_hash(g, anchors, anchors)
        assert venn_sorted(g, anchors, anchors) == a
        assert venn_merge(g, anchors, anchors) == a
        union = set()
        for v in anchors:
            union.update(g.neighbors(v).tolist())
        union -= set(anchors)
        assert sum(a) == len(union)


# ----------------------------------------------------------------------
# fc / polynomial invariants
# ----------------------------------------------------------------------
class TestFringeCountProperties:
    @SETTINGS
    @given(st.data())
    def test_fc_impls_and_polynomial_agree(self, data):
        q = data.draw(st.integers(min_value=1, max_value=3))
        full = (1 << q) - 1
        s = data.draw(st.integers(min_value=1, max_value=min(3, full)))
        anch = sorted(
            data.draw(
                st.lists(st.integers(1, full), min_size=s, max_size=s, unique=True)
            )
        )
        k = data.draw(st.lists(st.integers(1, 3), min_size=s, max_size=s))
        venn = [0] + data.draw(
            st.lists(st.integers(0, 7), min_size=full, max_size=full)
        )
        a = fc_recursive(list(venn), anch, k, q)
        b = fc_iterative(list(venn), anch, k, q)
        poly = compile_fringe_polynomial(anch, k, q)
        c = poly.evaluate(venn)
        d = poly.evaluate_batch(np.asarray([venn], dtype=np.int64))
        assert a == b == c == d
        assert a >= 0

    @SETTINGS
    @given(st.data())
    def test_fc_monotone_in_venn(self, data):
        """Adding vertices to any region cannot decrease the count."""
        q = data.draw(st.integers(min_value=1, max_value=2))
        full = (1 << q) - 1
        anch = [data.draw(st.integers(1, full))]
        k = [data.draw(st.integers(1, 3))]
        venn = [0] + data.draw(st.lists(st.integers(0, 5), min_size=full, max_size=full))
        base = fc_recursive(list(venn), anch, k, q)
        bumped = list(venn)
        idx = data.draw(st.integers(1, full))
        bumped[idx] += 1
        assert fc_recursive(bumped, anch, k, q) >= base


# ----------------------------------------------------------------------
# end-to-end counting invariants
# ----------------------------------------------------------------------
class TestCountingProperties:
    @SETTINGS
    @given(graph_edges(max_n=9), connected_pattern(max_n=4))
    def test_matches_brute_force(self, ne, pat):
        n, edges = ne
        g = CSRGraph.from_edges(edges, num_vertices=n)
        assert count_subgraphs(g, pat).count == count_vf2(g, pat)

    @SETTINGS
    @given(graph_edges(max_n=8), connected_pattern(max_n=4))
    def test_count_invariant_under_graph_relabeling(self, ne, pat):
        n, edges = ne
        g = CSRGraph.from_edges(edges, num_vertices=n)
        relabeled = g.relabel_by_degree()
        assert count_subgraphs(g, pat).count == count_subgraphs(relabeled, pat).count

    @SETTINGS
    @given(connected_pattern(max_n=5))
    def test_pattern_in_itself(self, pat):
        g = CSRGraph.from_edges(pat.edges(), num_vertices=pat.n)
        assert count_subgraphs(g, pat).count == 1

    @SETTINGS
    @given(graph_edges(max_n=9))
    def test_star_closed_form(self, ne):
        n, edges = ne
        g = CSRGraph.from_edges(edges, num_vertices=n)
        from repro.patterns import catalog

        for k in (2, 3):
            expect = sum(math.comb(int(d), k) for d in g.degrees)
            assert count_subgraphs(g, catalog.star(k)).count == expect
