"""Tests for the compiled fringe polynomial (closed form of fc)."""

import random

import numpy as np

from repro.core.fringe_count import fc_recursive
from repro.core.fringe_poly import _crt, _RNS_PRIMES, compile_fringe_polynomial


class TestEquivalenceWithFc:
    def test_random_configs(self):
        rng = random.Random(21)
        for _ in range(120):
            q = rng.randint(1, 3)
            full = (1 << q) - 1
            s = rng.randint(1, min(3, full))
            anch = sorted(rng.sample(range(1, full + 1), s))
            k = [rng.randint(1, 3) for _ in range(s)]
            poly = compile_fringe_polynomial(anch, k, q)
            for _ in range(4):
                venn = [0] + [rng.randint(0, 8) for _ in range(full)]
                assert poly.evaluate(venn) == fc_recursive(list(venn), anch, k, q)

    def test_no_types(self):
        poly = compile_fringe_polynomial((), (), 2)
        assert poly.evaluate([0, 5, 5, 5]) == 1
        assert poly.evaluate_batch(np.zeros((3, 4), dtype=np.int64)) == 3


class TestBatchEvaluation:
    def test_batch_equals_scalar_sum_small(self):
        poly = compile_fringe_polynomial([0b01, 0b11], [2, 1], 2)
        venns = np.random.default_rng(0).integers(0, 10, size=(500, 4))
        expect = sum(poly.evaluate([int(x) for x in row]) for row in venns)
        assert poly.evaluate_batch(venns) == expect

    def test_batch_equals_scalar_sum_huge_values(self):
        """Values far beyond float64 exactness must take the RNS path."""
        poly = compile_fringe_polynomial([0b001, 0b011, 0b111], [4, 3, 3], 3)
        venns = np.random.default_rng(1).integers(50, 400, size=(40, 8))
        expect = sum(poly.evaluate([int(x) for x in row]) for row in venns)
        got = poly.evaluate_batch(venns)
        assert got == expect
        assert got > 2**53  # confirms this exercised the exact path

    def test_empty_batch(self):
        poly = compile_fringe_polynomial([1], [1], 1)
        assert poly.evaluate_batch(np.zeros((0, 2), dtype=np.int64)) == 0

    def test_zero_venn(self):
        poly = compile_fringe_polynomial([1], [2], 1)
        assert poly.evaluate_batch(np.zeros((5, 2), dtype=np.int64)) == 0


class TestStructure:
    def test_single_type_single_region(self):
        poly = compile_fringe_polynomial([0b11], [3], 2)
        # only the top region covers {u, v}: one term, weight 1
        assert poly.num_terms == 1
        assert poly.weights == (1,)

    def test_tail_type_region_count(self):
        poly = compile_fringe_polynomial([0b01], [1], 2)
        # one tail from either {u} or {u, v} region: two terms
        assert poly.num_terms == 2

    def test_weights_positive(self):
        poly = compile_fringe_polynomial([0b01, 0b10, 0b11], [2, 2, 2], 2)
        assert all(w > 0 for w in poly.weights)


class TestRNSInternals:
    def test_primes_are_prime_and_distinct(self):
        assert len(set(_RNS_PRIMES)) == len(_RNS_PRIMES) == 24
        for p in _RNS_PRIMES[:5]:
            assert all(p % d for d in range(2, int(p**0.5) + 1))
            assert p < 1 << 30

    def test_crt_round_trip(self):
        rng = random.Random(5)
        primes = list(_RNS_PRIMES[:6])
        modulus = 1
        for p in primes:
            modulus *= p
        for _ in range(20):
            x = rng.randrange(modulus)
            residues = [x % p for p in primes]
            assert _crt(residues, primes) == x


class TestHornerEvaluation:
    def test_matches_flat_random(self):
        import numpy as np

        rng = random.Random(31)
        for _ in range(40):
            q = rng.randint(1, 3)
            full = (1 << q) - 1
            s = rng.randint(1, min(3, full))
            anch = sorted(rng.sample(range(1, full + 1), s))
            k = [rng.randint(1, 3) for _ in range(s)]
            poly = compile_fringe_polynomial(anch, k, q)
            venns = np.random.default_rng(1).integers(0, 10, size=(32, 1 << q))
            assert np.allclose(
                poly._per_row_float(venns), poly.per_row_float_horner(venns)
            )

    def test_plan_covers_all_terms(self):
        poly = compile_fringe_polynomial([0b01, 0b11], [3, 2], 2)
        plan = poly.horner_plan()
        assert sorted(t for _, t in plan) == list(range(poly.num_terms))
        assert plan[0][0] == 0  # first term has no prefix to share

    def test_no_regions(self):
        import numpy as np

        poly = compile_fringe_polynomial((), (), 1)
        out = poly.per_row_float_horner(np.zeros((4, 2), dtype=np.int64))
        assert out.tolist() == [1.0] * 4
