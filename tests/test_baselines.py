"""Tests for the baseline SGC implementations (STMatch/GraphSet/T-DFS
stand-ins and the VF2 ground truth)."""

import pytest

from repro.baselines import (
    BaselineTimeout,
    IEPCounter,
    StackEnumerator,
    TDFSCounter,
    count_enumerator,
    count_iep,
    count_tdfs,
    count_vf2,
)
from repro.baselines.iep import signed_stirling_first
from repro.graph import generators as gen
from repro.patterns import catalog
from repro.patterns.pattern import all_connected_patterns


ALL_BASELINES = [count_enumerator, count_iep, count_tdfs]
BASELINE_IDS = ["stmatch-like", "graphset-like", "tdfs-like"]


class TestAgreementWithGroundTruth:
    @pytest.mark.parametrize("count_fn", ALL_BASELINES, ids=BASELINE_IDS)
    def test_fig1_patterns(self, small_graphs, count_fn):
        for name, pat in catalog.fig1_patterns().items():
            for g in small_graphs[:4]:
                assert count_fn(g, pat).count == count_vf2(g, pat), name

    @pytest.mark.parametrize("count_fn", ALL_BASELINES, ids=BASELINE_IDS)
    def test_trivial_patterns(self, small_graphs, count_fn):
        for g in small_graphs[:3]:
            assert count_fn(g, catalog.single_vertex()).count == g.num_vertices
            assert count_fn(g, catalog.edge()).count == g.num_edges

    @pytest.mark.parametrize("n", [3, 4])
    def test_all_small_patterns(self, small_graphs, n):
        for pat in all_connected_patterns(n):
            for g in small_graphs[:3]:
                expect = count_vf2(g, pat)
                for fn in ALL_BASELINES:
                    assert fn(g, pat).count == expect


class TestPatternSizeLimits:
    def test_seven_vertex_limit_analogue(self):
        big = catalog.star(10)  # 11 vertices
        with pytest.raises(ValueError, match="supports patterns up to"):
            StackEnumerator(big)
        with pytest.raises(ValueError):
            TDFSCounter(big)

    def test_iep_limit_counts_remaining_vertices(self):
        # 11-vertex star: IEP eliminates all 10 spokes, leaving 1 vertex
        IEPCounter(catalog.star(10))  # fine
        # large clique: nothing eliminable below the limit
        with pytest.raises(ValueError):
            IEPCounter(catalog.clique(12))

    def test_custom_limit(self):
        StackEnumerator(catalog.star(10), max_vertices=11)


class TestTimeout:
    def test_enumerator_times_out(self):
        g = gen.kronecker(9, 16, seed=1)
        pat = catalog.star(6)
        with pytest.raises(BaselineTimeout):
            count_enumerator(g, pat, timeout_s=0.05)

    def test_timeout_metadata(self):
        g = gen.kronecker(9, 16, seed=1)
        try:
            count_enumerator(g, catalog.star(6), timeout_s=0.05)
        except BaselineTimeout as e:
            assert e.engine == "stmatch-like"
            assert e.budget_s == 0.05

    def test_no_timeout_when_budget_none(self, k5):
        assert count_enumerator(k5, catalog.triangle(), timeout_s=None).count == 10


class TestIEPInternals:
    def test_stirling_coefficients(self):
        # x_(3) = x^3 - 3x^2 + 2x
        assert signed_stirling_first(3) == [0, 2, -3, 1]
        # x_(0) = 1
        assert signed_stirling_first(0) == [1]

    def test_stirling_evaluates_falling_factorial(self):
        import math

        for k in range(1, 6):
            coeffs = signed_stirling_first(k)
            for c in range(0, 10):
                val = sum(co * c**j for j, co in enumerate(coeffs))
                expect = math.perm(c, k) if c >= k else 0
                assert val == expect

    def test_iep_eliminates_largest_type(self):
        # 5 tails + 1 wedge on an edge core: IEP must eliminate the tails
        pat = catalog.core_with_fringes("edge", [((0,), 5), ((0, 1), 1)])
        counter = IEPCounter(pat)
        assert counter.k == 5
        assert counter.reduced.n == pat.n - 5


class TestTDFSInternals:
    def test_task_splitting_preserves_count(self, small_graphs):
        for task_size in (1, 7, 1000):
            counter = TDFSCounter(catalog.paw(), task_size=task_size)
            for g in small_graphs[:3]:
                assert counter.count(g).count == count_vf2(g, catalog.paw())

    def test_straggler_requeue_still_exact(self):
        g = gen.kronecker(8, 8, seed=3)
        counter = TDFSCounter(catalog.triangle(), task_size=16, straggler_factor=0.0001)
        assert counter.count(g).count == count_vf2(g, catalog.triangle())
