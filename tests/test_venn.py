"""Tests for Venn-diagram computation (all four implementations)."""

import random

import numpy as np
import pytest

from repro.core.venn import venn_batch, venn_hash, venn_merge, venn_sorted
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph


def brute_force_venn(graph, anchors, core):
    """Independent reference: classify every graph vertex by adjacency."""
    q = len(anchors)
    core_set = set(core)
    venn = [0] * (1 << q)
    for x in range(graph.num_vertices):
        if x in core_set:
            continue
        mask = 0
        for i, a in enumerate(anchors):
            if graph.has_edge(a, x):
                mask |= 1 << i
        if mask:
            venn[mask] += 1
    return venn


IMPLS = [venn_hash, venn_sorted, venn_merge]


@pytest.fixture
def graph():
    return gen.erdos_renyi(40, 0.2, seed=11)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("impl", IMPLS, ids=["hash", "sorted", "merge"])
    @pytest.mark.parametrize("q", [1, 2, 3, 4])
    def test_random_anchor_sets(self, graph, impl, q):
        rng = random.Random(q)
        for _ in range(25):
            anchors = rng.sample(range(graph.num_vertices), q)
            extra_core = rng.sample(
                [v for v in range(graph.num_vertices) if v not in anchors], 2
            )
            core = anchors + extra_core
            assert impl(graph, anchors, core) == brute_force_venn(graph, anchors, core)

    @pytest.mark.parametrize("impl", IMPLS, ids=["hash", "sorted", "merge"])
    def test_isolated_anchor(self, impl):
        g = CSRGraph.from_edges([(0, 1)], num_vertices=3)
        assert impl(g, [2, 0], [2, 0]) == [0, 0, 1, 0]

    @pytest.mark.parametrize("impl", IMPLS, ids=["hash", "sorted", "merge"])
    def test_paper_2core_example(self, impl):
        """Tailed-triangle sets from §3.1: n_u, n_v, n_uv on a known graph."""
        # u=0, v=1 adjacent; 2 common; 3 only-u; 4 only-v
        g = CSRGraph.from_edges([(0, 1), (0, 2), (1, 2), (0, 3), (1, 4)])
        venn = impl(g, [0, 1], [0, 1])
        assert venn[0b01] == 1  # s_u = {3}
        assert venn[0b10] == 1  # s_v = {4}
        assert venn[0b11] == 1  # s_uv = {2}


class TestBatch:
    def test_matches_reference(self, graph):
        rng = random.Random(3)
        rows, cores = [], []
        for _ in range(150):
            anchors = rng.sample(range(graph.num_vertices), 3)
            extra = rng.choice([v for v in range(graph.num_vertices) if v not in anchors])
            rows.append(anchors)
            cores.append(anchors + [extra])
        out = venn_batch(graph, np.asarray(rows), np.asarray(cores))
        for i in range(len(rows)):
            assert out[i].tolist() == brute_force_venn(graph, rows[i], cores[i])

    def test_empty_batch(self, graph):
        out = venn_batch(
            graph, np.zeros((0, 2), dtype=np.int64), np.zeros((0, 2), dtype=np.int64)
        )
        assert out.shape == (0, 4)

    def test_degree_zero_anchor(self):
        g = CSRGraph.from_edges([(0, 1)], num_vertices=4)
        out = venn_batch(g, np.asarray([[2, 0]]), np.asarray([[2, 0]]))
        assert out[0].tolist() == [0, 0, 1, 0]

    def test_large_batch_consistency(self):
        g = gen.kronecker(7, 8, seed=4)
        rng = random.Random(1)
        n = g.num_vertices
        rows = np.asarray([rng.sample(range(n), 3) for _ in range(1000)])
        out = venn_batch(g, rows, rows)
        for i in random.Random(2).sample(range(1000), 40):
            assert out[i].tolist() == venn_hash(g, rows[i].tolist(), rows[i].tolist())
