"""Tests for the multicore parallel layer."""

import numpy as np
import pytest

from repro import count_subgraphs
from repro.graph import generators as gen
from repro.parallel import (
    ParallelConfig,
    dynamic_chunks,
    make_chunks,
    parallel_count,
    static_contiguous,
    static_strided,
)
from repro.patterns import catalog


class TestSchedules:
    def test_static_contiguous_partitions(self):
        chunks = static_contiguous(10, 3)
        assert len(chunks) == 3
        assert np.concatenate(chunks).tolist() == list(range(10))

    def test_static_strided_partitions(self):
        chunks = static_strided(10, 3)
        merged = sorted(np.concatenate(chunks).tolist())
        assert merged == list(range(10))
        assert chunks[0].tolist() == [0, 3, 6, 9]

    def test_dynamic_chunks(self):
        chunks = dynamic_chunks(10, 4)
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert np.concatenate(chunks).tolist() == list(range(10))

    def test_make_chunks_dispatch(self):
        assert len(make_chunks(100, 4, "static")) == 4
        assert len(make_chunks(100, 4, "strided")) == 4
        assert len(make_chunks(100, 4, "dynamic", chunk_size=10)) == 10
        with pytest.raises(ValueError):
            make_chunks(10, 2, "magic")


class TestParallelCount:
    @pytest.fixture(scope="class")
    def graph(self):
        return gen.barabasi_albert(300, 4, seed=5)

    @pytest.mark.parametrize("pattern", [catalog.paw(), catalog.diamond(), catalog.star(3)],
                             ids=["paw", "diamond", "3-star"])
    @pytest.mark.parametrize("schedule", ["static", "strided", "dynamic"])
    def test_exact_across_schedules(self, graph, pattern, schedule):
        expect = count_subgraphs(graph, pattern).count
        res = parallel_count(
            graph, pattern, parallel=ParallelConfig(num_workers=2, schedule=schedule)
        )
        assert res.count == expect

    def test_single_worker_no_fork(self, graph):
        pat = catalog.tailed_triangle()
        res = parallel_count(graph, pat, parallel=ParallelConfig(num_workers=1))
        assert res.count == count_subgraphs(graph, pat).count
        assert "x1" in res.engine

    def test_trivial_patterns(self, graph):
        assert parallel_count(graph, catalog.single_vertex()).count == graph.num_vertices
        assert parallel_count(graph, catalog.edge()).count == graph.num_edges

    def test_default_config_uses_cpu_count(self):
        cfg = ParallelConfig()
        assert cfg.num_workers >= 1

    def test_pool_validation(self):
        assert ParallelConfig(pool="fork").pool == "fork"
        assert ParallelConfig(pool="persistent").pool == "persistent"
        assert "persistent" in repr(ParallelConfig(pool="persistent"))
        with pytest.raises(ValueError):
            ParallelConfig(pool="magic")


class TestSelectBackend:
    """The inner backend must always be forwarded to the pool backends."""

    def test_inner_forwarded_to_fork_pool(self):
        from repro.core.backends import (
            BatchBackend,
            MultiprocessBackend,
            SerialBackend,
            select_backend,
        )
        from repro.core.engine import EngineConfig

        be = select_backend(EngineConfig(), ParallelConfig(num_workers=2))
        assert isinstance(be, MultiprocessBackend)
        assert isinstance(be.inner, BatchBackend)
        # a non-frontier inner override is honored, not silently dropped
        be = select_backend(EngineConfig(fc_impl="recursive"), ParallelConfig(num_workers=2))
        assert isinstance(be.inner, SerialBackend)

    def test_frontier_inner_forwarded(self):
        from repro.core.backends import FrontierBackend, MultiprocessBackend, select_backend
        from repro.core.engine import EngineConfig

        be = select_backend(EngineConfig(), ParallelConfig(num_workers=2), engine="frontier")
        assert isinstance(be, MultiprocessBackend)
        assert isinstance(be.inner, FrontierBackend)

    def test_persistent_pool_selected(self):
        from repro.core.backends import BatchBackend, PoolBackend, select_backend
        from repro.core.engine import EngineConfig

        be = select_backend(
            EngineConfig(), ParallelConfig(num_workers=2, pool="persistent")
        )
        assert isinstance(be, PoolBackend)
        assert isinstance(be.inner, BatchBackend)
        assert be.mp_context == "spawn"

    def test_single_worker_returns_inner(self):
        from repro.core.backends import BatchBackend, select_backend
        from repro.core.engine import EngineConfig

        be = select_backend(EngineConfig(), ParallelConfig(num_workers=1))
        assert isinstance(be, BatchBackend)


class TestSharedStateRace:
    """Regression: concurrent fork-pool counts must not clobber _SHARED.

    Before the module lock, two threads interleaving populate → fork →
    clear could fork workers that saw the *other* call's plan/graph (or
    an empty dict). With the lock the calls serialize and every result
    is exact.
    """

    def test_concurrent_fork_counts_are_exact(self):
        g1 = gen.barabasi_albert(200, 4, seed=31)
        g2 = gen.barabasi_albert(260, 3, seed=32)
        p1, p2 = catalog.diamond(), catalog.paw()
        expect1 = count_subgraphs(g1, p1).count
        expect2 = count_subgraphs(g2, p2).count
        errors: list = []

        def hammer(graph, pattern, expect):
            try:
                for _ in range(3):
                    res = parallel_count(
                        graph, pattern,
                        parallel=ParallelConfig(num_workers=2, chunk_size=64),
                    )
                    assert res.count == expect, f"{res.count} != {expect}"
            except BaseException as exc:  # noqa: BLE001 - surface on main thread
                errors.append(exc)

        import threading

        threads = [
            threading.Thread(target=hammer, args=(g1, p1, expect1)),
            threading.Thread(target=hammer, args=(g2, p2, expect2)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not errors, errors

    def test_shared_lock_exists(self):
        from repro.core import backends

        assert isinstance(backends._SHARED_LOCK, type(backends.threading.Lock()))
