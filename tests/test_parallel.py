"""Tests for the multicore parallel layer."""

import numpy as np
import pytest

from repro import count_subgraphs
from repro.graph import generators as gen
from repro.parallel import (
    ParallelConfig,
    dynamic_chunks,
    make_chunks,
    parallel_count,
    static_contiguous,
    static_strided,
)
from repro.patterns import catalog


class TestSchedules:
    def test_static_contiguous_partitions(self):
        chunks = static_contiguous(10, 3)
        assert len(chunks) == 3
        assert np.concatenate(chunks).tolist() == list(range(10))

    def test_static_strided_partitions(self):
        chunks = static_strided(10, 3)
        merged = sorted(np.concatenate(chunks).tolist())
        assert merged == list(range(10))
        assert chunks[0].tolist() == [0, 3, 6, 9]

    def test_dynamic_chunks(self):
        chunks = dynamic_chunks(10, 4)
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert np.concatenate(chunks).tolist() == list(range(10))

    def test_make_chunks_dispatch(self):
        assert len(make_chunks(100, 4, "static")) == 4
        assert len(make_chunks(100, 4, "strided")) == 4
        assert len(make_chunks(100, 4, "dynamic", chunk_size=10)) == 10
        with pytest.raises(ValueError):
            make_chunks(10, 2, "magic")


class TestParallelCount:
    @pytest.fixture(scope="class")
    def graph(self):
        return gen.barabasi_albert(300, 4, seed=5)

    @pytest.mark.parametrize("pattern", [catalog.paw(), catalog.diamond(), catalog.star(3)],
                             ids=["paw", "diamond", "3-star"])
    @pytest.mark.parametrize("schedule", ["static", "strided", "dynamic"])
    def test_exact_across_schedules(self, graph, pattern, schedule):
        expect = count_subgraphs(graph, pattern).count
        res = parallel_count(
            graph, pattern, parallel=ParallelConfig(num_workers=2, schedule=schedule)
        )
        assert res.count == expect

    def test_single_worker_no_fork(self, graph):
        pat = catalog.tailed_triangle()
        res = parallel_count(graph, pat, parallel=ParallelConfig(num_workers=1))
        assert res.count == count_subgraphs(graph, pat).count
        assert "x1" in res.engine

    def test_trivial_patterns(self, graph):
        assert parallel_count(graph, catalog.single_vertex()).count == graph.num_vertices
        assert parallel_count(graph, catalog.edge()).count == graph.num_edges

    def test_default_config_uses_cpu_count(self):
        cfg = ParallelConfig()
        assert cfg.num_workers >= 1
