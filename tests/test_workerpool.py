"""Tests for the persistent spawn-context worker pool."""

import os
import signal
import threading
import time

import pytest

from repro import count_subgraphs
from repro.core.backends import SerialBackend
from repro.core.engine import EngineConfig
from repro.core.plan import compile_pattern
from repro.graph import datasets
from repro.graph import generators as gen
from repro.parallel import ParallelConfig, parallel_count
from repro.parallel.shm import shm_available
from repro.parallel.workerpool import WorkerPool, get_default_pool, shutdown_default_pool
from repro.patterns import catalog

pytestmark = pytest.mark.skipif(not shm_available(), reason="no shared memory")


class SlowSerial:
    """Serial backend with a per-chunk delay (picklable; spawn workers
    re-import this module to unpickle it)."""

    name = "slow-serial"

    def __init__(self, delay_s: float = 0.05):
        self.delay_s = delay_s
        self._inner = SerialBackend()

    def run(self, plan, graph, start_vertices=None):
        time.sleep(self.delay_s)
        return self._inner.run(plan, graph, start_vertices=start_vertices)


@pytest.fixture(scope="module")
def pool():
    p = WorkerPool(2, mp_context="spawn")
    yield p
    p.close()


class TestAgreement:
    """Spawn-pool counts must match the serial backend exactly."""

    @pytest.mark.parametrize("dataset", ["kron_g500-logn20", "amazon0601"])
    @pytest.mark.parametrize("pattern", [catalog.diamond(), catalog.paw()],
                             ids=["diamond", "paw"])
    def test_datasets_agree_with_serial(self, dataset, pattern):
        graph = datasets.make(dataset, "tiny")
        expect = count_subgraphs(graph, pattern).count
        res = parallel_count(
            graph, pattern,
            parallel=ParallelConfig(num_workers=2, pool="persistent"),
        )
        assert res.count == expect
        assert "fringe-pool" in res.engine

    @pytest.mark.parametrize("schedule", ["static", "strided", "dynamic"])
    def test_schedules_agree(self, schedule):
        graph = gen.barabasi_albert(300, 4, seed=5)
        pat = catalog.tailed_triangle()
        expect = count_subgraphs(graph, pat).count
        res = parallel_count(
            graph, pat,
            parallel=ParallelConfig(num_workers=2, schedule=schedule, pool="persistent"),
        )
        assert res.count == expect

    def test_repeated_calls_reuse_workers(self, pool):
        graph = gen.barabasi_albert(400, 4, seed=8)
        plan = compile_pattern(catalog.diamond(), EngineConfig())
        expect = SerialBackend().run(plan, graph)
        first = pool.count(plan, graph, chunk_size=64)
        pids = pool.worker_pids()
        second = pool.count(plan, graph, chunk_size=64)
        assert first.sigma == second.sigma == expect.sigma
        assert first.matches == expect.matches
        assert pool.worker_pids() == pids  # same resident processes
        assert pool.stats.calls >= 2


class TestFaultTolerance:
    def test_killed_worker_respawns_and_call_retries(self):
        pool = WorkerPool(2, mp_context="spawn")
        try:
            graph = gen.barabasi_albert(300, 4, seed=13)
            plan = compile_pattern(catalog.paw(), EngineConfig())
            expect = SerialBackend().run(plan, graph)
            pool.start()
            pids = pool.worker_pids()
            assert len(pids) == 2
            box = {}

            def work():
                box["res"] = pool.count(
                    plan, graph, inner=SlowSerial(0.05), chunk_size=32
                )

            t = threading.Thread(target=work)
            t.start()
            time.sleep(0.2)  # let the call get going, then kill a worker
            os.kill(pids[0], signal.SIGKILL)
            t.join(timeout=120)
            assert not t.is_alive()
            assert box["res"].sigma == expect.sigma
            assert pool.stats.respawns >= 1
            assert pool.stats.retries >= 1
            # the pool is healthy again: a plain follow-up call works
            after = pool.count(plan, graph, chunk_size=64)
            assert after.sigma == expect.sigma
        finally:
            pool.close()

    def test_close_is_permanent(self):
        pool = WorkerPool(1, mp_context="spawn")
        pool.close()
        with pytest.raises(RuntimeError):
            pool.start()


class TestLifecycle:
    def test_idle_ttl_shuts_down_and_restarts_lazily(self):
        pool = WorkerPool(1, mp_context="spawn", idle_ttl_s=0.3)
        try:
            graph = gen.barabasi_albert(150, 3, seed=4)
            plan = compile_pattern(catalog.triangle(), EngineConfig())
            expect = SerialBackend().run(plan, graph)
            assert pool.count(plan, graph, chunk_size=64).sigma == expect.sigma
            assert pool.running
            deadline = time.monotonic() + 5.0
            while pool.running and time.monotonic() < deadline:
                time.sleep(0.1)
            assert not pool.running  # idle TTL fired
            # next call restarts the workers transparently
            assert pool.count(plan, graph, chunk_size=64).sigma == expect.sigma
            assert pool.running
        finally:
            pool.close()

    def test_default_pool_reshapes(self):
        try:
            p1 = get_default_pool(1)
            assert get_default_pool(1) is p1
            p2 = get_default_pool(2)
            assert p2 is not p1
            assert p1._closed
        finally:
            shutdown_default_pool()

    def test_bad_worker_count(self):
        with pytest.raises(ValueError):
            WorkerPool(0)
