"""Documentation consistency, enforced in tier-1.

Runs the same checks as the CI ``docs-check`` job
(``scripts/check_docs.py``): every public ``__all__`` name of
``repro.core`` / ``repro.serve`` / ``repro.runtime`` appears in
docs/API.md, and every intra-repo markdown link resolves.
"""

import sys
from pathlib import Path

SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"
sys.path.insert(0, str(SCRIPTS))

import check_docs  # noqa: E402


def test_api_docs_cover_public_names():
    missing = check_docs.missing_api_names()
    assert not missing, f"public names missing from docs/API.md: {missing}"


def test_intra_repo_links_resolve():
    dead = check_docs.broken_links()
    assert not dead, f"broken markdown links: {dead}"


def test_docs_exist_and_are_linked():
    repo = check_docs.REPO
    for doc in ("docs/ARCHITECTURE.md", "docs/TUNING.md", "docs/API.md"):
        assert (repo / doc).exists(), doc
    readme = (repo / "README.md").read_text()
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/TUNING.md" in readme
    design = (repo / "DESIGN.md").read_text()
    assert "docs/ARCHITECTURE.md" in design
