"""Tests for zero-copy graph sharing (repro.parallel.shm)."""

import gc

import numpy as np
import pytest

from repro import count_subgraphs
from repro.graph import generators as gen
from repro.parallel.shm import (
    GraphExport,
    ShmManager,
    attach_graph,
    default_manager,
    detach_all,
    shm_available,
)
from repro.patterns import catalog

pytestmark = pytest.mark.skipif(not shm_available(), reason="no shared memory")


@pytest.fixture()
def manager():
    mgr = ShmManager()
    yield mgr
    mgr.release_all()
    detach_all()


@pytest.fixture(scope="module")
def graph():
    return gen.barabasi_albert(200, 4, seed=3)


class TestExportAttach:
    def test_roundtrip_arrays(self, manager, graph):
        export = manager.export(graph)
        assert isinstance(export, GraphExport)
        assert export.fingerprint == graph.fingerprint()
        attached = attach_graph(export)
        assert np.array_equal(attached.rowptr, graph.rowptr)
        assert np.array_equal(attached.colidx, graph.colidx)
        assert attached.fingerprint() == graph.fingerprint()

    def test_attached_graph_counts_identically(self, manager, graph):
        export = manager.export(graph)
        attached = attach_graph(export)
        pat = catalog.diamond()
        assert count_subgraphs(attached, pat).count == count_subgraphs(graph, pat).count

    def test_attach_cache_hits(self, manager, graph):
        export = manager.export(graph)
        assert attach_graph(export) is attach_graph(export)

    def test_nbytes(self, manager, graph):
        export = manager.export(graph)
        assert export.nbytes == graph.rowptr.nbytes + graph.colidx.nbytes
        assert manager.total_bytes() == export.nbytes

    def test_empty_graph_exports(self, manager):
        from repro.graph.csr import CSRGraph

        empty = CSRGraph.from_edges([], num_vertices=3)
        export = manager.export(empty)
        attached = attach_graph(export)
        assert attached.num_vertices == 3
        assert attached.num_edges == 0


class TestRefcounting:
    def test_export_is_refcounted(self, manager, graph):
        fp = graph.fingerprint()
        e1 = manager.export(graph)
        e2 = manager.export(graph)
        assert e1 == e2  # same segments, not a second copy
        assert manager.refcount(fp) == 2
        assert not manager.release(fp)
        assert manager.refcount(fp) == 1
        assert manager.release(fp)  # last ref unlinks
        assert manager.refcount(fp) == 0
        assert manager.exported() == []

    def test_release_unknown_fingerprint(self, manager):
        assert not manager.release("deadbeef")

    def test_ensure_ties_to_graph_lifetime(self, manager):
        g = gen.barabasi_albert(120, 3, seed=9)
        fp = g.fingerprint()
        manager.ensure(g)
        assert manager.refcount(fp) == 1
        # re-ensure on the same object does not double-count
        manager.ensure(g)
        assert manager.refcount(fp) == 1
        del g
        gc.collect()
        assert manager.refcount(fp) == 0

    def test_release_all_sweeps(self, manager, graph):
        manager.export(graph)
        manager.export(graph)
        manager.release_all()
        assert manager.exported() == []
        assert manager.total_bytes() == 0


class TestRegistryWiring:
    def test_register_exports_and_evict_releases(self, graph):
        from repro.serve.registry import GraphRegistry

        mgr = default_manager()
        fp = graph.fingerprint()
        before = mgr.refcount(fp)
        registry = GraphRegistry(export_shm=True)
        registry.register("g", graph)
        assert mgr.refcount(fp) == before + 1
        registry.evict("g")
        assert mgr.refcount(fp) == before

    def test_replace_releases_old_content(self, graph):
        from repro.serve.registry import GraphRegistry

        other = gen.barabasi_albert(150, 3, seed=21)
        mgr = default_manager()
        registry = GraphRegistry(export_shm=True)
        registry.register("g", graph)
        registry.register("g", other)  # replacement drops the old export
        assert mgr.refcount(graph.fingerprint()) == 0
        assert mgr.refcount(other.fingerprint()) == 1
        registry.evict("g")
        assert mgr.refcount(other.fingerprint()) == 0

    def test_export_disabled(self, graph):
        from repro.serve.registry import GraphRegistry

        mgr = default_manager()
        fp = graph.fingerprint()
        before = mgr.refcount(fp)
        registry = GraphRegistry(export_shm=False)
        registry.register("g", graph)
        assert mgr.refcount(fp) == before
        registry.evict("g")
