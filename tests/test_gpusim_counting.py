"""Tests for the complete warp-level counting kernel (counts + costs)."""

import pytest

from repro import count_subgraphs
from repro.graph import generators as gen
from repro.gpusim import EdgeCoreKernel
from repro.patterns import catalog


@pytest.fixture(scope="module")
def graphs():
    return [
        gen.kronecker(7, 8, seed=3),
        gen.erdos_renyi(90, 0.1, seed=4),
        gen.barabasi_albert(100, 3, seed=5),
        gen.road_network(10, 10, seed=6),
    ]


PATTERNS = {
    "triangle": catalog.triangle(),
    "paw": catalog.paw(),
    "diamond": catalog.diamond(),
    "2-tailed triangle": catalog.k_tailed_triangle(2),
    "4-wedge edge": catalog.core_with_fringes("edge", [((0, 1), 4)]),
    "path4": catalog.path(4),
}


class TestExactness:
    @pytest.mark.parametrize("name", list(PATTERNS))
    def test_matches_cpu_engine(self, graphs, name):
        kernel = EdgeCoreKernel(PATTERNS[name])
        for g in graphs:
            got = kernel.launch(g)
            assert got.count == count_subgraphs(g, PATTERNS[name]).count

    def test_roots_subset_partial_count(self, graphs):
        g = graphs[0]
        kernel = EdgeCoreKernel(catalog.triangle())
        full = kernel.launch(g)
        # splitting the root space must reassemble the full raw sum
        half1 = kernel.launch(g, roots=range(0, g.num_vertices // 2), normalize=False)
        half2 = kernel.launch(
            g, roots=range(g.num_vertices // 2, g.num_vertices), normalize=False
        )
        assert half1.raw + half2.raw == full.raw
        assert (half1.raw + half2.raw) // kernel.denominator == full.count

    def test_non_edge_core_rejected(self):
        with pytest.raises(ValueError):
            EdgeCoreKernel(catalog.star(3))
        with pytest.raises(ValueError):
            EdgeCoreKernel(catalog.four_clique())


class TestCostModel:
    def test_full_simt_efficiency(self, graphs):
        stats = EdgeCoreKernel(catalog.triangle()).launch(graphs[0]).stats
        assert stats.simt_efficiency == pytest.approx(1.0)

    def test_memory_transactions_coalesce(self, graphs):
        stats = EdgeCoreKernel(catalog.triangle()).launch(graphs[0]).stats
        # cooperative strided loads touch consecutive words: far fewer
        # transactions than lane-ops
        assert stats.mem_transactions < stats.lane_ops

    def test_more_fringes_same_search_cost(self, graphs):
        """The warp schedule depends on the core only: Fig. 12-14's
        'fringes are free' claim at the kernel level."""
        g = graphs[0]
        light = EdgeCoreKernel(catalog.triangle()).launch(g).stats
        heavy = EdgeCoreKernel(
            catalog.core_with_fringes("edge", [((0, 1), 4), ((0,), 2)])
        ).launch(g).stats
        assert heavy.steps == light.steps  # identical search schedule
