"""Tests for the counting engine and public API."""

import math

import pytest

from repro import EngineConfig, FringeCounter, count_subgraphs
from repro.baselines.vf2 import count_vf2
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from repro.patterns import catalog
from repro.patterns.decompose import decompose, decomposition_from_core
from repro.patterns.pattern import Pattern


class TestPaperExamples:
    def test_fig2_counts(self, fig2_graph):
        """§1: 'There is only one triangle in this graph ... but five
        unique tailed triangles'; §3: vertex 0 centres 35 3-stars."""
        assert count_subgraphs(fig2_graph, catalog.triangle()).count == 1
        assert count_subgraphs(fig2_graph, catalog.tailed_triangle()).count == 5
        assert count_subgraphs(fig2_graph, catalog.star(3)).count == 35

    def test_kstar_formula(self, small_graphs):
        """§3: every vertex is the centre of exactly C(d, k) k-stars."""
        for g in small_graphs:
            for k in (2, 3, 4):
                expected = sum(math.comb(int(d), k) for d in g.degrees)
                assert count_subgraphs(g, catalog.star(k)).count == expected

    def test_single_vertex_and_edge(self, small_graphs):
        for g in small_graphs:
            assert count_subgraphs(g, catalog.single_vertex()).count == g.num_vertices
            assert count_subgraphs(g, catalog.edge()).count == g.num_edges

    def test_pattern_in_itself_is_one(self):
        for pat in (
            catalog.fig4_pattern(),
            catalog.diamond(),
            catalog.k_tailed_triangle(4),
            catalog.four_cycle(),
        ):
            g = CSRGraph.from_edges(pat.edges(), num_vertices=pat.n)
            assert count_subgraphs(g, pat).count == 1


class TestEngines:
    @pytest.mark.parametrize(
        "cfg",
        [
            EngineConfig(fc_impl="recursive", venn_impl="hash"),
            EngineConfig(fc_impl="recursive", venn_impl="merge"),
            EngineConfig(fc_impl="iterative", venn_impl="sorted"),
            EngineConfig(fc_impl="poly"),
            EngineConfig(fc_impl="poly", batch_size=2),
            EngineConfig(symmetry_breaking=False, fc_impl="recursive", venn_impl="hash"),
        ],
        ids=["rec-hash", "rec-merge", "iter-sorted", "poly", "poly-b2", "no-sb"],
    )
    def test_all_configs_match_vf2(self, small_graphs, cfg):
        pats = [catalog.paw(), catalog.diamond(), catalog.four_cycle(), catalog.star(3)]
        for pat in pats:
            for g in small_graphs[:4]:
                expect = count_vf2(g, pat)
                assert count_subgraphs(g, pat, engine="general", config=cfg).count == expect

    def test_specialized_vs_general(self, small_graphs):
        pats = [
            catalog.star(4),
            catalog.diamond(),
            catalog.k_tailed_triangle(2),
            catalog.four_clique(),
            catalog.four_cycle(),
        ]
        for pat in pats:
            for g in small_graphs:
                a = count_subgraphs(g, pat, engine="specialized").count
                b = count_subgraphs(g, pat, engine="general").count
                assert a == b

    def test_specialized_unavailable_for_large_core(self):
        # K5 minus nothing: decomposes to a 4-vertex core
        pat = catalog.clique(5)
        assert decompose(pat).num_core == 4
        with pytest.raises(ValueError, match="no specialized engine"):
            count_subgraphs(gen.complete_graph(6), pat, engine="specialized")

    def test_unknown_engine_rejected(self, k5):
        with pytest.raises(ValueError):
            count_subgraphs(k5, catalog.triangle(), engine="warp-drive")

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(venn_impl="quantum")
        with pytest.raises(ValueError):
            EngineConfig(fc_impl="magic")
        with pytest.raises(ValueError):
            EngineConfig(batch_size=0)


class TestCoreInvariance:
    def test_any_valid_core_gives_same_count(self, small_graphs):
        """The core is not unique (§3); the count must not depend on it."""
        tri = catalog.triangle()
        paw = catalog.paw()
        for g in small_graphs[:4]:
            ref = count_vf2(g, tri)
            for core in ([0, 1], [0, 2], [1, 2], [0, 1, 2]):
                d = decomposition_from_core(tri, core)
                got = count_subgraphs(g, tri, engine="general", decomposition=d).count
                assert got == ref
            ref = count_vf2(g, paw)
            for core in ([0, 1], [0, 1, 2], [0, 1, 2, 3]):
                d = decomposition_from_core(paw, core)
                got = count_subgraphs(g, paw, engine="general", decomposition=d).count
                assert got == ref


class TestFringeCounter:
    def test_reuse_across_graphs(self, small_graphs):
        counter = FringeCounter(catalog.diamond())
        for g in small_graphs:
            assert counter.count(g).count == count_vf2(g, catalog.diamond())

    def test_aut_size(self):
        assert FringeCounter(catalog.triangle()).aut_size() == 6
        assert FringeCounter(catalog.edge()).aut_size() == 2
        assert FringeCounter(catalog.single_vertex()).aut_size() == 1

    def test_disconnected_pattern_rejected(self):
        with pytest.raises(ValueError):
            FringeCounter(Pattern.from_edges([(0, 1), (2, 3)]))

    def test_core_sum_requires_fringe_pattern(self, k5):
        with pytest.raises(ValueError):
            FringeCounter(catalog.edge()).core_sum(k5)


class TestCountResult:
    def test_fields(self, k5):
        res = count_subgraphs(k5, catalog.triangle(), engine="general")
        assert res.count == 10
        assert res.core_matches > 0
        assert res.elapsed_s >= 0
        assert "fringe-general" in res.engine
        assert res.decomposition is not None

    def test_throughput(self, k5):
        res = count_subgraphs(k5, catalog.triangle())
        assert res.throughput(k5.num_edges) > 0

    def test_empty_graph(self):
        g = CSRGraph.from_edges([], num_vertices=10)
        assert count_subgraphs(g, catalog.triangle()).count == 0
        assert count_subgraphs(g, catalog.single_vertex()).count == 10
