"""Tests for graph statistics (Table 1 columns, triangle counts, peeling)."""

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from repro.graph.stats import (
    degeneracy_order,
    degree_histogram,
    num_components,
    summarize,
    triangle_count,
)


class TestTriangleCount:
    def test_complete(self):
        # C(n, 3) triangles in K_n
        for n in (3, 4, 5, 6, 7):
            assert triangle_count(gen.complete_graph(n)) == n * (n - 1) * (n - 2) // 6

    def test_triangle_free(self):
        assert triangle_count(gen.cycle_graph(8)) == 0
        assert triangle_count(gen.star_graph(6)) == 0
        assert triangle_count(gen.grid_graph(4, 4)) == 0

    def test_matches_networkx(self):
        g = gen.erdos_renyi(60, 0.12, seed=9)
        import networkx as nx

        expected = sum(nx.triangles(g.to_networkx()).values()) // 3
        assert triangle_count(g) == expected

    def test_fig2_graph(self):
        g = CSRGraph.from_edges(
            [(0, 1), (0, 2), (1, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7)]
        )
        assert triangle_count(g) == 1


class TestDegeneracy:
    def test_complete(self):
        _, d = degeneracy_order(gen.complete_graph(6))
        assert d == 5

    def test_tree(self):
        _, d = degeneracy_order(gen.path_graph(10))
        assert d == 1

    def test_order_is_permutation(self):
        g = gen.barabasi_albert(40, 3, seed=2)
        order, d = degeneracy_order(g)
        assert sorted(order.tolist()) == list(range(40))
        assert d >= 3

    def test_matches_networkx_core_number(self):
        import networkx as nx

        g = gen.erdos_renyi(50, 0.15, seed=3)
        _, d = degeneracy_order(g)
        assert d == max(nx.core_number(g.to_networkx()).values())


class TestComponents:
    def test_connected(self):
        assert num_components(gen.complete_graph(5)) == 1

    def test_disconnected(self):
        g = CSRGraph.from_edges([(0, 1), (2, 3)], num_vertices=6)
        assert num_components(g) == 4  # two edges + two isolated vertices

    def test_empty(self):
        assert num_components(CSRGraph.from_edges([], num_vertices=0)) == 0


class TestSummary:
    def test_summarize_fields(self):
        g = gen.star_graph(9)
        s = summarize(g, "star", "test", "unit")
        assert s.vertices == 10
        assert s.edges == 9
        assert s.max_degree == 9
        assert s.avg_degree == pytest.approx(18 / 10)
        row = s.as_row()
        assert row[0] == "star" and row[3] == 10

    def test_degree_histogram(self):
        g = gen.star_graph(4)
        hist = degree_histogram(g)
        assert hist[1] == 4 and hist[4] == 1
        assert int(np.sum(hist)) == 5
