"""Tests for per-vertex graphlet-degree signatures."""

import math

import numpy as np
import pytest

from repro import count_subgraphs
from repro.core.signatures import SIGNATURE_COLUMNS, signature_matrix, vertex_signatures
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from repro.patterns import catalog


GRAPHS = [
    gen.erdos_renyi(30, 0.25, seed=1),
    gen.complete_graph(7),
    gen.star_graph(8),
    gen.cycle_graph(9),
    gen.barabasi_albert(40, 3, seed=2),
]


def brute_participations(graph, pattern, orbit_filter):
    """Reference: enumerate injective maps, count vertex participations
    at the pattern positions selected by orbit_filter."""
    from repro.patterns.isomorphism import automorphisms_of

    n = pattern.n
    out = np.zeros(graph.num_vertices, dtype=np.int64)
    adjacency = [set(graph.neighbors(v).tolist()) for v in range(graph.num_vertices)]
    deg_p = pattern.degrees()

    def extend(pos, mapping, used):
        if pos == n:
            for pv in range(n):
                if orbit_filter(pv):
                    out[mapping[pv]] += 1
            return
        for gv in range(graph.num_vertices):
            if gv in used or graph.degree(gv) < deg_p[pos]:
                continue
            if all(
                gv in adjacency[mapping[w]] for w in pattern.adj[pos] if w < pos
            ):
                extend(pos + 1, mapping + [gv], used | {gv})

    extend(0, [], set())
    aut = len(automorphisms_of(pattern))
    assert np.all(out % aut == 0)
    return out // aut


class TestColumnSums:
    """Column sums must match global counts times the orbit size."""

    @pytest.mark.parametrize("gi", range(len(GRAPHS)))
    def test_wedge_and_triangle(self, gi):
        g = GRAPHS[gi]
        mat = signature_matrix(g)
        cols = dict(zip(SIGNATURE_COLUMNS, mat.T))
        wedges = count_subgraphs(g, catalog.wedge()).count
        triangles = count_subgraphs(g, catalog.triangle()).count
        assert int(cols["wedge_center"].sum()) == wedges
        assert int(cols["wedge_end"].sum()) == 2 * wedges
        assert int(cols["triangle"].sum()) == 3 * triangles

    @pytest.mark.parametrize("gi", range(len(GRAPHS)))
    def test_star_and_paw(self, gi):
        g = GRAPHS[gi]
        mat = signature_matrix(g)
        cols = dict(zip(SIGNATURE_COLUMNS, mat.T))
        stars = count_subgraphs(g, catalog.star(3)).count
        paws = count_subgraphs(g, catalog.paw()).count
        assert int(cols["star3_center"].sum()) == stars
        assert int(cols["star3_leaf"].sum()) == 3 * stars
        assert int(cols["paw_apex"].sum()) == paws
        assert int(cols["paw_tail"].sum()) == paws


class TestPerVertexValues:
    def test_star_graph_hub(self):
        g = gen.star_graph(6)
        sig = vertex_signatures(g)
        assert sig[0].wedge_center == math.comb(6, 2)
        assert sig[0].star3_center == math.comb(6, 3)
        assert sig[0].triangle == 0
        assert sig[1].wedge_end == 5  # paired with any other leaf

    def test_triangle_graph(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        for s in vertex_signatures(g):
            assert s.triangle == 1
            assert s.wedge_center == 1
            assert s.paw_apex == 0  # no degree-3 vertex

    def test_paw_graph(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2), (0, 3)])
        sig = vertex_signatures(g)
        assert sig[0].paw_apex == 1  # vertex 0 carries the tail
        assert sig[3].paw_tail == 1
        assert sig[1].paw_apex == 0

    def test_signature_matrix_shape(self):
        g = GRAPHS[0]
        mat = signature_matrix(g)
        assert mat.shape == (g.num_vertices, len(SIGNATURE_COLUMNS))
        assert np.all(mat >= 0)
