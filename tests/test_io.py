"""Round-trip and format tests for graph I/O."""

import numpy as np
import pytest

from repro.graph import generators as gen, io as gio
from repro.graph.build import clean_edges, compact_labels, graph_from_raw_edges


@pytest.fixture
def sample():
    return gen.barabasi_albert(40, 3, seed=7)


class TestEdgeList:
    def test_round_trip(self, tmp_path, sample):
        path = tmp_path / "g.el"
        gio.write_edge_list(sample, path)
        assert gio.read_edge_list(path) == sample

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n% other comment\n\n0 1\n1 2\n")
        g = gio.read_edge_list(path)
        assert g.num_edges == 2

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError):
            gio.read_edge_list(path)

    def test_compact_relabels(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("100 200\n200 300\n")
        g = gio.read_edge_list(path, compact=True)
        assert g.num_vertices == 3

    def test_directed_input_symmetrized(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 0\n2 1\n")
        g = gio.read_edge_list(path)
        assert g.num_edges == 2
        assert g.has_edge(1, 2)


class TestMtx:
    def test_round_trip(self, tmp_path, sample):
        path = tmp_path / "g.mtx"
        gio.write_mtx(sample, path)
        assert gio.read_mtx(path) == sample

    def test_header_required(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("not a matrix market file\n1 1 0\n")
        with pytest.raises(ValueError):
            gio.read_mtx(path)

    def test_isolated_trailing_vertices_kept(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern symmetric\n5 5 1\n2 1\n")
        g = gio.read_mtx(path)
        assert g.num_vertices == 5
        assert g.num_edges == 1


class TestDimacs:
    def test_basic(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("c road graph\np sp 4 4\na 1 2 5\na 2 1 5\na 2 3 7\na 3 4 2\n")
        g = gio.read_dimacs_gr(path)
        assert g.num_vertices == 4
        assert g.num_edges == 3  # bidirectional arc collapsed


class TestNpz:
    def test_round_trip(self, tmp_path, sample):
        path = tmp_path / "g.npz"
        gio.write_npz(sample, path)
        assert gio.read_npz(path) == sample


class TestDispatch:
    def test_load_graph_by_extension(self, tmp_path, sample):
        p1 = tmp_path / "g.el"
        gio.write_edge_list(sample, p1)
        assert gio.load_graph(p1) == sample

    def test_unknown_extension(self, tmp_path):
        with pytest.raises(ValueError, match="unknown graph format"):
            gio.load_graph(tmp_path / "g.xyz")


class TestBuildHelpers:
    def test_clean_edges(self):
        cleaned = clean_edges(np.array([[1, 0], [0, 1], [2, 2], [3, 1]]))
        assert cleaned.tolist() == [[0, 1], [1, 3]]

    def test_clean_edges_empty(self):
        assert clean_edges(np.empty((0, 2), dtype=np.int64)).shape == (0, 2)

    def test_compact_labels(self):
        edges, ids = compact_labels(np.array([[10, 20], [20, 30]]))
        assert edges.tolist() == [[0, 1], [1, 2]]
        assert ids.tolist() == [10, 20, 30]

    def test_graph_from_raw_edges(self):
        g = graph_from_raw_edges(np.array([[5, 3], [3, 5], [5, 5]]), compact=True)
        assert g.num_vertices == 2
        assert g.num_edges == 1


class TestMetis:
    def test_round_trip(self, tmp_path, sample):
        path = tmp_path / "g.graph"
        gio.write_metis(sample, path)
        assert gio.read_metis(path) == sample

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("% comment\n3 2\n2 3\n1\n1\n")
        g = gio.read_metis(path)
        assert g.num_vertices == 3 and g.num_edges == 2

    def test_weighted_rejected(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 1 011\n2 5\n1 5\n")
        with pytest.raises(ValueError, match="weighted"):
            gio.read_metis(path)

    def test_header_mismatch_rejected(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("3 5\n2\n1 3\n2\n")
        with pytest.raises(ValueError, match="edges"):
            gio.read_metis(path)

    def test_vertex_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("3 1\n2\n1\n")
        with pytest.raises(ValueError, match="vertices"):
            gio.read_metis(path)

    def test_load_graph_dispatch(self, tmp_path, sample):
        path = tmp_path / "g.metis"
        gio.write_metis(sample, path)
        assert gio.load_graph(path) == sample
