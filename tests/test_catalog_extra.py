"""Tests for the extended catalog patterns (K_{m,n}, books, friendship)."""

import pytest

from repro import count_subgraphs
from repro.baselines.vf2 import count_vf2
from repro.graph import generators as gen
from repro.patterns import catalog
from repro.patterns.decompose import decompose
from repro.patterns.dsl import parse_pattern
from repro.patterns.pattern import Pattern


class TestCompleteBipartite:
    def test_shape(self):
        k = catalog.complete_bipartite(3, 4)
        assert k.n == 7 and k.num_edges == 12

    def test_matches_networkx(self):
        import networkx as nx

        for m, n in [(1, 3), (2, 2), (2, 5), (3, 3)]:
            ours = catalog.complete_bipartite(m, n)
            theirs = Pattern.from_networkx(nx.complete_bipartite_graph(m, n))
            assert ours.is_isomorphic(theirs)

    def test_k2n_is_wedge_core_family(self):
        for n in (2, 3, 4):
            d = decompose(catalog.complete_bipartite(2, n))
            assert d.num_core == 3 and d.core_pattern.num_edges == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            catalog.complete_bipartite(0, 3)


class TestBook:
    def test_book1_is_triangle(self):
        assert catalog.book(1).is_isomorphic(catalog.triangle())

    def test_book2_is_diamond(self):
        assert catalog.book(2).is_isomorphic(catalog.diamond())

    def test_decomposition(self):
        d = decompose(catalog.book(5))
        assert d.num_core == 2 and d.num_fringes == 5

    def test_counts_match_vf2(self):
        g = gen.erdos_renyi(14, 0.4, seed=2)
        for k in (1, 2, 3):
            pat = catalog.book(k)
            assert count_subgraphs(g, pat).count == count_vf2(g, pat)


class TestFriendship:
    def test_shape(self):
        f = catalog.friendship(3)
        assert f.n == 7 and f.num_edges == 9
        assert f.degree(0) == 6

    def test_decomposition_promotes_outer_vertices(self):
        # adjacent outer pairs cannot both be fringes
        d = decompose(catalog.friendship(3))
        assert d.num_core == 4
        assert d.num_fringes == 3
        assert all(ft.arity == 2 for ft in d.fringe_types)

    def test_counts_match_vf2(self):
        g = gen.erdos_renyi(12, 0.5, seed=4)
        for k in (1, 2):
            pat = catalog.friendship(k)
            assert count_subgraphs(g, pat).count == count_vf2(g, pat)

    def test_friendship_in_itself(self):
        for k in (1, 2, 3):
            pat = catalog.friendship(k)
            from repro.graph.csr import CSRGraph

            g = CSRGraph.from_edges(pat.edges(), num_vertices=pat.n)
            assert count_subgraphs(g, pat).count == 1


class TestDSLForNewPatterns:
    def test_book(self):
        assert parse_pattern("4-book").is_isomorphic(catalog.book(4))

    def test_friendship(self):
        assert parse_pattern("2-friendship").is_isomorphic(catalog.friendship(2))
