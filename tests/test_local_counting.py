"""Tests for the ESCAPE-style local-counting baseline."""

import pytest

from repro import count_subgraphs
from repro.baselines import count_local, count_vf2, local_counts
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from repro.patterns import catalog


GRAPHS = [
    gen.erdos_renyi(30, 0.25, seed=1),
    gen.erdos_renyi(40, 0.12, seed=2),
    gen.complete_graph(7),
    gen.cycle_graph(9),
    gen.star_graph(8),
    gen.barabasi_albert(40, 3, seed=3),
    gen.grid_graph(5, 5),
]


class TestAgainstGroundTruth:
    @pytest.mark.parametrize("gi", range(len(GRAPHS)))
    def test_all_fig1_counts(self, gi):
        g = GRAPHS[gi]
        lc = local_counts(g).as_dict()
        for name, pattern in catalog.fig1_patterns().items():
            assert lc[name] == count_vf2(g, pattern), name

    def test_agrees_with_fringe_engine(self):
        g = gen.kronecker(7, 8, seed=5)
        lc = local_counts(g).as_dict()
        for name, pattern in catalog.fig1_patterns().items():
            assert lc[name] == count_subgraphs(g, pattern).count, name


class TestClosedForms:
    def test_complete_graph(self):
        # K_n: wedges = 3 C(n,3); triangles = C(n,3); K4s = C(n,4)
        import math

        n = 7
        lc = local_counts(gen.complete_graph(n))
        assert lc.triangle == math.comb(n, 3)
        assert lc.wedge == 3 * math.comb(n, 3)
        assert lc.four_clique == math.comb(n, 4)
        assert lc.four_cycle == 3 * math.comb(n, 4)  # each K4 holds 3 C4s

    def test_triangle_free_graph(self):
        lc = local_counts(gen.grid_graph(4, 6))
        assert lc.triangle == 0
        assert lc.tailed_triangle == 0
        assert lc.diamond == 0
        assert lc.four_clique == 0
        assert lc.four_cycle == 3 * 5  # grid cells

    def test_star_graph(self):
        import math

        lc = local_counts(gen.star_graph(6))
        assert lc.wedge == math.comb(6, 2)
        assert lc.three_star == math.comb(6, 3)
        assert lc.four_path == 0

    def test_empty_graph(self):
        lc = local_counts(CSRGraph.from_edges([], num_vertices=5))
        assert all(v == 0 for v in lc.as_dict().values())


class TestCountLocal:
    def test_by_name(self):
        g = GRAPHS[0]
        assert count_local(g, "triangle") == local_counts(g).triangle

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="Fig. 1"):
            count_local(GRAPHS[0], "petersen")
