"""Tests for the approximate (sampled) counter."""

import pytest

from repro import count_subgraphs
from repro.baselines import estimate_count
from repro.graph import generators as gen
from repro.patterns import catalog


@pytest.fixture(scope="module")
def graph():
    return gen.barabasi_albert(400, 4, seed=6)


class TestEstimator:
    def test_full_census_is_exact(self, graph):
        """samples >= n degenerates into the exact count."""
        pat = catalog.paw()
        est = estimate_count(graph, pat, samples=10**9, seed=0)
        assert est.estimate == pytest.approx(count_subgraphs(graph, pat).count)
        assert est.std_error == 0.0

    def test_unbiasedness_over_seeds(self, graph):
        """The mean over independent estimates approaches the truth."""
        pat = catalog.triangle()
        truth = count_subgraphs(graph, pat).count
        ests = [
            estimate_count(graph, pat, samples=120, seed=s).estimate for s in range(20)
        ]
        mean = sum(ests) / len(ests)
        assert abs(mean - truth) / truth < 0.25

    def test_confidence_interval_covers_often(self, graph):
        pat = catalog.paw()
        truth = count_subgraphs(graph, pat).count
        hits = 0
        trials = 20
        for s in range(trials):
            est = estimate_count(graph, pat, samples=150, seed=s)
            lo, hi = est.confidence_interval()
            if lo <= truth <= hi:
                hits += 1
        assert hits >= trials // 2  # normal CI, generous bound

    def test_error_shrinks_with_samples(self, graph):
        pat = catalog.diamond()
        small = estimate_count(graph, pat, samples=50, seed=3)
        large = estimate_count(graph, pat, samples=350, seed=3)
        assert large.std_error < small.std_error

    def test_trivial_patterns_exact(self, graph):
        assert estimate_count(graph, catalog.single_vertex()).estimate == graph.num_vertices
        assert estimate_count(graph, catalog.edge()).estimate == graph.num_edges

    def test_relative_error_helper(self, graph):
        pat = catalog.triangle()
        truth = count_subgraphs(graph, pat).count
        est = estimate_count(graph, pat, samples=200, seed=1)
        assert est.relative_error_vs(truth) >= 0.0
        assert est.relative_error_vs(0) in (0.0, float("inf"))

    def test_fringe_heavy_pattern_still_cheap(self, graph):
        """A 10-vertex fringe pattern estimates as fast as a small one —
        the per-root mass is a closed form, not an enumeration."""
        pat = catalog.core_with_fringes("edge", [((0, 1), 3), ((0,), 3), ((1,), 2)])
        est = estimate_count(graph, pat, samples=100, seed=2)
        assert est.estimate >= 0
