"""Tests for the SIMT warp simulator and the two kernel formulations."""

import pytest

from repro.graph import generators as gen
from repro.gpusim import (
    GPUMachine,
    LaneOp,
    MachineConfig,
    WARP_SIZE,
    WarpStats,
    ballot,
    ffs,
    run_ballot_warp,
    run_naive_warp,
    run_warp,
    venn_binary_search_programs,
)
from repro.gpusim.warp import SEGMENT_BYTES, WORD_BYTES, _transactions


class TestPrimitives:
    def test_ballot(self):
        assert ballot([]) == 0
        assert ballot([True, False, True]) == 0b101
        assert ballot([False] * 32) == 0

    def test_ffs_matches_cuda_semantics(self):
        assert ffs(0) == 0
        assert ffs(1) == 1
        assert ffs(0b1000) == 4
        assert ffs(0b1010) == 2

    def test_transactions_coalescing(self):
        words = SEGMENT_BYTES // WORD_BYTES
        # 32 consecutive words within two segments
        assert _transactions(list(range(32))) == (31 // words) + 1
        # 32 scattered words: one transaction each
        assert _transactions([i * words for i in range(32)]) == 32
        assert _transactions([]) == 0


class TestRunWarp:
    def test_converged_lanes_single_step_each(self):
        def lane():
            yield LaneOp(pc=1)
            yield LaneOp(pc=2)

        stats = run_warp([lane() for _ in range(32)])
        assert stats.steps == 2
        assert stats.simt_efficiency == 1.0
        assert stats.lane_ops == 64

    def test_divergent_lanes_serialize(self):
        def lane(pc):
            yield LaneOp(pc=pc)

        stats = run_warp([lane(i) for i in range(8)])
        assert stats.steps == 8  # every lane alone at its pc
        assert stats.simt_efficiency == pytest.approx(8 / (8 * 32))

    def test_min_pc_reconvergence(self):
        # lane A runs pcs 1,3; lane B runs 2,3 — they reconverge at 3
        def lane_a():
            yield LaneOp(pc=1)
            yield LaneOp(pc=3)

        def lane_b():
            yield LaneOp(pc=2)
            yield LaneOp(pc=3)

        stats = run_warp([lane_a(), lane_b()])
        assert stats.steps == 3  # 1 alone, 2 alone, 3 together

    def test_too_many_lanes_rejected(self):
        with pytest.raises(ValueError):
            run_warp([iter(()) for _ in range(33)])

    def test_merge(self):
        a, b = WarpStats(steps=1, lane_ops=2), WarpStats(steps=3, lane_ops=4)
        a.merge(b)
        assert a.steps == 4 and a.lane_ops == 6


class TestKernels:
    @pytest.fixture(scope="class")
    def graph(self):
        return gen.kronecker(7, 8, seed=3)

    def test_ballot_full_efficiency(self, graph):
        stats = run_ballot_warp(graph, list(range(32)))
        assert stats.simt_efficiency == 1.0

    def test_naive_diverges_on_skewed_graph(self, graph):
        stats = run_naive_warp(graph, list(range(32)))
        assert stats.simt_efficiency < 0.9

    def test_ballot_fewer_steps_than_naive(self, graph):
        ballot_s = run_ballot_warp(graph, list(range(32)))
        naive_s = run_naive_warp(graph, list(range(32)))
        assert ballot_s.steps < naive_s.steps

    def test_same_lane_work_performed(self, graph):
        """Both kernels inspect the same level-1 vertices; the ballot
        version does so cooperatively so lane_ops differ, but neither
        may be empty on a non-trivial graph."""
        assert run_ballot_warp(graph, [0]).lane_ops > 0
        assert run_naive_warp(graph, [0]).lane_ops > 0

    def test_venn_binary_search_coalesces(self, graph):
        hub = int(graph.degrees.argmax())
        others = graph.neighbors(hub)[:2].tolist()
        stats = run_warp(venn_binary_search_programs(graph, hub, others))
        # sorted inputs keep early binary-search probes in shared
        # segments: far fewer transactions than one per lane-op
        assert stats.mem_transactions < stats.lane_ops


class TestMachine:
    def test_invalid_config(self):
        with pytest.raises(ValueError):
            MachineConfig(schedule="quantum")
        with pytest.raises(ValueError):
            MachineConfig(num_sms=0)

    def test_report_aggregates(self):
        g = gen.erdos_renyi(100, 0.1, seed=1)
        rep = GPUMachine(MachineConfig(num_sms=4)).launch(g, run_ballot_warp)
        assert rep.chunks == (100 + WARP_SIZE - 1) // WARP_SIZE
        assert rep.makespan_steps <= rep.total_steps
        assert rep.total_mem_transactions > 0

    def test_dynamic_no_worse_than_static(self):
        g = gen.kronecker(7, 8, seed=2)
        dyn = GPUMachine(MachineConfig(num_sms=8, schedule="dynamic", chunk_size=8)).launch(
            g, run_ballot_warp
        )
        sta = GPUMachine(MachineConfig(num_sms=8, schedule="static", chunk_size=8)).launch(
            g, run_ballot_warp
        )
        assert dyn.makespan_steps <= sta.makespan_steps

    def test_roots_subset(self):
        g = gen.erdos_renyi(60, 0.2, seed=4)
        rep = GPUMachine(MachineConfig(num_sms=2)).launch(
            g, run_ballot_warp, roots=list(range(10))
        )
        assert rep.chunks == 1
