"""The paper's own validation protocol (§3.4), scaled to CI time.

"We exhaustively tested Fringe-SGC on all possible patterns with up to 5
vertices on all possible graphs with up to 5 vertices."

Here: every connected pattern with up to 5 vertices is counted in every
(non-isomorphic) graph with up to 4 vertices plus a deterministic sample
of 5- and 6-vertex graphs, and the result must match the brute-force VF2
counter. The fringe engine, the enumerator, and the IEP baseline all run;
cross-engine equality is asserted everywhere.
"""

from itertools import combinations

import pytest

from repro import count_subgraphs
from repro.baselines import count_enumerator, count_iep, count_vf2
from repro.graph.csr import CSRGraph
from repro.graph import generators as gen
from repro.patterns.pattern import all_connected_patterns


def all_graphs_up_to(n: int) -> list[CSRGraph]:
    """Every labeled simple graph with exactly n vertices (incl. empty)."""
    pairs = list(combinations(range(n), 2))
    out = []
    for bits in range(1 << len(pairs)):
        edges = [pairs[i] for i in range(len(pairs)) if bits >> i & 1]
        out.append(CSRGraph.from_edges(edges, num_vertices=n))
    return out


ALL_PATTERNS = [p for n in range(1, 6) for p in all_connected_patterns(n)]

SAMPLED_GRAPHS = [
    gen.erdos_renyi(5, 0.5, seed=s) for s in range(4)
] + [
    gen.erdos_renyi(6, 0.45, seed=s) for s in range(4)
] + [
    gen.complete_graph(6),
    gen.cycle_graph(6),
    gen.star_graph(5),
]


class TestExhaustiveUpTo4:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_every_graph_every_pattern(self, n):
        graphs = all_graphs_up_to(n)
        for pat in ALL_PATTERNS:
            if pat.n > n:
                continue
            for g in graphs:
                expect = count_vf2(g, pat)
                got = count_subgraphs(g, pat).count
                assert got == expect, (pat.edges(), g.edge_array().tolist())


class TestSampledLargerGraphs:
    @pytest.mark.parametrize(
        "pat", ALL_PATTERNS, ids=lambda p: f"n{p.n}m{p.num_edges}e{hash(p) % 997}"
    )
    def test_pattern_on_samples(self, pat):
        for g in SAMPLED_GRAPHS:
            expect = count_vf2(g, pat)
            assert count_subgraphs(g, pat).count == expect
            assert count_subgraphs(g, pat, engine="general").count == expect


class TestCrossEngineAgreement:
    def test_all_systems_agree(self):
        """The paper verified Fringe-SGC against the third-party codes; we
        verify our engine against our baseline reimplementations."""
        graphs = [gen.erdos_renyi(10, 0.4, seed=9), gen.barabasi_albert(12, 3, seed=4)]
        for pat in all_connected_patterns(4):
            for g in graphs:
                counts = {
                    "fringe": count_subgraphs(g, pat).count,
                    "stmatch": count_enumerator(g, pat).count,
                    "graphset": count_iep(g, pat).count,
                    "vf2": count_vf2(g, pat),
                }
                assert len(set(counts.values())) == 1, (pat.edges(), counts)
