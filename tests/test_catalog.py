"""Tests that catalog patterns are the graphs they claim to be."""

import pytest

from repro.patterns import catalog
from repro.patterns.decompose import decompose
from repro.patterns.pattern import Pattern


class TestElementary:
    def test_star_shape(self):
        s = catalog.star(4)
        assert s.n == 5 and s.degree(0) == 4
        assert all(s.degree(v) == 1 for v in range(1, 5))

    def test_cycle_path_clique(self):
        assert catalog.cycle(5).num_edges == 5
        assert catalog.path(5).num_edges == 4
        assert catalog.clique(5).num_edges == 10

    def test_invalid_sizes(self):
        for fn, arg in [(catalog.star, 0), (catalog.cycle, 2), (catalog.path, 1), (catalog.clique, 1)]:
            with pytest.raises(ValueError):
                fn(arg)


class TestFig1:
    def test_eight_patterns(self):
        pats = catalog.fig1_patterns()
        assert len(pats) == 8
        by_n = {}
        for p in pats.values():
            by_n[p.n] = by_n.get(p.n, 0) + 1
        assert by_n == {3: 2, 4: 6}  # all connected 3-/4-vertex patterns

    def test_distinct_up_to_isomorphism(self):
        pats = list(catalog.fig1_patterns().values())
        for i in range(len(pats)):
            for j in range(i + 1, len(pats)):
                assert not pats[i].is_isomorphic(pats[j])

    def test_diamond_is_k4_minus_edge(self):
        d = catalog.diamond()
        assert d.n == 4 and d.num_edges == 5

    def test_paw_alias(self):
        assert catalog.paw() == catalog.tailed_triangle()


class TestKTailed:
    def test_k_tailed_triangle_shape(self):
        for k in (1, 2, 5):
            p = catalog.k_tailed_triangle(k)
            assert p.n == 3 + k and p.num_edges == 3 + k
        assert catalog.k_tailed_triangle(1).is_isomorphic(catalog.tailed_triangle())


class TestFig4:
    def test_size_matches_paper(self):
        p = catalog.fig4_pattern()
        assert p.n == 16 and p.num_edges == 25

    def test_triangle_core_and_fringe_census(self):
        d = decompose(catalog.fig4_pattern())
        assert d.num_core == 3
        census = {}
        for ft in d.fringe_types:
            census[ft.arity] = census.get(ft.arity, 0) + ft.count
        assert census == {1: 6, 2: 5, 3: 2}


class TestFamilies:
    def test_vertex_core_family(self):
        fam = catalog.vertex_core_family(6)
        assert list(fam) == ["2-star", "3-star", "4-star", "5-star", "6-star"]
        for k, pat in enumerate(fam.values(), start=2):
            assert decompose(pat).num_core == 1

    def test_edge_core_family_cores(self):
        for name, pat in catalog.edge_core_family().items():
            d = decompose(pat)
            assert d.num_core == 2, name
            assert pat.n <= 7  # the third-party 7-vertex limit

    def test_edge_core_family_known_shapes(self):
        fam = catalog.edge_core_family()
        assert fam["triangle"].is_isomorphic(catalog.triangle())
        assert fam["diamond"].is_isomorphic(catalog.diamond())
        assert fam["tailed triangle"].is_isomorphic(catalog.paw())

    def test_wedge_core_family(self):
        fam = catalog.wedge_core_family()
        assert fam["4-cycle"].is_isomorphic(catalog.cycle(4))
        import networkx as nx

        k23 = Pattern.from_networkx(nx.complete_bipartite_graph(2, 3))
        assert fam["k23"].is_isomorphic(k23)
        for name, pat in fam.items():
            d = decompose(pat)
            assert d.num_core == 3 and d.core_pattern.num_edges == 2, name
            assert pat.n <= 7

    def test_triangle_core_family(self):
        fam = catalog.triangle_core_family()
        assert fam["4-clique"].is_isomorphic(catalog.clique(4))
        for name, pat in fam.items():
            d = decompose(pat)
            assert d.num_core == 3 and d.core_pattern.num_edges == 3, name
            assert pat.n <= 7

    def test_core_with_fringes_zero_count_skipped(self):
        p = catalog.core_with_fringes("edge", [((0, 1), 0)])
        assert p.n == 2
