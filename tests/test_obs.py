"""Tests for the observability subsystem (repro.obs) and its wiring.

Covers the contracts the tentpole makes:

* metrics primitives: counters/gauges/fixed-bucket histograms, labeled
  series, snapshot/merge round trips (the cross-process delta format);
* tracing: contextvars nesting, monotonic timing, no-op when inactive;
* exporters: JSONL traces, Prometheus text format, CLI table;
* runtime wiring: span tree compile → execute → venn/fc, plan-cache
  metrics, the Observer hook, the compile-race accounting fix, and the
  locked stats snapshot;
* cross-process: PartialSum worker deltas sum to the in-process totals
  and merge into per-worker imbalance series;
* gpusim + bench: warp reports surface as metrics; run_figure emits one
  JSONL record per cell into BENCH_<figure>.json.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import Observer, Runtime, compile_pattern, count_subgraphs
from repro import obs
from repro import runtime as runtime_mod
from repro.core.backends import BatchBackend, MultiprocessBackend, SerialBackend
from repro.core.engine import EngineConfig
from repro.graph import generators as gen
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.parallel import ParallelConfig
from repro.patterns import catalog


@pytest.fixture(scope="module")
def kron():
    return gen.kronecker(6, edge_factor=8, seed=3)


@pytest.fixture(scope="module")
def kron_mid():
    """Large enough that the fork pool actually forks (many chunks)."""
    return gen.kronecker(7, edge_factor=8, seed=3)


# ----------------------------------------------------------------------
# metrics primitives
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_gauge_basicss(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(2.5)
        assert reg.counter("c").value == 5
        assert reg.gauge("g").value == 2.5

    def test_labeled_series_are_distinct(self):
        reg = MetricsRegistry()
        reg.counter("c", worker="1").inc(1)
        reg.counter("c", worker="2").inc(2)
        assert reg.counter("c", worker="1").value == 1
        assert reg.counter("c", worker="2").value == 2
        names = [(name, labels) for name, labels, _ in reg.collect()]
        assert ("c", {"worker": "1"}) in names and ("c", {"worker": "2"}) in names

    def test_histogram_bucket_placement(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1, 10, 100))
        h.observe_many([0.5, 1, 5, 10, 1000])
        assert h.counts == [2, 2, 0, 1]  # le=1 gets 0.5 and 1; overflow gets 1000
        assert h.count == 5 and h.sum == pytest.approx(1016.5)
        assert h.mean == pytest.approx(1016.5 / 5)

    def test_snapshot_merge_roundtrip(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(3)
        a.gauge("g").set(7)
        a.histogram("h", buckets=(1, 2)).observe_many([0.5, 1.5, 9])
        b.counter("c").inc(10)
        b.histogram("h", buckets=(1, 2)).observe(1.0)
        b.merge(a.snapshot())
        assert b.counter("c").value == 13
        assert b.gauge("g").value == 7
        h = b.histogram("h", buckets=(1, 2))
        assert h.counts == [2, 1, 1] and h.count == 4

    def test_merge_rejects_bucket_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1, 2)).observe(1)
        b.histogram("h", buckets=(5, 6)).observe(1)
        with pytest.raises(ValueError, match="bucket mismatch"):
            b.merge(a.snapshot())
        # self-merge with matching buckets is fine
        b.merge(b.snapshot())

    def test_thread_safety_of_counters(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.counter("c").inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("c").value == 4000


# ----------------------------------------------------------------------
# tracing
# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_records_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", detail="x"):
                pass
            with tracer.span("sibling"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["sibling"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].attrs == {"detail": "x"}
        assert tracer.children(by_name["outer"]) == [by_name["inner"], by_name["sibling"]]
        assert all(s.duration_s >= 0 for s in tracer.spans)

    def test_span_recorded_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert [s.name for s in tracer.spans] == ["boom"]

    def test_inactive_span_is_shared_noop(self):
        assert obs.current() is None
        cm1, cm2 = obs.span("a"), obs.span("b")
        assert cm1 is cm2  # the shared nullcontext: no allocation when off
        with cm1:
            pass

    def test_observer_scoping_restores_previous(self):
        outer, inner = Observer(), Observer()
        with outer:
            assert obs.current() is outer
            with inner:
                assert obs.current() is inner
            assert obs.current() is outer
        assert obs.current() is None

    def test_global_enable_disable(self):
        ob = obs.enable(trace=False)
        try:
            assert obs.current() is ob
            assert ob.tracer is None and ob.metrics is not None
        finally:
            obs.disable()
        assert obs.current() is None


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestExport:
    def test_trace_jsonl(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        path = tmp_path / "trace.jsonl"
        n = obs.write_trace_jsonl(tracer, path)
        lines = path.read_text().strip().splitlines()
        assert n == len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert records[0]["name"] == "outer"  # ordered by start time
        assert records[1]["parent_id"] == records[0]["span_id"]

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("repro_counts_total").inc(2)
        reg.gauge("repro_worker_busy_seconds", worker="7").set(0.5)
        reg.histogram("h", buckets=(1, 10)).observe_many([0.5, 5, 50])
        text = obs.prometheus_text(reg)
        assert "# TYPE repro_counts_total counter" in text
        assert "repro_counts_total 2" in text
        assert 'repro_worker_busy_seconds{worker="7"} 0.5' in text
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="10"} 2' in text  # cumulative
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "h_count 3" in text

    def test_metrics_table(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h").observe(1.0)
        table = obs.metrics_table(reg)
        assert "c" in table and "count=1" in table
        assert obs.metrics_table(MetricsRegistry()) == "(no metrics recorded)"


# ----------------------------------------------------------------------
# runtime wiring
# ----------------------------------------------------------------------
class TestRuntimeObservability:
    def test_span_tree_covers_compile_execute_venn_fc(self, kron):
        ob = Observer()
        rt = Runtime(observer=ob)
        rt.count(kron, catalog.diamond(), engine="general")
        roots = ob.tracer.roots()
        assert [r.name for r in roots] == ["count"]
        children = [c.name for c in ob.tracer.children(roots[0])]
        assert children == ["compile", "execute"]
        execute = ob.tracer.children(roots[0])[1]
        assert any(s.name == "venn_fc_batch" for s in ob.tracer.children(execute))

    def test_cache_hit_skips_compile_span(self, kron):
        ob = Observer()
        rt = Runtime(observer=ob)
        rt.count(kron, catalog.diamond(), engine="general")
        rt.count(kron, catalog.diamond(), engine="general")
        second = ob.tracer.roots()[1]
        assert [c.name for c in ob.tracer.children(second)] == ["execute"]

    def test_plan_cache_and_latency_metrics(self, kron):
        ob = Observer()
        rt = Runtime(observer=ob)
        rt.count(kron, catalog.diamond(), engine="general")
        rt.count(kron, catalog.diamond(), engine="general")
        m = ob.metrics
        assert m.counter("repro_counts_total").value == 2
        assert m.histogram("repro_count_latency_seconds").count == 2
        assert m.gauge("repro_plan_cache_hits").value == 1
        assert m.gauge("repro_plan_cache_misses").value == 1
        assert m.gauge("repro_plan_cache_hit_ratio").value == 0.5
        assert m.counter("repro_core_matches_total").value > 0
        assert m.histogram("repro_venn_set_size").count > 0
        assert m.histogram("repro_candidate_set_size").count > 0

    def test_stats_snapshot_is_a_locked_copy(self, kron):
        rt = Runtime()
        rt.count(kron, catalog.diamond())
        snap = rt.stats_snapshot()
        assert snap is not rt.stats
        assert snap.counts_served == 1
        rt.count(kron, catalog.diamond())
        assert snap.counts_served == 1  # the copy does not move

    def test_compile_race_counted_as_hit_after_race(self, kron, monkeypatch):
        rt = Runtime()
        pat = catalog.diamond()
        original = runtime_mod.compile_pattern
        first_started = threading.Event()
        release_first = threading.Event()
        calls = []

        def stalling_compile(pattern, cfg, **kwargs):
            calls.append(1)
            if len(calls) == 1:
                first_started.set()
                assert release_first.wait(10)
            return original(pattern, cfg, **kwargs)

        monkeypatch.setattr(runtime_mod, "compile_pattern", stalling_compile)
        loser_result = {}

        def loser():
            loser_result["plan"], loser_result["hit"], _ = rt.plan_for(pat)

        t = threading.Thread(target=loser)
        t.start()
        assert first_started.wait(10)
        # while the first thread is stuck compiling, win the race
        winner_plan, winner_hit, _ = rt.plan_for(pat)
        release_first.set()
        t.join(10)
        assert not winner_hit
        assert loser_result["hit"] is True
        assert loser_result["plan"] is winner_plan  # served the winner's plan
        snap = rt.stats_snapshot()
        assert snap.plan_cache_misses == 1  # one truthful miss, not two
        assert snap.plan_cache_hits == 1
        assert snap.compile_races == 1
        assert rt.cache_info()["compile_races"] == 1

    def test_no_observer_no_metrics_leak(self, kron):
        assert obs.current() is None
        res = Runtime().count(kron, catalog.diamond(), engine="general")
        assert res.stats is not None
        assert obs.current() is None


# ----------------------------------------------------------------------
# stats propagation across backends (satellite: consistency)
# ----------------------------------------------------------------------
class TestStatsPropagation:
    @pytest.fixture(scope="class")
    def partials(self, kron_mid):
        plan = compile_pattern(catalog.paw())
        serial_plan = compile_pattern(catalog.paw(), EngineConfig(fc_impl="iterative"))
        return {
            "serial": SerialBackend().run(serial_plan, kron_mid),
            "batch": BatchBackend().run(plan, kron_mid),
            "process": MultiprocessBackend(
                num_workers=2, schedule="dynamic", chunk_size=16
            ).run(plan, kron_mid),
        }

    def test_all_backends_nonzero_and_consistent(self, partials):
        sigmas = {p.sigma for p in partials.values()}
        matches = {p.matches for p in partials.values()}
        assert len(sigmas) == 1 and len(matches) == 1
        for name, p in partials.items():
            assert p.matches > 0, name
            assert p.venn_fc_s > 0.0, name
        assert partials["batch"].batches >= 1
        assert partials["process"].batches >= 1

    def test_runtime_stats_consistent_across_backends(self, kron_mid):
        expect = count_subgraphs(kron_mid, catalog.paw()).count
        rt = Runtime()
        for cfg, parallel in [
            (EngineConfig(fc_impl="iterative"), None),
            (EngineConfig(fc_impl="poly"), None),
            (EngineConfig(fc_impl="poly"), ParallelConfig(num_workers=2, chunk_size=16)),
        ]:
            res = rt.count(
                kron_mid, catalog.paw(), engine="general", config=cfg, parallel=parallel
            )
            assert res.count == expect
            assert res.stats.venn_fc_s > 0.0
            assert res.core_matches > 0
            assert res.stats.match_s >= 0.0

    def test_worker_deltas_sum_to_totals(self, partials):
        process = partials["process"]
        batch = partials["batch"]
        assert len(process.workers) > 0
        assert sum(w.matches for w in process.workers) == process.matches == batch.matches
        assert sum(w.batches for w in process.workers) == process.batches
        assert sum(w.venn_fc_s for w in process.workers) == pytest.approx(process.venn_fc_s)
        assert all(w.elapsed_s >= w.venn_fc_s for w in process.workers)
        assert all(w.pid > 0 for w in process.workers)

    def test_worker_metric_deltas_merge_to_single_process_totals(self, kron_mid):
        # single-process reference totals
        with Observer(trace=False) as ref:
            BatchBackend().run(compile_pattern(catalog.paw()), kron_mid)
        ref_matches = ref.metrics.counter("repro_core_matches_total").value
        assert ref_matches > 0
        # fork-pool run: worker-local registries merge at reduction
        with Observer(trace=False) as ob:
            partial = MultiprocessBackend(
                num_workers=2, schedule="dynamic", chunk_size=16
            ).run(compile_pattern(catalog.paw()), kron_mid)
        m = ob.metrics
        assert len({w.pid for w in partial.workers}) > 1
        assert m.counter("repro_core_matches_total").value == ref_matches
        assert m.histogram("repro_venn_set_size").count == ref_matches
        assert m.gauge("repro_worker_load_imbalance").value >= 1.0
        assert m.gauge("repro_workers").value >= 2
        workers = [
            labels["worker"]
            for name, labels, _ in m.collect()
            if name == "repro_worker_busy_seconds"
        ]
        assert len(workers) >= 2

    def test_execution_stats_report_worker_count(self, kron_mid):
        rt = Runtime()
        res = rt.count(
            kron_mid,
            catalog.paw(),
            engine="general",
            parallel=ParallelConfig(num_workers=2, chunk_size=16),
        )
        assert res.stats.workers >= 2


# ----------------------------------------------------------------------
# gpusim metrics
# ----------------------------------------------------------------------
class TestGpusimMetrics:
    def test_launch_surfaces_warp_metrics(self, kron):
        from repro.gpusim.machine import GPUMachine, MachineConfig
        from repro.gpusim.warp import LaneOp, WarpStats, run_warp

        def kernel(graph, roots):
            def lane(root):
                yield LaneOp(pc=0, addresses=(root,))

            stats = WarpStats()
            stats.merge(run_warp([lane(r) for r in roots]))
            return stats

        with Observer() as ob:
            report = GPUMachine(MachineConfig(num_sms=4)).launch(kron, kernel)
        m = ob.metrics
        assert m.counter("gpusim_launches_total").value == 1
        assert m.counter("gpusim_warp_steps_total").value == report.total_steps
        assert 0.0 < m.gauge("gpusim_simt_efficiency").value <= 1.0
        assert m.gauge("gpusim_load_imbalance").value >= 1.0
        assert 0.0 < m.gauge("gpusim_warp_occupancy").value <= 1.0
        assert any(s.name == "gpusim.launch" for s in ob.tracer.spans)


# ----------------------------------------------------------------------
# bench harness JSONL records
# ----------------------------------------------------------------------
class TestBenchRecords:
    def test_run_figure_emits_one_jsonl_record_per_cell(self, tmp_path, kron):
        from repro.bench.harness import run_figure

        res = run_figure(
            "smoke",
            {"triangle": catalog.triangle(), "paw": catalog.paw()},
            {"kron": kron},
            ["fringe-sgc", "stmatch-like"],
            timeout_s=30.0,
            record_dir=tmp_path,
        )
        path = tmp_path / "BENCH_smoke.json"
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(res.measurements) == 4
        records = [json.loads(line) for line in lines]
        for rec in records:
            assert rec["figure"] == "smoke"
            assert rec["system"] in ("fringe-sgc", "stmatch-like")
            assert rec["status"] in ("ok", "dnf", "unsupported")
            if rec["status"] == "ok":
                assert int(rec["count"]) >= 0
                assert rec["seconds"] >= 0
                assert rec["throughput_eps"] > 0
        # ok cells agree per (pattern, graph) — the cross-check passed
        by_cell = {}
        for rec in records:
            if rec["status"] == "ok":
                by_cell.setdefault((rec["pattern"], rec["graph"]), set()).add(rec["count"])
        assert all(len(counts) == 1 for counts in by_cell.values())

    def test_run_figure_appends_across_runs(self, tmp_path, kron):
        from repro.bench.harness import run_figure

        for _ in range(2):
            run_figure(
                "trend",
                {"triangle": catalog.triangle()},
                {"kron": kron},
                ["fringe-sgc"],
                record_dir=tmp_path,
            )
        lines = (tmp_path / "BENCH_trend.json").read_text().strip().splitlines()
        assert len(lines) == 2  # the trajectory grows run over run

    def test_env_var_selects_record_dir(self, tmp_path, kron, monkeypatch):
        from repro.bench.harness import run_figure

        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        run_figure("envfig", {"triangle": catalog.triangle()}, {"kron": kron}, ["fringe-sgc"])
        assert (tmp_path / "BENCH_envfig.json").exists()

    def test_no_record_dir_no_file(self, tmp_path, kron, monkeypatch):
        from repro.bench.harness import run_figure

        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        run_figure("nofig", {"triangle": catalog.triangle()}, {"kron": kron}, ["fringe-sgc"])
        assert not list(tmp_path.glob("BENCH_*.json"))


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------
class TestCLIObservability:
    @pytest.fixture()
    def graph_file(self, tmp_path, kron):
        path = tmp_path / "kron.el"
        lines = [f"{u} {v}" for u, v in kron.edge_array().tolist()]
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    @pytest.fixture()
    def fresh_runtime(self):
        # the CLI serves from the process-wide runtime; start with an
        # empty plan cache so the trace contains a compile span
        from repro.runtime import set_runtime

        old = set_runtime(Runtime())
        yield
        set_runtime(old)

    def test_trace_metrics_prom_flags(self, graph_file, tmp_path, capsys, fresh_runtime):
        from repro.cli import main

        trace_path = tmp_path / "trace.jsonl"
        prom_path = tmp_path / "metrics.prom"
        rc = main(
            [
                "count",
                "--graph", graph_file,
                "--pattern", "diamond",
                "--engine", "general",
                "--trace", str(trace_path),
                "--metrics",
                "--prom", str(prom_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace    :" in out and "metrics  :" in out and "prom     :" in out
        # valid JSONL whose span tree covers compile -> execute -> venn/fc
        records = [json.loads(line) for line in trace_path.read_text().strip().splitlines()]
        names = {r["name"] for r in records}
        assert {"count", "compile", "execute", "venn_fc_batch"} <= names
        by_id = {r["span_id"]: r for r in records}
        execute = next(r for r in records if r["name"] == "execute")
        assert by_id[execute["parent_id"]]["name"] == "count"
        # venn/fc spans appear both under execute (the real run) and under
        # compile (the plan's self-count deriving the automorphism factor)
        venn_parents = {
            by_id[r["parent_id"]]["name"] for r in records if r["name"] == "venn_fc_batch"
        }
        assert "execute" in venn_parents
        # Prometheus dump has plan-cache and histogram series
        prom = prom_path.read_text()
        assert "# TYPE repro_count_latency_seconds histogram" in prom
        assert "repro_plan_cache_hit_ratio" in prom
        assert "repro_count_latency_seconds_bucket" in prom

    def test_cli_without_flags_records_nothing(self, graph_file, capsys):
        from repro.cli import main

        assert main(["count", "--graph", graph_file, "--pattern", "triangle"]) == 0
        out = capsys.readouterr().out
        assert "trace    :" not in out and "metrics  :" not in out
        assert obs.current() is None
