"""Property-based tests: partitioning and parallel splits never change
counts, for random graphs, random patterns, random assignments."""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import count_subgraphs
from repro.graph.csr import CSRGraph
from repro.parallel import partitioned_count
from repro.parallel.partition import partition_graph
from repro.patterns import catalog

SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

PATTERNS = [
    catalog.triangle(),
    catalog.paw(),
    catalog.star(3),
    catalog.four_cycle(),
]


@st.composite
def graph_and_parts(draw):
    n = draw(st.integers(min_value=6, max_value=24))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    mask = draw(st.lists(st.booleans(), min_size=len(pairs), max_size=len(pairs)))
    edges = [p for p, m in zip(pairs, mask) if m]
    parts = draw(st.integers(min_value=2, max_value=4))
    return CSRGraph.from_edges(edges, num_vertices=n), parts


class TestPartitionProperties:
    @SETTINGS
    @given(graph_and_parts(), st.integers(0, len(PATTERNS) - 1))
    def test_partitioned_equals_whole(self, gp, pi):
        graph, parts = gp
        pattern = PATTERNS[pi]
        expect = count_subgraphs(graph, pattern).count
        assert partitioned_count(graph, pattern, num_parts=parts).count == expect

    @SETTINGS
    @given(graph_and_parts(), st.randoms(use_true_random=False))
    def test_random_assignment_partition_invariants(self, gp, rnd):
        graph, parts = gp
        n = graph.num_vertices
        assignment = np.asarray([rnd.randrange(parts) for _ in range(n)], dtype=np.int64)
        partitions = partition_graph(graph, parts, halo=2, assignment=assignment)
        owned = np.concatenate(
            [p.local_to_global[p.owned_local] for p in partitions]
        )
        assert sorted(owned.tolist()) == list(range(n))
        for p in partitions:
            # local relabeling must preserve global order (symmetry
            # breaking correctness depends on it)
            assert np.all(np.diff(p.local_to_global) > 0)
            # owned vertices keep their full degree
            for lv in p.owned_local.tolist():
                gv = int(p.local_to_global[lv])
                assert p.graph.degree(lv) == graph.degree(gv)
