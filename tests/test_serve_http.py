"""End-to-end tests over real sockets: HTTP server + blocking client.

The headline test fires 32 concurrent queries (mixed patterns, many
duplicated) and cross-checks every response against direct
``Runtime.count`` calls — the service must be a transparent cache/batch
layer, never an approximation.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.graph import generators as gen
from repro.patterns.dsl import parse_pattern
from repro.runtime import Runtime
from repro.serve import CountingService, GraphRegistry, ServiceConfig
from repro.serve.client import CountClient, ServeClientError
from repro.serve.http import start_in_thread


@pytest.fixture(scope="module")
def graphs():
    return {
        "er": gen.erdos_renyi(40, 0.3, seed=7),
        "ba": gen.barabasi_albert(60, 4, seed=8),
    }


@pytest.fixture(scope="module")
def server(graphs):
    registry = GraphRegistry()
    for name, graph in graphs.items():
        registry.register(name, graph)
    service = CountingService(
        registry, config=ServiceConfig(max_queue=64, max_batch=8, executor_workers=2)
    )
    handle = start_in_thread(service)
    yield handle, service
    handle.stop()


@pytest.fixture
def client(server):
    handle, _ = server
    return CountClient(port=handle.port, timeout=30.0)


class TestRoutes:
    def test_healthz(self, client, graphs):
        health = client.healthz()
        assert health["ok"] is True
        assert {g["name"] for g in health["graphs"]} == set(graphs)
        er = next(g for g in health["graphs"] if g["name"] == "er")
        assert er["vertices"] == 40 and len(er["fingerprint"]) == 64

    def test_count_round_trip(self, client, graphs):
        response = client.count("er", "triangle")
        expected = Runtime().count(graphs["er"], parse_pattern("triangle")).count
        assert response.count == expected
        assert response.graph == "er"
        assert response.fingerprint == graphs["er"].fingerprint()

    def test_metrics_prometheus_text(self, client):
        client.count("er", "3-star")
        text = client.metrics()
        assert "# TYPE repro_serve_latency_seconds histogram" in text
        assert "repro_serve_queue_depth" in text
        assert "repro_serve_responses_total" in text

    def test_error_codes_map_to_http_status(self, client):
        with pytest.raises(ServeClientError) as exc:
            client.count("missing", "triangle")
        assert exc.value.code == "unknown_graph" and exc.value.status == 404
        with pytest.raises(ServeClientError) as exc:
            client.count("er", "not a pattern @@@")
        assert exc.value.code == "bad_pattern" and exc.value.status == 400

    def test_unknown_route_and_wrong_method(self, client):
        status, body = client._json("GET", "/v2/nope")
        assert status == 404
        status, body = client._json("GET", "/v1/count")
        assert status == 405 and body["ok"] is False

    def test_garbage_body_is_bad_request(self, client):
        status, raw = client._request(
            "POST", "/v1/count", b"\xff\xfe this is not json"
        )
        assert status == 400
        assert json.loads(raw)["error"]["code"] == "bad_request"


class TestConcurrent:
    def test_32_concurrent_mixed_queries_match_direct_runtime(self, client, graphs):
        # mixed patterns, deliberately duplicated so coalescing/caching has
        # identical in-flight and repeated work to exploit
        workload = [
            ("er", "triangle"), ("er", "3-star"), ("er", "paw"), ("er", "4-cycle"),
            ("ba", "triangle"), ("ba", "3-star"), ("ba", "diamond"), ("ba", "4-star"),
        ] * 4  # 32 queries
        direct = Runtime()
        expected = {
            (g, p): direct.count(graphs[g], parse_pattern(p)).count
            for (g, p) in set(workload)
        }
        with ThreadPoolExecutor(max_workers=32) as pool:
            responses = list(
                pool.map(lambda gp: (gp, client.count(gp[0], gp[1])), workload)
            )
        assert len(responses) == 32
        for (g, p), response in responses:
            assert response.count == expected[(g, p)], (g, p)
        # duplicated queries were served without 32 separate executions
        text = client.metrics()
        metrics = {
            line.split()[0]: float(line.split()[1])
            for line in text.splitlines()
            if line and not line.startswith("#") and len(line.split()) == 2
        }
        saved = (
            metrics.get("repro_serve_coalesced_total", 0)
            + metrics.get("repro_serve_result_cache_hits_total", 0)
        )
        assert saved > 0
