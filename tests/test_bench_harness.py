"""Tests for the benchmark harness (cells, figures, reporting)."""


import json

import pytest

from repro.bench import (
    FigureResult,
    Measurement,
    geomean,
    load_figure,
    render_figure,
    render_speedups,
    run_cell,
    run_figure,
    save_figure,
)
from repro.bench import workloads as W
from repro.graph import generators as gen
from repro.patterns import catalog


@pytest.fixture(scope="module")
def graphs():
    return {"er": gen.erdos_renyi(40, 0.2, seed=1), "ba": gen.barabasi_albert(40, 3, seed=2)}


class TestGeomean:
    def test_basic(self):
        assert geomean([1, 100]) == pytest.approx(10.0)
        assert geomean([5]) == pytest.approx(5.0)

    def test_ignores_none_and_empty(self):
        assert geomean([None, 4.0, 9.0]) == pytest.approx(6.0)
        assert geomean([]) == 0.0


class TestRunCell:
    def test_ok_cell(self, graphs):
        m = run_cell("fringe-sgc", catalog.triangle(), "triangle", graphs["er"], "er")
        assert m.status == "ok" and m.count is not None and m.throughput > 0

    def test_dnf_cell(self):
        g = gen.kronecker(9, 16, seed=1)
        m = run_cell("stmatch-like", catalog.star(6), "6-star", g, "kron", timeout_s=0.05)
        assert m.status == "dnf" and m.throughput is None

    def test_unsupported_cell(self, graphs):
        m = run_cell("stmatch-like", catalog.star(12), "12-star", graphs["er"], "er")
        assert m.status == "unsupported"


class TestRunFigure:
    def test_counts_cross_checked(self, graphs):
        res = run_figure(
            "smoke",
            {"triangle": catalog.triangle(), "paw": catalog.paw()},
            graphs,
            ("fringe-sgc", "stmatch-like", "graphset-like"),
            timeout_s=10.0,
        )
        res.verify_counts_agree()  # raises on disagreement
        assert res.patterns() == ["triangle", "paw"]
        assert set(res.systems()) == {"fringe-sgc", "stmatch-like", "graphset-like"}

    def test_geomean_and_speedup(self, graphs):
        res = run_figure(
            "smoke", {"triangle": catalog.triangle()}, graphs, ("fringe-sgc", "stmatch-like")
        )
        tp = res.geomean_throughput("fringe-sgc", "triangle")
        assert tp is not None and tp > 0
        sp = res.speedup("triangle", over="stmatch-like")
        assert sp is not None and sp > 0

    def test_dnf_threshold_drops_system(self):
        res = FigureResult("x")
        for i, status in enumerate(["ok", "dnf", "dnf"]):
            res.measurements.append(
                Measurement("s", "p", f"g{i}", status, 1 if status == "ok" else None,
                            0.5 if status == "ok" else None, 100)
            )
        # paper rule: more than one DNF input -> drop the system
        assert res.geomean_throughput("s", "p") is None

    def test_count_disagreement_detected(self):
        res = FigureResult("x")
        res.measurements.append(Measurement("a", "p", "g", "ok", 1, 0.1, 10))
        res.measurements.append(Measurement("b", "p", "g", "ok", 2, 0.1, 10))
        with pytest.raises(AssertionError, match="disagreement"):
            res.verify_counts_agree()


class TestReporting:
    def test_render_and_round_trip(self, graphs, tmp_path):
        res = run_figure(
            "smoke", {"triangle": catalog.triangle()}, graphs, ("fringe-sgc",)
        )
        text = render_figure(res)
        assert "fringe-sgc" in text and "triangle" in text
        assert "speedup" in render_speedups(res, over="fringe-sgc")
        path = tmp_path / "fig.json"
        save_figure(res, path)
        loaded = load_figure(path)
        assert loaded.figure == res.figure
        assert len(loaded.measurements) == len(res.measurements)
        assert loaded.measurements[0].count == res.measurements[0].count


class TestWorkloads:
    def test_ten_inputs(self):
        graphs = W.ten_inputs("tiny")
        assert len(graphs) == 10

    def test_figure_pattern_families_nonempty(self):
        assert len(W.fig08_patterns()) == 5
        assert len(W.fig09_patterns()) >= 8
        assert len(W.fig10_patterns()) >= 5
        assert len(W.fig11_patterns()) >= 5
        assert len(W.fig12_series(10)) == 6
        assert list(W.fig12_series(10))[-1] == "fig4+10"
        assert len(W.fig15_patterns()) >= 7


class TestRecordAppender:
    def test_single_process_round_trip(self, tmp_path):
        from repro.bench.harness import RecordAppender

        path = tmp_path / "BENCH_x.json"
        with RecordAppender(path) as appender:
            appender.append({"cell": 1})
            appender.append({"cell": 2, "note": "y"})
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records == [{"cell": 1}, {"cell": 2, "note": "y"}]

    def test_concurrent_appenders_produce_only_parseable_lines(self, tmp_path):
        import subprocess
        import sys

        path = tmp_path / "BENCH_concurrent.json"
        writers, per_writer = 4, 150
        script = (
            "import sys\n"
            "from repro.bench.harness import RecordAppender\n"
            "wid, path, n = int(sys.argv[1]), sys.argv[2], int(sys.argv[3])\n"
            "with RecordAppender(path) as a:\n"
            "    for i in range(n):\n"
            "        a.append({'writer': wid, 'i': i, 'pad': 'x' * 400})\n"
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(w), str(path), str(per_writer)]
            )
            for w in range(writers)
        ]
        for p in procs:
            assert p.wait(timeout=60) == 0
        lines = path.read_text().splitlines()
        assert len(lines) == writers * per_writer
        seen = set()
        for line in lines:
            rec = json.loads(line)  # every line parses — no interleaving
            assert len(rec["pad"]) == 400
            seen.add((rec["writer"], rec["i"]))
        assert len(seen) == writers * per_writer  # no record lost or torn
