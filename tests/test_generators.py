"""Tests for the synthetic graph generators (Table 1 stand-ins)."""

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.stats import num_components


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda s: gen.rmat(8, 4, seed=s),
            lambda s: gen.kronecker(7, 8, seed=s),
            lambda s: gen.erdos_renyi(80, 0.08, seed=s),
            lambda s: gen.barabasi_albert(60, 3, seed=s),
            lambda s: gen.powerlaw_cluster(60, 4, 0.5, seed=s),
            lambda s: gen.random_geometric(80, 0.18, seed=s),
            lambda s: gen.delaunay(80, seed=s),
            lambda s: gen.road_network(10, 10, seed=s),
            lambda s: gen.internet_topology(80, seed=s),
            lambda s: gen.web_copying(80, seed=s),
        ],
        ids=[
            "rmat",
            "kronecker",
            "er",
            "ba",
            "plc",
            "geometric",
            "delaunay",
            "road",
            "internet",
            "web",
        ],
    )
    def test_same_seed_same_graph(self, factory):
        assert factory(3) == factory(3)

    def test_different_seed_different_graph(self):
        assert gen.rmat(8, 4, seed=1) != gen.rmat(8, 4, seed=2)


class TestTopologyClasses:
    def test_rmat_size(self):
        g = gen.rmat(8, 8, seed=0)
        assert g.num_vertices <= 256
        assert g.num_edges > 500

    def test_kronecker_is_skewed(self):
        g = gen.kronecker(9, 16, seed=0)
        degs = np.sort(g.degrees)[::-1]
        # hub dominance: top vertex way above the median
        assert degs[0] > 8 * max(np.median(degs), 1)

    def test_delaunay_planar_degrees(self):
        g = gen.delaunay(400, seed=1)
        assert 5.0 < g.avg_degree() < 7.0  # Euler: ~6 for triangulations
        assert g.max_degree() < 30

    def test_road_low_degree(self):
        g = gen.road_network(30, 30, seed=1)
        assert g.max_degree() <= 4
        assert g.avg_degree() < 3.5

    def test_grid_is_full(self):
        g = gen.grid_graph(5, 7)
        assert g.num_vertices == 35
        assert g.num_edges == 5 * 6 + 4 * 7  # horizontal + vertical

    def test_ba_connected(self):
        g = gen.barabasi_albert(200, 3, seed=5)
        assert num_components(g) == 1
        assert g.num_edges <= 3 * 200

    def test_web_copying_heavy_tail(self):
        g = gen.web_copying(500, out_degree=7, seed=2)
        assert g.max_degree() > 4 * g.avg_degree()

    def test_geometric_radius_zero(self):
        g = gen.random_geometric(50, 0.0001, seed=0)
        assert g.num_edges == 0


class TestErdosRenyi:
    def test_p_zero_and_one(self):
        assert gen.erdos_renyi(20, 0.0, seed=1).num_edges == 0
        assert gen.erdos_renyi(10, 1.0, seed=1).num_edges == 45

    def test_expected_density(self):
        g = gen.erdos_renyi(300, 0.1, seed=4)
        expected = 0.1 * 300 * 299 / 2
        assert abs(g.num_edges - expected) < 0.15 * expected

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            gen.erdos_renyi(10, 1.5)


class TestCanonical:
    def test_complete(self):
        g = gen.complete_graph(6)
        assert g.num_edges == 15
        assert g.degrees.tolist() == [5] * 6

    def test_cycle(self):
        g = gen.cycle_graph(7)
        assert g.num_edges == 7
        assert g.degrees.tolist() == [2] * 7

    def test_star(self):
        g = gen.star_graph(5)
        assert g.degree(0) == 5
        assert g.num_edges == 5

    def test_path(self):
        g = gen.path_graph(6)
        assert g.num_edges == 5
        assert g.degree(0) == 1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            gen.cycle_graph(2)
        with pytest.raises(ValueError):
            gen.rmat(0)
        with pytest.raises(ValueError):
            gen.barabasi_albert(3, 5)
        with pytest.raises(ValueError):
            gen.rmat(4, a=0.9, b=0.9, c=0.9)
