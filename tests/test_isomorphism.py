"""Tests for the backtracking (sub)graph isomorphism used by the toolkit."""


from repro.patterns import catalog
from repro.patterns.isomorphism import are_isomorphic, automorphisms_of, isomorphisms
from repro.patterns.pattern import Pattern


class TestAreIsomorphic:
    def test_relabelings(self):
        p = catalog.tailed_triangle()
        assert are_isomorphic(p, p.relabel([3, 1, 0, 2]))

    def test_same_degree_sequence_not_isomorphic(self):
        # C6 vs two triangles... two triangles are disconnected; use
        # C6 vs K_{3,3} minus a perfect matching = C6 — instead compare
        # the two degree-regular 6-vertex graphs C6 and 2K3 is invalid.
        # Classic pair: the 4-cycle plus chord (diamond) vs K4 minus path.
        c6 = catalog.cycle(6)
        prism = Pattern.from_edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3), (1, 4), (2, 5)])
        assert not are_isomorphic(c6, prism)  # different edge counts

    def test_same_counts_not_isomorphic(self):
        star_plus = Pattern.from_edges([(0, 1), (0, 2), (0, 3), (1, 2)])  # paw
        path4_plus = catalog.four_cycle()
        assert not are_isomorphic(star_plus, path4_plus)

    def test_size_mismatch(self):
        assert not are_isomorphic(catalog.triangle(), catalog.four_clique())


class TestIsomorphisms:
    def test_count_equals_aut_size(self):
        assert len(list(isomorphisms(catalog.triangle(), catalog.triangle()))) == 6

    def test_mappings_are_valid(self):
        a, b = catalog.diamond(), catalog.diamond().relabel([2, 3, 0, 1])
        for m in isomorphisms(a, b):
            for u, v in a.edges():
                assert b.has_edge(m[u], m[v])

    def test_compatible_filter(self):
        # force vertex 0 to map to itself only
        maps = list(
            isomorphisms(
                catalog.triangle(),
                catalog.triangle(),
                compatible=lambda va, vb: va != 0 or vb == 0,
            )
        )
        assert len(maps) == 2  # stabilizer of one triangle vertex


class TestAutomorphismsOf:
    def test_identity_always_present(self):
        for pat in (catalog.wedge(), catalog.paw(), catalog.star(3)):
            autos = automorphisms_of(pat)
            assert tuple(range(pat.n)) in autos

    def test_group_closure(self):
        autos = automorphisms_of(catalog.four_cycle())
        as_set = set(autos)
        for a in autos:
            for b in autos:
                composed = tuple(a[b[i]] for i in range(4))
                assert composed in as_set
