"""Tests for the specialized small-core engines (§3.4)."""

import math

import numpy as np
import pytest

from repro.baselines.vf2 import count_vf2
from repro.core.engine import count_subgraphs
from repro.core.specialized import (
    EdgeCoreEngine,
    ThreeCoreEngine,
    VertexCoreEngine,
    common_neighbor_counts,
    dispatch,
)
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from repro.patterns import catalog
from repro.patterns.decompose import decompose


class TestDispatch:
    def test_by_core_size(self):
        assert isinstance(dispatch(decompose(catalog.star(3))), VertexCoreEngine)
        assert isinstance(dispatch(decompose(catalog.diamond())), EdgeCoreEngine)
        assert isinstance(dispatch(decompose(catalog.four_clique())), ThreeCoreEngine)
        assert dispatch(decompose(catalog.clique(5))) is None

    def test_engine_type_validation(self):
        with pytest.raises(ValueError):
            VertexCoreEngine(decompose(catalog.diamond()))
        with pytest.raises(ValueError):
            EdgeCoreEngine(decompose(catalog.star(3)))
        with pytest.raises(ValueError):
            ThreeCoreEngine(decompose(catalog.diamond()))


class TestVertexCore:
    def test_kstars_match_formula(self, small_graphs):
        for g in small_graphs:
            for k in (2, 3, 5):
                eng = VertexCoreEngine(decompose(catalog.star(k)))
                expected = sum(math.comb(int(d), k) for d in g.degrees)
                assert eng(g).count == expected

    def test_result_metadata(self, k5):
        res = VertexCoreEngine(decompose(catalog.star(2)))(k5)
        assert res.engine == "fringe-specialized(vertex-core)"
        assert res.core_matches == 5  # all K5 vertices have degree >= 2


class TestEdgeCore:
    PATTERNS = [
        catalog.triangle(),
        catalog.tailed_triangle(),
        catalog.diamond(),
        catalog.k_tailed_triangle(2),
        catalog.path(4),  # 2-core with a tail on each side
        catalog.core_with_fringes("edge", [((0, 1), 2), ((0,), 1), ((1,), 1)]),
    ]

    @pytest.mark.parametrize("pat", PATTERNS, ids=lambda p: f"n{p.n}m{p.num_edges}")
    def test_matches_vf2(self, small_graphs, pat):
        eng = EdgeCoreEngine(decompose(pat))
        for g in small_graphs:
            assert eng(g).count == count_vf2(g, pat)

    def test_large_graph_consistency(self):
        g = gen.kronecker(9, 8, seed=2)
        pat = catalog.k_tailed_triangle(3)
        a = EdgeCoreEngine(decompose(pat))(g).count
        b = count_subgraphs(g, pat, engine="general").count
        assert a == b

    def test_exact_on_hub_graphs(self):
        # big star: C(hub degree, k) terms blow past float precision
        g = gen.star_graph(300)
        pat = catalog.path(4)  # edge core, tails both sides
        a = EdgeCoreEngine(decompose(pat))(g).count
        assert a == count_vf2(g, pat)


class TestCommonNeighborCounts:
    def test_small_path(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        edges = g.edge_array()
        c = common_neighbor_counts(g, edges)
        as_dict = {tuple(e): int(cc) for e, cc in zip(edges.tolist(), c)}
        assert as_dict[(0, 1)] == 1  # vertex 2
        assert as_dict[(2, 3)] == 0

    def test_sparse_and_merge_paths_agree(self):
        g = gen.barabasi_albert(120, 4, seed=8)
        edges = g.edge_array()
        via_matmul = common_neighbor_counts(g, edges)
        # force the merge path by lying about the threshold
        out = np.empty(len(edges), dtype=np.int64)
        for i, (u, v) in enumerate(edges.tolist()):
            au, av = set(g.neighbors(u).tolist()), set(g.neighbors(v).tolist())
            out[i] = len(au & av)
        assert via_matmul.tolist() == out.tolist()

    def test_empty_edges(self):
        g = gen.path_graph(3)
        assert len(common_neighbor_counts(g, np.empty((0, 2), dtype=np.int64))) == 0


class TestThreeCore:
    TRIANGLE_PATTERNS = [
        catalog.four_clique(),
        catalog.tailed_four_clique(1),
        catalog.core_with_fringes("triangle", [((0, 1, 2), 2)]),
        catalog.core_with_fringes("triangle", [((0, 1, 2), 1), ((0, 1), 1), ((2,), 1)]),
    ]
    WEDGE_PATTERNS = [
        catalog.four_cycle(),
        catalog.core_with_fringes(catalog.wedge(), [((1, 2), 1), ((0,), 1)]),
        catalog.core_with_fringes(catalog.wedge(), [((1, 2), 2)]),
    ]

    @pytest.mark.parametrize(
        "pat", TRIANGLE_PATTERNS + WEDGE_PATTERNS, ids=lambda p: f"n{p.n}m{p.num_edges}"
    )
    def test_matches_vf2(self, small_graphs, pat):
        eng = ThreeCoreEngine(decompose(pat))
        for g in small_graphs[:5]:
            assert eng(g).count == count_vf2(g, pat)

    def test_core_kind_detection(self):
        assert ThreeCoreEngine(decompose(catalog.four_clique())).core_kind == "triangle"
        assert ThreeCoreEngine(decompose(catalog.four_cycle())).core_kind == "wedge"

    def test_fig4_in_itself(self):
        pat = catalog.fig4_pattern()
        g = CSRGraph.from_edges(pat.edges(), num_vertices=pat.n)
        eng = ThreeCoreEngine(decompose(pat))
        assert eng(g).count == 1

    def test_assignment_dedup_multiplicities(self):
        # fully symmetric decoration: all 6 triangle-role assignments give
        # the same table, so one polynomial with multiplicity 6
        eng = ThreeCoreEngine(decompose(catalog.four_clique()))
        polys = eng._polynomials()
        assert sum(m for _, m in polys) == 6
        assert len(polys) == 1
