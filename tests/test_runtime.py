"""Tests for the plan / backend / runtime layering (DESIGN.md §7).

Covers the three contracts the architecture makes:

* plans are frozen, picklable value objects built once per
  (canonical pattern, config) and cached by the runtime's LRU;
* every backend (serial / batch / multiprocess x static / strided /
  dynamic) computes the same counts as the reference entry point;
* normalization lives in exactly one code path and execution stats are
  populated per call.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import Runtime, compile_pattern, count_subgraphs, get_runtime
from repro.core import backends as backends_mod
from repro.core.backends import BatchBackend, MultiprocessBackend, SerialBackend
from repro.core.engine import EngineConfig
from repro.core.plan import exact_divide, plan_key
from repro.graph import generators as gen
from repro.parallel import ParallelConfig, parallel_count
from repro.patterns import catalog


@pytest.fixture(scope="module")
def kron():
    """A small Kronecker graph (the paper's synthetic input family)."""
    return gen.kronecker(6, edge_factor=8, seed=3)


CATALOG = {
    "3-star": catalog.star(3),
    "triangle": catalog.triangle(),
    "paw": catalog.paw(),
    "diamond": catalog.diamond(),
    "4-cycle": catalog.four_cycle(),
    "4-clique": catalog.four_clique(),
    "tailed-4-clique": catalog.tailed_four_clique(),
    "fig4": catalog.fig4_pattern(),
}


# ----------------------------------------------------------------------
# plan compilation + cache
# ----------------------------------------------------------------------
class TestPlanCache:
    def test_cache_hit_returns_identical_plan_and_counts(self, kron):
        rt = Runtime()
        pat = catalog.diamond()
        plan1, hit1, compile1 = rt.plan_for(pat)
        plan2, hit2, compile2 = rt.plan_for(pat)
        assert plan1 is plan2  # the identical object, not an equal copy
        assert (hit1, hit2) == (False, True)
        assert compile1 > 0.0 and compile2 == 0.0
        r1 = rt.count(kron, pat)
        r2 = rt.count(kron, pat)
        assert r1.count == r2.count

    def test_second_count_reports_cache_hit_and_skips_compile(self, kron):
        rt = Runtime()
        pat = catalog.tailed_triangle()
        r1 = rt.count(kron, pat)
        r2 = rt.count(kron, pat)
        assert r1.stats is not None and r2.stats is not None
        assert not r1.stats.plan_cache_hit and r1.stats.compile_s > 0.0
        assert r2.stats.plan_cache_hit and r2.stats.compile_s == 0.0
        assert rt.stats.plan_cache_hits == 1
        assert rt.stats.plan_cache_misses == 1

    def test_isomorphic_patterns_share_a_plan(self):
        rt = Runtime()
        pat = catalog.paw()
        relabeled = pat.relabel(list(reversed(range(pat.n))))
        plan1, _, _ = rt.plan_for(pat)
        plan2, hit, _ = rt.plan_for(relabeled)
        assert hit and plan1 is plan2

    def test_distinct_configs_get_distinct_plans(self):
        rt = Runtime()
        pat = catalog.diamond()
        p1, _, _ = rt.plan_for(pat, EngineConfig())
        p2, hit, _ = rt.plan_for(pat, EngineConfig(venn_impl="hash"))
        assert not hit and p1 is not p2
        assert plan_key(pat, EngineConfig()) != plan_key(pat, EngineConfig(venn_impl="hash"))

    def test_lru_eviction(self):
        rt = Runtime(max_plans=2)
        for pat in (catalog.triangle(), catalog.diamond(), catalog.four_cycle()):
            rt.plan_for(pat)
        info = rt.cache_info()
        assert info["size"] == 2
        assert info["evictions"] == 1
        # the first (LRU) pattern was evicted -> recompiles on next use
        _, hit, _ = rt.plan_for(catalog.triangle())
        assert not hit

    def test_explicit_decomposition_bypasses_cache(self, kron):
        from repro.patterns.decompose import decomposition_from_core

        rt = Runtime()
        pat = catalog.four_clique()
        alt = decomposition_from_core(pat, [0, 1, 2, 3])
        r_default = rt.count(kron, pat, engine="general")
        r_alt = rt.count(kron, pat, engine="general", decomposition=alt)
        assert r_default.count == r_alt.count
        assert rt.cache_info()["size"] == 1  # the alt plan was not cached

    def test_global_runtime_is_shared(self):
        assert get_runtime() is get_runtime()


class TestPlanPickle:
    @pytest.mark.parametrize("name", ["3-star", "diamond", "4-clique", "fig4"])
    def test_roundtrip_preserves_counts(self, kron, name):
        plan = compile_pattern(CATALOG[name])
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.denominator == plan.denominator
        assert clone.anch == plan.anch and clone.k == plan.k
        assert clone.key == plan.key
        assert clone.specialized_kind == plan.specialized_kind
        p1 = BatchBackend().run(plan, kron)
        p2 = BatchBackend().run(clone, kron)
        assert p1.sigma == p2.sigma and p1.matches == p2.matches
        assert clone.normalize(p2.sigma) == plan.normalize(p1.sigma)

    def test_roundtrip_specialized_engine_still_dispatches(self, kron):
        plan = compile_pattern(catalog.diamond())
        clone = pickle.loads(pickle.dumps(plan))
        eng = clone.specialized_engine()
        assert eng is not None
        assert eng(kron).count == count_subgraphs(kron, catalog.diamond()).count


# ----------------------------------------------------------------------
# backend agreement
# ----------------------------------------------------------------------
class TestBackendAgreement:
    @pytest.mark.parametrize("name", sorted(CATALOG))
    def test_serial_and_batch_agree_with_count_subgraphs(self, kron, name):
        pat = CATALOG[name]
        expect = count_subgraphs(kron, pat).count
        plan = compile_pattern(pat)
        for backend in (SerialBackend(), BatchBackend()):
            partial = backend.run(plan, kron)
            assert plan.normalize(partial.sigma) == expect, (name, backend.name)

    @pytest.mark.parametrize("schedule", ["static", "strided", "dynamic"])
    @pytest.mark.parametrize("name", ["paw", "diamond", "3-star"])
    def test_multiprocess_schedules_agree(self, kron, name, schedule):
        pat = CATALOG[name]
        expect = count_subgraphs(kron, pat).count
        res = parallel_count(
            kron, pat, parallel=ParallelConfig(num_workers=2, schedule=schedule)
        )
        assert res.count == expect
        assert f"x2,{schedule}" in res.engine

    def test_multiprocess_backend_direct(self, kron):
        plan = compile_pattern(catalog.four_clique())
        expect = count_subgraphs(kron, catalog.four_clique()).count
        partial = MultiprocessBackend(num_workers=2, schedule="dynamic").run(plan, kron)
        assert plan.normalize(partial.sigma) == expect

    def test_start_vertex_slices_partition_the_sum(self, kron):
        plan = compile_pattern(catalog.paw())
        whole = BatchBackend().run(plan, kron)
        n = kron.num_vertices
        half = BatchBackend().run(plan, kron, start_vertices=np.arange(n // 2))
        rest = BatchBackend().run(plan, kron, start_vertices=np.arange(n // 2, n))
        assert half.sigma + rest.sigma == whole.sigma
        assert half.matches + rest.matches == whole.matches


# ----------------------------------------------------------------------
# normalization + validation + stats
# ----------------------------------------------------------------------
class TestNormalizationAndStats:
    def test_exact_divide_raises_on_remainder(self):
        assert exact_divide(12, 4) == 3
        with pytest.raises(AssertionError, match="non-integral"):
            exact_divide(13, 4)

    def test_parallel_config_validates_eagerly(self):
        with pytest.raises(ValueError, match="num_workers"):
            ParallelConfig(num_workers=0)
        with pytest.raises(ValueError, match="schedule"):
            ParallelConfig(schedule="magic")
        with pytest.raises(ValueError, match="chunk_size"):
            ParallelConfig(chunk_size=0)

    def test_serial_fallback_leaves_shared_state_alone(self, kron):
        res = parallel_count(
            kron, catalog.paw(), parallel=ParallelConfig(num_workers=1)
        )
        assert res.count == count_subgraphs(kron, catalog.paw()).count
        assert backends_mod._SHARED == {}
        assert "x1" in res.engine

    def test_stats_populated_per_stage(self, kron):
        rt = Runtime()
        res = rt.count(kron, catalog.diamond(), engine="general")
        s = res.stats
        assert s is not None and s.backend == "batch"
        assert s.execute_s > 0.0
        assert s.batches_flushed >= 1
        assert 0.0 <= s.venn_fc_s <= s.execute_s
        assert abs((s.match_s + s.venn_fc_s) - s.execute_s) < 1e-6

    def test_trivial_patterns_through_runtime(self, kron):
        rt = Runtime()
        assert rt.count(kron, catalog.single_vertex()).count == kron.num_vertices
        assert rt.count(kron, catalog.edge()).count == kron.num_edges

    def test_unknown_engine_rejected(self, kron):
        with pytest.raises(ValueError, match="unknown engine"):
            Runtime().count(kron, catalog.paw(), engine="warp")


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCLI:
    @pytest.fixture()
    def graph_file(self, tmp_path, kron):
        path = tmp_path / "kron.el"
        lines = [f"{u} {v}" for u, v in kron.edge_array().tolist()]
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_count_with_engine_knobs_and_stats(self, graph_file, kron, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "count",
                    "--graph", graph_file,
                    "--pattern", "diamond",
                    "--engine", "general",
                    "--workers", "2",
                    "--schedule", "strided",
                    "--venn-impl", "hash",
                    "--fc-impl", "iterative",
                    "--batch-size", "512",
                    "--stats",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        expect = count_subgraphs(kron, catalog.diamond()).count
        assert f"count    : {expect:,}" in out
        assert "fringe-parallel(x2,strided)" in out
        assert "backend  : multiprocess" in out
        assert "venn/fc" in out

    def test_count_stats_reports_cache_state(self, graph_file, capsys):
        from repro.cli import main

        args = ["count", "--graph", graph_file, "--pattern", "4-clique", "--stats"]
        main(args)
        main(args)  # same process-wide runtime: second call hits the cache
        out = capsys.readouterr().out
        assert "compiled" in out or "cache hit" in out
        assert "cache hit" in out.split("count    :")[-1]
