"""Tests for automorphism handling and symmetry breaking."""

import math

import pytest

from repro.core.engine import FringeCounter
from repro.patterns import catalog
from repro.patterns.automorphisms import (
    aut_size_bruteforce,
    decorated_core_automorphisms,
    symmetry_restrictions,
)
from repro.patterns.decompose import decompose, decomposition_from_core
from repro.patterns.pattern import all_connected_patterns


KNOWN_AUT_SIZES = {
    "triangle": 6,
    "wedge": 2,
    "4-clique": 24,
    "4-cycle": 8,
    "diamond": 4,
    "tailed triangle": 2,
    "4-path": 2,
    "3-star": 6,
}


class TestBruteForce:
    @pytest.mark.parametrize("name,expected", sorted(KNOWN_AUT_SIZES.items()))
    def test_known_groups(self, name, expected):
        assert aut_size_bruteforce(catalog.fig1_patterns()[name]) == expected

    def test_star_factorial(self):
        for k in range(2, 6):
            assert aut_size_bruteforce(catalog.star(k)) == math.factorial(k)

    def test_cycle(self):
        for n in (3, 4, 5, 6):
            assert aut_size_bruteforce(catalog.cycle(n)) == 2 * n


class TestStructuralAutSize:
    """|Aut(P)| via inj(P, P) must match brute force on all small patterns."""

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_matches_bruteforce(self, n):
        for pat in all_connected_patterns(n):
            counter = FringeCounter(pat)
            assert counter.aut_size() == aut_size_bruteforce(pat), pat.edges()

    def test_fringe_heavy_pattern(self):
        # 6 identical tails on a triangle vertex: Aut = 6! * 2 (tails
        # permute, the two other triangle vertices swap)
        pat = catalog.k_tailed_triangle(6)
        assert FringeCounter(pat).aut_size() == math.factorial(6) * 2

    def test_fig4_aut_size(self):
        # fig4: tails 2!^3, wedges 2!·2!·1, tri-fringes 2!; the asymmetric
        # decoration (1 wedge on {1,2} vs 2 elsewhere) leaves a single core
        # swap symmetry (0 fixed, 1<->2)
        expected = (2 * 2 * 2) * (2 * 2) * 2 * 2
        assert FringeCounter(catalog.fig4_pattern()).aut_size() == expected


class TestDecoratedCoreAutomorphisms:
    def test_symmetric_edge_core(self):
        d = decompose(catalog.diamond())  # two wedge fringes: swap allowed
        assert len(decorated_core_automorphisms(d)) == 2

    def test_asymmetric_edge_core(self):
        d = decompose(catalog.tailed_triangle())  # tail breaks the swap
        assert len(decorated_core_automorphisms(d)) == 1

    def test_triangle_core_full_symmetry(self):
        d = decompose(catalog.four_clique())  # one tri-fringe: all 6 perms
        assert len(decorated_core_automorphisms(d)) == 6

    def test_whole_pattern_core(self):
        d = decomposition_from_core(catalog.four_cycle(), range(4))
        assert len(decorated_core_automorphisms(d)) == 8  # = Aut(C4)


class TestSymmetryRestrictions:
    def test_group_order_matches(self):
        for pat in (catalog.diamond(), catalog.four_clique(), catalog.fig4_pattern()):
            d = decompose(pat)
            restrictions, order = symmetry_restrictions(d)
            assert order == len(decorated_core_automorphisms(d))

    def test_trivial_group_no_restrictions(self):
        d = decompose(catalog.tailed_triangle())
        restrictions, order = symmetry_restrictions(d)
        assert restrictions == [] and order == 1

    def test_restrictions_reference_later_positions(self):
        for n in (3, 4, 5):
            for pat in all_connected_patterns(n):
                d = decompose(pat)
                restrictions, _ = symmetry_restrictions(d)
                for i, j in restrictions:
                    assert i < j  # matcher checks them when j is placed

    def test_counts_invariant_under_symmetry_toggle(self, small_graphs):
        from repro.core.engine import EngineConfig, count_subgraphs

        for pat in (catalog.diamond(), catalog.four_clique(), catalog.four_cycle()):
            for g in small_graphs[:3]:
                on = count_subgraphs(
                    g, pat, engine="general", config=EngineConfig(symmetry_breaking=True)
                ).count
                off = count_subgraphs(
                    g, pat, engine="general", config=EngineConfig(symmetry_breaking=False)
                ).count
                assert on == off
