"""Tests for pattern orbits, extra graph stats, ASCII plotting, and the
signatures CLI command."""

import pytest

from repro.bench.harness import FigureResult, Measurement
from repro.bench.plotting import ascii_chart, figure_chart
from repro.cli import main as cli_main
from repro.graph import generators as gen
from repro.graph.stats import degree_assortativity, global_clustering
from repro.patterns import catalog
from repro.patterns.orbits import edge_orbits, num_orbits, orbit_of, vertex_orbits


class TestVertexOrbits:
    def test_star_two_orbits(self):
        orbits = vertex_orbits(catalog.star(4))
        assert len(orbits) == 2
        assert frozenset({0}) in orbits  # the hub is alone

    def test_triangle_single_orbit(self):
        assert num_orbits(catalog.triangle()) == 1

    def test_paw_orbits(self):
        # apex (0), two symmetric triangle vertices (1, 2), tail (3)
        orbits = vertex_orbits(catalog.paw())
        assert len(orbits) == 3
        assert frozenset({1, 2}) in orbits

    def test_orbit_of(self):
        assert orbit_of(catalog.paw(), 1) == frozenset({1, 2})
        with pytest.raises(ValueError):
            orbit_of(catalog.paw(), 9)

    def test_orbits_partition(self):
        for pat in (catalog.diamond(), catalog.fig4_pattern()):
            orbits = vertex_orbits(pat)
            covered = set()
            for o in orbits:
                assert not (covered & o)
                covered |= o
            assert covered == set(range(pat.n))


class TestEdgeOrbits:
    def test_triangle_one_edge_orbit(self):
        assert len(edge_orbits(catalog.triangle())) == 1

    def test_paw_edge_orbits(self):
        # tail edge, apex-triangle edges (x2 symmetric), far triangle edge
        assert len(edge_orbits(catalog.paw())) == 3


class TestExtraStats:
    def test_clustering_complete(self):
        assert global_clustering(gen.complete_graph(6)) == pytest.approx(1.0)

    def test_clustering_triangle_free(self):
        assert global_clustering(gen.grid_graph(4, 4)) == 0.0
        assert global_clustering(gen.star_graph(5)) == 0.0

    def test_clustering_matches_networkx(self):
        import networkx as nx

        g = gen.erdos_renyi(60, 0.15, seed=2)
        assert global_clustering(g) == pytest.approx(nx.transitivity(g.to_networkx()))

    def test_assortativity_matches_networkx(self):
        import networkx as nx

        g = gen.barabasi_albert(80, 3, seed=3)
        ours = degree_assortativity(g)
        theirs = nx.degree_assortativity_coefficient(g.to_networkx())
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_assortativity_regular_graph(self):
        assert degree_assortativity(gen.cycle_graph(8)) == 0.0
        assert degree_assortativity(gen.complete_graph(2)) == 0.0


class TestAsciiChart:
    def test_basic_render(self):
        out = ascii_chart(
            {"a": [10.0, 100.0], "b": [1.0, None]}, ["p1", "p2"], title="t"
        )
        assert "t" in out and "o=a" in out and "*=b" in out
        assert "p1" in out and "p2" in out

    def test_empty(self):
        assert ascii_chart({}, []) == "(no data)"
        assert ascii_chart({"a": [None]}, ["x"]) == "(all DNF)"

    def test_linear_mode(self):
        out = ascii_chart({"a": [1.0, 2.0]}, ["x", "y"], log=False)
        assert "|" in out

    def test_figure_chart(self):
        res = FigureResult("f")
        res.measurements.append(Measurement("s", "p", "g", "ok", 5, 0.1, 100))
        out = figure_chart(res)
        assert "f —" in out


class TestSignaturesCLI:
    def test_stdout_table(self, capsys):
        assert (
            cli_main(["signatures", "--dataset", "internet", "--scale", "tiny", "--top", "3"]) == 0
        )
        out = capsys.readouterr().out
        assert "wedge_center" in out

    def test_csv_output(self, tmp_path, capsys):
        out_path = tmp_path / "sig.csv"
        assert (
            cli_main(
                ["signatures", "--dataset", "internet", "--scale", "tiny", "--out", str(out_path)]
            )
            == 0
        )
        lines = out_path.read_text().strip().splitlines()
        assert lines[0].startswith("vertex,degree,")
        assert len(lines) > 100
