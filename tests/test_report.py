"""Tests for the benchmark report generator."""

import json

import pytest

from repro.bench.report import build_report
from repro.bench import run_figure, save_figure
from repro.graph import generators as gen
from repro.patterns import catalog


@pytest.fixture
def results_dir(tmp_path):
    graphs = {"er": gen.erdos_renyi(30, 0.2, seed=1)}
    res = run_figure(
        "fig08-vertex-core",
        {"2-star": catalog.star(2), "3-star": catalog.star(3)},
        graphs,
        ("fringe-sgc", "stmatch-like"),
    )
    save_figure(res, tmp_path / "fig08.json")
    (tmp_path / "fig12.json").write_text(
        json.dumps(
            {
                "fig4+0": {
                    "seconds": 1.0,
                    "throughput_eps": 500.0,
                    "pattern_vertices": 16,
                    "count_digits": 20,
                }
            }
        )
    )
    (tmp_path / "table1.json").write_text(json.dumps([{"name": "internet"}]))
    return tmp_path


class TestBuildReport:
    def test_contains_figure_table(self, results_dir):
        report = build_report(results_dir)
        assert "fig08-vertex-core" in report
        assert "| system |" in report
        assert "fringe-sgc" in report

    def test_contains_series_table(self, results_dir):
        report = build_report(results_dir)
        assert "Fig. 12" in report
        assert "fig4+0" in report

    def test_contains_raw_extras(self, results_dir):
        report = build_report(results_dir)
        assert "table1" in report and "internet" in report

    def test_missing_results_ok(self, tmp_path):
        report = build_report(tmp_path)
        assert "Benchmark report" in report

    def test_speedup_lines(self, results_dir):
        report = build_report(results_dir)
        assert "speedup" in report.lower() or "stmatch" in report
