"""Additional engine tests: work splitting, helpers, result metadata."""

import pytest

from repro import EngineConfig, FringeCounter, count_subgraphs
from repro.core.engine import injective_core_sum
from repro.graph import generators as gen
from repro.patterns import catalog
from repro.patterns.automorphisms import aut_size_bruteforce, aut_size_structural
from repro.patterns.decompose import decompose


@pytest.fixture(scope="module")
def graph():
    return gen.barabasi_albert(80, 3, seed=13)


class TestStartVertices:
    def test_partial_counts_recombine(self, graph):
        """Splitting the root space through `start_vertices` partitions
        the core-sum exactly (the parallel layer's foundation)."""
        counter = FringeCounter(catalog.paw())
        whole, _ = counter._core_sum_with_stats(graph, None)
        n = graph.num_vertices
        parts = [range(0, n // 3), range(n // 3, 2 * n // 3), range(2 * n // 3, n)]
        split = sum(counter._core_sum_with_stats(graph, list(p))[0] for p in parts)
        assert split == whole

    def test_empty_start_vertices(self, graph):
        counter = FringeCounter(catalog.paw())
        sigma, matches = counter._core_sum_with_stats(graph, [])
        assert sigma == 0 and matches == 0

    def test_count_with_start_vertices(self, graph):
        """count() with a root subset divides by the full normalizer —
        useful for per-root attribution."""
        counter = FringeCounter(catalog.star(3))
        res = counter.count(graph, start_vertices=list(range(graph.num_vertices)))
        assert res.count == counter.count(graph).count


class TestInjectiveCoreSum:
    def test_matches_counter_core_sum(self, graph):
        d = decompose(catalog.diamond())
        a = injective_core_sum(graph, d)
        b = FringeCounter(catalog.diamond(), decomposition=d).core_sum(graph)
        assert a == b

    def test_times_factorials_equals_inj(self, graph):
        """core_sum · Π k_t! = inj(P, G) (checked against brute force)."""
        from repro.baselines.vf2 import count_injective_maps

        for pat in (catalog.paw(), catalog.diamond(), catalog.star(3)):
            d = decompose(pat)
            lhs = injective_core_sum(graph, d) * d.fringe_permutation_factor()
            assert lhs == count_injective_maps(graph, pat)


class TestAutSizeStructural:
    def test_helper_agrees_with_bruteforce(self):
        for pat in (catalog.paw(), catalog.diamond(), catalog.four_cycle()):
            d = decompose(pat)

            def core_sum(graph, decomp):
                return injective_core_sum(graph, decomp)

            assert aut_size_structural(d, core_sum) == aut_size_bruteforce(pat)


class TestResultMetadata:
    def test_engine_labels(self, graph):
        assert "vertex-core" in count_subgraphs(graph, catalog.star(3)).engine
        assert "edge-core" in count_subgraphs(graph, catalog.diamond()).engine
        assert "3-core" in count_subgraphs(graph, catalog.four_clique()).engine
        assert "general" in count_subgraphs(graph, catalog.clique(5), engine="general").engine

    def test_elapsed_recorded(self, graph):
        res = count_subgraphs(graph, catalog.diamond())
        assert res.elapsed_s > 0

    def test_specialized_flag_off_uses_general(self, graph):
        cfg = EngineConfig(specialized=False)
        res = count_subgraphs(graph, catalog.diamond(), config=cfg)
        assert "general" in res.engine
        assert res.count == count_subgraphs(graph, catalog.diamond()).count


class TestConfigHashabilityAndDefaults:
    def test_frozen(self):
        cfg = EngineConfig()
        with pytest.raises(Exception):
            cfg.venn_impl = "hash"  # frozen dataclass

    def test_default_is_poly(self):
        assert EngineConfig().fc_impl == "poly"
