"""Tests for partitioned counting with ghost regions (§3.6 multi-GPU)."""

import numpy as np
import pytest

from repro import count_subgraphs
from repro.graph import generators as gen
from repro.parallel import ghost_width, partition_graph, partitioned_count
from repro.parallel.partition import core_diameter
from repro.patterns import catalog
from repro.patterns.decompose import decompose


@pytest.fixture(scope="module")
def graphs():
    return [
        gen.barabasi_albert(120, 3, seed=1),
        gen.erdos_renyi(100, 0.08, seed=2),
        gen.road_network(12, 12, seed=3),
        gen.kronecker(7, 8, seed=4),
    ]


PATTERNS = [
    catalog.triangle(),
    catalog.paw(),
    catalog.diamond(),
    catalog.star(3),
    catalog.four_clique(),
    catalog.four_cycle(),
    catalog.k_tailed_triangle(3),
]
IDS = ["triangle", "paw", "diamond", "3-star", "4-clique", "4-cycle", "3-tailed-tri"]


class TestGhostWidth:
    def test_core_diameter(self):
        assert core_diameter(decompose(catalog.triangle())) == 1  # edge core
        assert core_diameter(decompose(catalog.four_cycle())) == 2  # wedge core
        assert core_diameter(decompose(catalog.star(3))) == 0  # single vertex

    def test_ghost_width_bounded_by_pattern(self):
        for pat in PATTERNS:
            d = decompose(pat)
            assert ghost_width(d) <= pat.n


class TestPartitionGraph:
    def test_owned_sets_partition_vertices(self, graphs):
        g = graphs[0]
        parts = partition_graph(g, 3, halo=2)
        owned_global = np.concatenate(
            [p.local_to_global[p.owned_local] for p in parts]
        )
        assert sorted(owned_global.tolist()) == list(range(g.num_vertices))

    def test_halo_contains_neighbourhood(self, graphs):
        g = graphs[0]
        parts = partition_graph(g, 4, halo=1)
        for p in parts:
            present = set(p.local_to_global.tolist())
            for lv in p.owned_local.tolist():
                gv = int(p.local_to_global[lv])
                for w in g.neighbors(gv).tolist():
                    assert w in present

    def test_local_ids_order_preserving(self, graphs):
        """Symmetry-breaking correctness requires the local relabeling to
        preserve global id order."""
        g = graphs[1]
        for p in partition_graph(g, 3, halo=2):
            ids = p.local_to_global
            assert np.all(np.diff(ids) > 0)

    def test_owned_degrees_complete(self, graphs):
        g = graphs[0]
        for p in partition_graph(g, 3, halo=1):
            for lv in p.owned_local.tolist():
                gv = int(p.local_to_global[lv])
                assert p.graph.degree(lv) == g.degree(gv)

    def test_custom_assignment(self, graphs):
        g = graphs[1]
        rng = np.random.default_rng(0)
        assign = rng.integers(0, 3, size=g.num_vertices)
        parts = partition_graph(g, 3, halo=2, assignment=assign)
        owned = np.concatenate([p.local_to_global[p.owned_local] for p in parts])
        assert sorted(owned.tolist()) == list(range(g.num_vertices))

    def test_bad_assignment_rejected(self, graphs):
        with pytest.raises(ValueError):
            partition_graph(graphs[0], 2, halo=1, assignment=np.array([5]))


class TestPartitionedCount:
    @pytest.mark.parametrize("pattern", PATTERNS, ids=IDS)
    @pytest.mark.parametrize("parts", [2, 3, 5])
    def test_exact_for_every_partitioning(self, graphs, pattern, parts):
        for g in graphs:
            expect = count_subgraphs(g, pattern).count
            got = partitioned_count(g, pattern, num_parts=parts)
            assert got.count == expect, (pattern.edges(), parts)

    def test_single_partition(self, graphs):
        g = graphs[0]
        pat = catalog.paw()
        assert partitioned_count(g, pat, num_parts=1).count == count_subgraphs(g, pat).count

    def test_trivial_patterns(self, graphs):
        g = graphs[0]
        assert partitioned_count(g, catalog.edge(), num_parts=4).count == g.num_edges

    def test_engine_label(self, graphs):
        res = partitioned_count(graphs[0], catalog.paw(), num_parts=2)
        assert "partitioned(x2" in res.engine
