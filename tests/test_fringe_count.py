"""Tests for the fc function (Listing 5), recursive and iterative."""

import math
import random

import pytest

from repro.core.fringe_count import count_fringe_choices, fc_iterative, fc_recursive


def brute_force_fringe_choices(venn, anch, k, q):
    """Independent reference: materialize the regions as vertex sets and
    count disjoint per-type set choices by brute force."""
    from itertools import combinations

    # build disjoint pools of distinct tokens per region
    pools = {}
    token = 0
    for idx in range(1, 1 << q):
        pools[idx] = list(range(token, token + venn[idx]))
        token += venn[idx]

    def rec(t, used):
        if t == len(anch):
            return 1
        eligible = [
            x
            for idx in range(1, 1 << q)
            if (idx & anch[t]) == anch[t]
            for x in pools[idx]
            if x not in used
        ]
        total = 0
        for chosen in combinations(eligible, k[t]):
            total += rec(t + 1, used | set(chosen))
        return total

    return rec(0, frozenset())


class TestAgainstBruteForce:
    @pytest.mark.parametrize("impl", ["recursive", "iterative"])
    def test_random_small_cases(self, impl):
        rng = random.Random(7)
        for _ in range(40):
            q = rng.randint(1, 3)
            full = (1 << q) - 1
            s = rng.randint(1, min(2, full))
            anch = sorted(rng.sample(range(1, full + 1), s))
            k = [rng.randint(1, 2) for _ in range(s)]
            venn = [0] + [rng.randint(0, 3) for _ in range(full)]
            expect = brute_force_fringe_choices(venn, anch, k, q)
            got = count_fringe_choices(venn, anch, k, q, impl=impl)
            assert got == expect, (anch, k, venn)


class TestKnownValues:
    def test_single_tail_type(self):
        # one type anchored at vertex 0 with k tails: C(total coverage, k)
        venn = [0, 5, 3, 2]  # q=2: s_u=5, s_v=3, s_uv=2
        # tails of u draw from s_u and s_uvw: C(5+2, 3)
        assert fc_recursive(list(venn), [0b01], [3], 2) == math.comb(7, 3)

    def test_wedge_type_only_top_region(self):
        venn = [0, 5, 3, 2]
        # anchored at both: only s_uv qualifies
        assert fc_recursive(list(venn), [0b11], [2], 2) == math.comb(2, 2)

    def test_tailed_triangle_formula(self):
        # paper §3.1: F = C(n_u,1) C(n_uv,1) + C(n_uv,1) C(n_uv - 1, 1)
        for n_u, n_v, n_uv in [(3, 2, 4), (0, 1, 2), (5, 5, 0)]:
            venn = [0, n_u, n_v, n_uv]
            expect = n_u * n_uv + n_uv * (n_uv - 1)
            got = fc_recursive(list(venn), [0b01, 0b11], [1, 1], 2)
            assert got == expect

    def test_insufficient_supply_zero(self):
        venn = [0, 1, 0, 0]
        assert fc_recursive(list(venn), [0b11], [1], 2) == 0
        assert fc_iterative(list(venn), [0b11], [1], 2) == 0

    def test_no_fringe_types(self):
        assert fc_recursive([0, 3], (), (), 1) == 1
        assert fc_iterative([0, 3], (), (), 1) == 1


class TestVennRestoration:
    @pytest.mark.parametrize("impl", [fc_recursive, fc_iterative])
    def test_venn_unchanged_after_call(self, impl):
        venn = [0, 4, 2, 3, 1, 2, 0, 5]
        snapshot = list(venn)
        impl(venn, [0b001, 0b011, 0b111], [2, 1, 1], 3)
        assert venn == snapshot

    def test_wrapper_copies(self):
        venn = (0, 3, 3, 3)
        assert count_fringe_choices(venn, [1], [2], 2) > 0  # tuple accepted

    def test_wrapper_rejects_unknown_impl(self):
        with pytest.raises(ValueError):
            count_fringe_choices([0, 1], [1], [1], 1, impl="quantum")


class TestEquivalence:
    def test_recursive_equals_iterative_random(self):
        rng = random.Random(13)
        for _ in range(200):
            # q <= 3 keeps the summation nest small: fc's cost grows with
            # the number of covering Venn regions (the paper's own
            # per-match cost), which explodes at q = 4 with many types
            q = rng.randint(1, 3)
            full = (1 << q) - 1
            s = rng.randint(1, min(4, full))
            anch = sorted(rng.sample(range(1, full + 1), s))
            k = [rng.randint(1, 4) for _ in range(s)]
            venn = [0] + [rng.randint(0, 9) for _ in range(full)]
            a = fc_recursive(list(venn), anch, k, q)
            b = fc_iterative(list(venn), anch, k, q)
            assert a == b

    def test_recursive_equals_iterative_q4(self):
        rng = random.Random(14)
        for _ in range(20):
            full = 15
            anch = sorted(rng.sample(range(1, 16), 2))
            k = [rng.randint(1, 2) for _ in range(2)]
            venn = [0] + [rng.randint(0, 5) for _ in range(full)]
            assert fc_recursive(list(venn), anch, k, 4) == fc_iterative(
                list(venn), anch, k, 4
            )
