"""Tests for core/fringe decomposition (paper §3.4 heuristic)."""

import pytest

from repro.patterns import catalog
from repro.patterns.decompose import decompose, decomposition_from_core
from repro.patterns.pattern import Pattern, all_connected_patterns


class TestHeuristic:
    def test_star_has_vertex_core(self):
        d = decompose(catalog.star(5))
        assert d.num_core == 1
        assert d.core_vertices == (0,)  # the hub
        assert d.num_fringes == 5
        assert d.fringe_types[0].arity == 1

    def test_triangle_has_edge_core(self):
        d = decompose(catalog.triangle())
        assert d.num_core == 2
        assert d.num_fringes == 1
        assert d.fringe_types[0].arity == 2  # a wedge fringe

    def test_tailed_triangle(self):
        # paper's example: 2-vertex core, one wedge fringe, one tail
        d = decompose(catalog.tailed_triangle())
        assert d.num_core == 2
        arities = sorted(ft.arity for ft in d.fringe_types)
        assert arities == [1, 2]

    def test_four_cycle_has_wedge_core(self):
        # paper: "the 4-cycle has a wedge core"
        d = decompose(catalog.four_cycle())
        assert d.num_core == 3
        assert d.core_pattern.num_edges == 2

    def test_four_clique_has_triangle_core(self):
        d = decompose(catalog.four_clique())
        assert d.num_core == 3
        assert d.core_pattern.num_edges == 3

    def test_path5_core_reconnected(self):
        # degree-1 pass fringes the endpoints, degree-2 pass would leave a
        # disconnected {B, D} core; reconnection absorbs the middle vertex
        d = decompose(catalog.path(5))
        assert d.num_core == 3
        assert d.core_pattern.is_connected

    def test_fig4_triangle_core(self):
        d = decompose(catalog.fig4_pattern())
        assert d.num_core == 3
        assert d.core_pattern.num_edges == 3
        assert d.num_fringes == 13
        by_arity = {}
        for ft in d.fringe_types:
            by_arity[ft.arity] = by_arity.get(ft.arity, 0) + ft.count
        assert by_arity == {1: 6, 2: 5, 3: 2}

    def test_single_vertex(self):
        d = decompose(Pattern.single_vertex())
        assert d.num_core == 1 and d.num_fringes == 0

    def test_edge(self):
        d = decompose(catalog.edge())
        assert d.num_core == 1 and d.num_fringes == 1

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            decompose(Pattern.from_edges([(0, 1), (2, 3)]))

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_every_small_pattern_decomposes_validly(self, n):
        for pat in all_connected_patterns(n):
            d = decompose(pat)  # __post_init__ validates
            assert d.num_core + d.num_fringes == pat.n
            assert d.num_fringes >= 1  # paper: every pattern n>=2 has a fringe


class TestExplicitCore:
    def test_alternative_core_valid(self):
        # paper: the triangle's core "could just as well have been AC or BC"
        tri = catalog.triangle()
        for core in ([0, 1], [0, 2], [1, 2]):
            d = decomposition_from_core(tri, core)
            assert d.num_fringes == 1

    def test_whole_pattern_as_core(self):
        d = decomposition_from_core(catalog.diamond(), range(4))
        assert d.num_fringes == 0 and d.q == 0

    def test_invalid_core_rejected(self):
        tri = catalog.triangle()
        with pytest.raises(ValueError):
            decomposition_from_core(tri, [])  # empty
        with pytest.raises(ValueError):
            decomposition_from_core(catalog.path(4), [0, 3])  # disconnected; and
            # middle vertices would be fringes adjacent to non-core

    def test_fringe_adjacent_to_fringe_rejected(self):
        # path 0-1-2-3 with core {1}: vertex 3 neighbours only vertex 2
        # (not core), so this split is invalid
        with pytest.raises(ValueError):
            decomposition_from_core(catalog.path(4), [1])


class TestDerivedData:
    def test_matching_order_connected_prefixes(self):
        for pat in (catalog.fig4_pattern(), catalog.four_clique(), catalog.diamond()):
            d = decompose(pat)
            placed = set()
            for i, c in enumerate(d.matching_order):
                if i > 0:
                    assert any(w in placed for w in d.core_pattern.adj[c])
                placed.add(c)

    def test_matching_order_most_constrained_first(self):
        # tailed triangle: the core vertex carrying the tail has full
        # degree 3 vs 2 and must come first (paper §3.6 example)
        d = decompose(catalog.tailed_triangle())
        first_core_local = d.matching_order[0]
        first_pattern_vertex = d.core_vertices[first_core_local]
        assert d.pattern.degree(first_pattern_vertex) == 3

    def test_anchor_bitsets(self):
        d = decompose(catalog.tailed_triangle())
        anch, k = d.anchor_bitsets()
        assert len(anch) == 2 and sorted(k) == [1, 1]
        # one type anchored at a single vertex, one at both
        assert sorted(bin(a).count("1") for a in anch) == [1, 2]

    def test_q_counts_anchored_only(self):
        # star: single core vertex, anchored
        assert decompose(catalog.star(3)).q == 1
        # whole-pattern core: no anchors at all
        assert decomposition_from_core(catalog.triangle(), [0, 1, 2]).q == 0

    def test_fringe_permutation_factor(self):
        d = decompose(catalog.star(4))
        assert d.fringe_permutation_factor() == 24

    def test_decoration(self):
        d = decompose(catalog.diamond())
        deco = d.decoration()
        assert deco == {frozenset({0, 1}): 2}

    def test_repr(self):
        assert "core=" in repr(decompose(catalog.triangle()))
