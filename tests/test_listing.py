"""Tests for subgraph-matching mode (core listing, §2)."""

from fractions import Fraction

import pytest

from repro import count_subgraphs
from repro.core.listing import iter_core_matches, per_vertex_counts, top_cores
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from repro.patterns import catalog
from repro.patterns.decompose import decompose


@pytest.fixture(scope="module")
def graph():
    return gen.barabasi_albert(60, 3, seed=9)


class TestIterCoreMatches:
    @pytest.mark.parametrize(
        "pattern",
        [catalog.triangle(), catalog.paw(), catalog.diamond(), catalog.star(3), catalog.four_clique()],
        ids=["triangle", "paw", "diamond", "3-star", "4-clique"],
    )
    def test_masses_sum_to_count(self, graph, pattern):
        total = sum(
            (m.embeddings for m in iter_core_matches(graph, pattern)), Fraction(0)
        )
        assert total == count_subgraphs(graph, pattern).count

    def test_only_productive_matches_yielded(self, graph):
        for m in iter_core_matches(graph, catalog.diamond()):
            assert m.raw_choices > 0
            assert m.embeddings > 0

    def test_matched_vertices_are_a_core(self, graph):
        d = decompose(catalog.paw())
        for m in iter_core_matches(graph, catalog.paw(), decomposition=d):
            assert len(set(m.vertices)) == len(m.vertices)
            # paw core is an edge: the two vertices must be adjacent
            assert graph.has_edge(m.vertices[0], m.vertices[1])

    def test_small_pattern_rejected(self, graph):
        with pytest.raises(ValueError):
            next(iter_core_matches(graph, catalog.edge()))

    def test_fig2_triangle_location(self, fig2_graph):
        # the single triangle 0-1-2 appears once per core placement (any
        # of its three edges), each carrying a 1/3 share — the documented
        # fractional semantics for copies with core-moving automorphisms
        matches = list(iter_core_matches(fig2_graph, catalog.triangle()))
        assert len(matches) == 3
        assert all(set(m.vertices) <= {0, 1, 2} for m in matches)
        assert all(m.embeddings == Fraction(1, 3) for m in matches)
        assert sum((m.embeddings for m in matches), Fraction(0)) == 1


class TestPerVertexCounts:
    def test_sums_to_p_times_count(self, graph):
        pattern = catalog.paw()
        counts = per_vertex_counts(graph, pattern)
        p = decompose(pattern).num_core
        total_count = count_subgraphs(graph, pattern).count
        assert sum(counts, Fraction(0)) == p * total_count

    def test_isolated_vertex_zero(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)], num_vertices=5)
        counts = per_vertex_counts(g, catalog.triangle())
        assert counts[3] == 0 and counts[4] == 0
        assert counts[0] > 0


class TestTopCores:
    def test_ordering_and_k(self, graph):
        top = top_cores(graph, catalog.diamond(), k=5)
        assert len(top) <= 5
        masses = [m.embeddings for m in top]
        assert masses == sorted(masses, reverse=True)

    def test_top1_is_global_max(self, graph):
        everything = list(iter_core_matches(graph, catalog.diamond()))
        best = max(m.embeddings for m in everything)
        top = top_cores(graph, catalog.diamond(), k=1)
        assert top[0].embeddings == best
