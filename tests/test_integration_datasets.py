"""Integration: independent implementations agree on every Table 1 input.

For each of the ten dataset stand-ins (tiny scale), four independently
implemented counters must coincide:

* the fringe engine (specialized / general paths),
* ESCAPE-style local counting (pure degree/codegree formulas),
* the SIMT warp kernel (edge-core patterns),
* the triangle counter in ``graph.stats`` (sorted-merge).

This is the closest in-repo analogue of the paper's cross-framework
validation (§3.4) at dataset level.
"""

import pytest

from repro import count_subgraphs
from repro.baselines import local_counts
from repro.graph import datasets
from repro.graph.stats import triangle_count
from repro.gpusim import EdgeCoreKernel
from repro.patterns import catalog

TEN = datasets.dataset_names()


@pytest.fixture(scope="module")
def graphs():
    return {name: datasets.make(name, "tiny") for name in TEN}


class TestTriangleAgreement:
    @pytest.mark.parametrize("name", TEN)
    def test_three_ways(self, graphs, name):
        g = graphs[name]
        via_engine = count_subgraphs(g, catalog.triangle()).count
        via_stats = triangle_count(g)
        via_local = local_counts(g).triangle
        assert via_engine == via_stats == via_local


class TestLocalCountingAgreement:
    # the denser half of the inputs exercises the formulas hardest
    @pytest.mark.parametrize(
        "name", ["kron_g500-logn20", "rmat16.sym", "internet", "USA-road-d.NY", "delaunay_n22"]
    )
    def test_fig1_motifs(self, graphs, name):
        g = graphs[name]
        lc = local_counts(g).as_dict()
        for motif, pattern in catalog.fig1_patterns().items():
            assert lc[motif] == count_subgraphs(g, pattern).count, (name, motif)


class TestWarpKernelAgreement:
    @pytest.mark.parametrize("name", ["internet", "USA-road-d.NY", "delaunay_n22"])
    def test_edge_core_patterns(self, graphs, name):
        g = graphs[name]
        for pattern in (catalog.triangle(), catalog.paw(), catalog.diamond()):
            kernel = EdgeCoreKernel(pattern)
            assert kernel.launch(g).count == count_subgraphs(g, pattern).count


class TestDatasetSanity:
    def test_all_ten_buildable_and_nonempty(self, graphs):
        assert len(graphs) == 10
        for name, g in graphs.items():
            assert g.num_vertices > 100, name
            assert g.num_edges > 100, name
