"""Tests for the pattern DSL and the command-line interface."""

import pytest

from repro.cli import main as cli_main
from repro.graph import io as gio
from repro.graph import generators as gen
from repro.patterns import catalog
from repro.patterns.dsl import PatternSyntaxError, parse_pattern, pattern_names


class TestDSLBaseNames:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("triangle", catalog.triangle()),
            ("diamond", catalog.diamond()),
            ("4-cycle", catalog.four_cycle()),
            ("4-clique", catalog.four_clique()),
            ("paw", catalog.paw()),
            ("wedge", catalog.wedge()),
            ("edge", catalog.edge()),
            ("vertex", catalog.single_vertex()),
        ],
    )
    def test_named(self, text, expected):
        assert parse_pattern(text) == expected

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("3-star", catalog.star(3)),
            ("5-path", catalog.path(5)),
            ("6-cycle", catalog.cycle(6)),
            ("5-clique", catalog.clique(5)),
            ("2-tailed-triangle", catalog.k_tailed_triangle(2)),
        ],
    )
    def test_parametric(self, text, expected):
        assert parse_pattern(text) == expected

    def test_fig4(self):
        assert parse_pattern("fig4") == catalog.fig4_pattern()

    def test_case_and_whitespace(self):
        assert parse_pattern("  Triangle ") == catalog.triangle()


class TestDSLEdgeLists:
    def test_edge_list(self):
        p = parse_pattern("edges:0-1,1-2,0-2")
        assert p.is_isomorphic(catalog.triangle())

    def test_edge_list_spacing(self):
        p = parse_pattern("edges:0 - 1, 1 - 2")
        assert p.num_edges == 2

    def test_bad_edge(self):
        with pytest.raises(PatternSyntaxError):
            parse_pattern("edges:0-1,x-2")

    def test_empty_edge_list(self):
        with pytest.raises(PatternSyntaxError):
            parse_pattern("edges:")


class TestDSLFringeClauses:
    def test_single_clause(self):
        p = parse_pattern("triangle + 2x0")
        assert p.is_isomorphic(catalog.k_tailed_triangle(2))

    def test_multi_anchor(self):
        p = parse_pattern("edge + 2x0&1")
        assert p.is_isomorphic(catalog.diamond())

    def test_chained_clauses(self):
        p = parse_pattern("edge + 1x0&1 + 1x0")
        assert p.is_isomorphic(catalog.tailed_triangle())

    def test_fig13_series(self):
        p = parse_pattern("fig4 + 10x0&1")
        assert p.n == 26

    def test_anchor_out_of_range(self):
        with pytest.raises(PatternSyntaxError):
            parse_pattern("triangle + 1x7")

    def test_zero_count(self):
        with pytest.raises(PatternSyntaxError):
            parse_pattern("triangle + 0x0")

    def test_malformed_clause(self):
        with pytest.raises(PatternSyntaxError):
            parse_pattern("triangle + twox0")


class TestDSLErrors:
    def test_unknown_name(self):
        with pytest.raises(PatternSyntaxError, match="unknown pattern"):
            parse_pattern("dodecahedron")

    def test_unknown_parametric(self):
        with pytest.raises(PatternSyntaxError, match="parametric"):
            parse_pattern("3-megastar")

    def test_empty(self):
        with pytest.raises(PatternSyntaxError):
            parse_pattern("   ")

    def test_disconnected_rejected(self):
        with pytest.raises(PatternSyntaxError, match="connected"):
            parse_pattern("edges:0-1,2-3")

    def test_pattern_names_listing(self):
        names = pattern_names()
        assert "triangle" in names and "k-star" in names


class TestCLI:
    def test_count_dataset(self, capsys):
        assert cli_main(["count", "--dataset", "internet", "--scale", "tiny", "--pattern", "triangle"]) == 0
        out = capsys.readouterr().out
        assert "count" in out and "engine" in out

    def test_count_graph_file(self, tmp_path, capsys):
        g = gen.complete_graph(6)
        path = tmp_path / "k6.el"
        gio.write_edge_list(g, path)
        assert cli_main(["count", "--graph", str(path), "--pattern", "triangle"]) == 0
        assert "count    : 20" in capsys.readouterr().out  # C(6,3)

    def test_count_relabel_degree_invariant(self, capsys):
        args = ["count", "--dataset", "internet", "--scale", "tiny", "--pattern", "diamond"]
        assert cli_main(args) == 0
        plain = capsys.readouterr().out
        assert cli_main(args + ["--relabel-degree"]) == 0
        relabeled = capsys.readouterr().out
        line = next(ln for ln in plain.splitlines() if ln.startswith("count"))
        assert line in relabeled  # identical count on the renumbered graph

    def test_count_persistent_pool(self, capsys):
        assert cli_main([
            "count", "--dataset", "internet", "--scale", "tiny",
            "--pattern", "triangle", "--workers", "2", "--pool", "persistent",
        ]) == 0
        out = capsys.readouterr().out
        assert cli_main([
            "count", "--dataset", "internet", "--scale", "tiny", "--pattern", "triangle",
        ]) == 0
        serial = capsys.readouterr().out
        pool_count = next(ln for ln in out.splitlines() if ln.startswith("count"))
        serial_count = next(ln for ln in serial.splitlines() if ln.startswith("count"))
        assert pool_count == serial_count

    def test_decompose(self, capsys):
        assert cli_main(["decompose", "--pattern", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "tri-fringe" in out and "core" in out

    def test_list_cores(self, tmp_path, capsys):
        g = gen.barabasi_albert(40, 3, seed=2)
        path = tmp_path / "g.el"
        gio.write_edge_list(g, path)
        assert cli_main(["list-cores", "--graph", str(path), "--pattern", "diamond", "--top", "3"]) == 0
        assert "core=" in capsys.readouterr().out

    def test_datasets(self, capsys):
        assert cli_main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "kron_g500-logn20" in out and "SNAP" in out

    def test_graph_required(self):
        with pytest.raises(SystemExit):
            cli_main(["count", "--pattern", "triangle"])

    def test_both_graph_sources_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(
                ["count", "--graph", "x.el", "--dataset", "internet", "--pattern", "triangle"]
            )


class TestCountTimeout:
    def test_timeout_ok_path(self, capsys):
        rc = cli_main(
            ["count", "--dataset", "internet", "--scale", "tiny",
             "--pattern", "triangle", "--timeout", "60"]
        )
        assert rc == 0
        assert "count" in capsys.readouterr().out

    def test_timeout_expiry_exits_124(self, monkeypatch, capsys):
        import time

        import repro.runtime as runtime_mod

        class SlowRuntime(runtime_mod.Runtime):
            def count(self, *args, **kwargs):
                time.sleep(5)
                return super().count(*args, **kwargs)

        monkeypatch.setattr(runtime_mod, "get_runtime", lambda: SlowRuntime())
        rc = cli_main(
            ["count", "--dataset", "internet", "--scale", "tiny",
             "--pattern", "triangle", "--timeout", "0.1"]
        )
        assert rc == 124
        assert "deadline_exceeded" in capsys.readouterr().err

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(
                ["count", "--dataset", "internet", "--scale", "tiny",
                 "--pattern", "triangle", "--timeout", "0"]
            )
