"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.csr import CSRGraph


@pytest.fixture
def k5() -> CSRGraph:
    return gen.complete_graph(5)


@pytest.fixture
def petersen() -> CSRGraph:
    """The Petersen graph — a classic with well-known subgraph counts."""
    import networkx as nx

    return CSRGraph.from_networkx(nx.petersen_graph())


@pytest.fixture
def fig2_graph() -> CSRGraph:
    """The paper's Fig. 2 example: hub vertex 0 with 7 neighbours, one
    triangle (0, 1, 2). Known counts: 1 triangle, 5 tailed triangles,
    35 3-stars centred at vertex 0."""
    return CSRGraph.from_edges(
        [(0, 1), (0, 2), (1, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7)]
    )


@pytest.fixture
def small_graphs() -> list[CSRGraph]:
    """A spread of small graphs used for cross-engine checks."""
    return [
        gen.erdos_renyi(12, 0.35, seed=1),
        gen.complete_graph(6),
        gen.cycle_graph(9),
        gen.star_graph(8),
        gen.path_graph(7),
        gen.barabasi_albert(16, 3, seed=3),
        gen.grid_graph(4, 4),
    ]


def random_graph(n: int, p: float, seed: int) -> CSRGraph:
    return gen.erdos_renyi(n, p, seed=seed)


def graphs_equal(a: CSRGraph, b: CSRGraph) -> bool:
    return np.array_equal(a.rowptr, b.rowptr) and np.array_equal(a.colidx, b.colidx)
