"""Unit tests for the CSR graph substrate."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph import generators as gen
from repro.patterns import catalog


class TestConstruction:
    def test_from_edges_basic(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.degree(1) == 2

    def test_self_loops_dropped(self):
        g = CSRGraph.from_edges([(0, 0), (0, 1), (1, 1)])
        assert g.num_edges == 1

    def test_duplicate_edges_dropped(self):
        g = CSRGraph.from_edges([(0, 1), (1, 0), (0, 1), (0, 1)])
        assert g.num_edges == 1

    def test_num_vertices_override(self):
        g = CSRGraph.from_edges([(0, 1)], num_vertices=5)
        assert g.num_vertices == 5
        assert g.degree(4) == 0

    def test_num_vertices_too_small_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges([(0, 4)], num_vertices=3)

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges([(-1, 2)])

    def test_empty_graph(self):
        g = CSRGraph.from_edges([], num_vertices=4)
        assert g.num_vertices == 4
        assert g.num_edges == 0

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(np.zeros((3, 3), dtype=np.int64))

    def test_adjacency_sorted(self):
        g = CSRGraph.from_edges([(2, 0), (2, 3), (2, 1)])
        assert g.neighbors(2).tolist() == [0, 1, 3]

    def test_validation_rejects_unsorted(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2]), np.array([1, 1]))

    def test_validation_rejects_bad_rowptr(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([1, 2]), np.array([0, 1]))

    def test_validation_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([5]))


class TestQueries:
    def test_has_edge(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (0, 3)])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)
        assert not g.has_edge(2, 3)

    def test_degrees(self, k5):
        assert k5.degrees.tolist() == [4] * 5
        assert k5.max_degree() == 4
        assert k5.avg_degree() == pytest.approx(4.0)

    def test_edge_array_each_edge_once(self, k5):
        edges = k5.edge_array()
        assert len(edges) == 10
        assert np.all(edges[:, 0] < edges[:, 1])

    def test_immutable_buffers(self, k5):
        with pytest.raises(ValueError):
            k5.colidx[0] = 99
        with pytest.raises(ValueError):
            k5.rowptr[0] = 1

    def test_iter_and_repr(self, k5):
        assert list(k5) == [0, 1, 2, 3, 4]
        assert "n=5" in repr(k5)

    def test_equality(self):
        a = CSRGraph.from_edges([(0, 1), (1, 2)])
        b = CSRGraph.from_edges([(1, 2), (0, 1)])
        c = CSRGraph.from_edges([(0, 1), (0, 2)])
        assert a == b
        assert a != c


class TestTransforms:
    def test_subgraph_induced(self):
        g = gen.complete_graph(5)
        sub = g.subgraph([0, 2, 4])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3  # induced triangle

    def test_subgraph_drops_external_edges(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3)])
        sub = g.subgraph([0, 1, 3])
        assert sub.num_edges == 1

    def test_relabel_by_degree(self):
        g = CSRGraph.from_edges([(0, 1), (0, 2), (0, 3), (3, 4)])
        r = g.relabel_by_degree()
        # vertex 0 (degree 3) becomes new id 0
        assert r.degree(0) == 3
        assert r.num_edges == g.num_edges
        assert sorted(r.degrees.tolist()) == sorted(g.degrees.tolist())

    @pytest.mark.parametrize(
        "name,pattern",
        sorted(catalog.fig1_patterns().items()),
        ids=sorted(catalog.fig1_patterns()),
    )
    def test_counts_invariant_under_degree_relabeling(self, name, pattern):
        """Degree relabeling is a pure renumbering: every catalog pattern
        count must be identical on the relabeled graph (the contract the
        CLI ``--relabel-degree`` preprocessing flag relies on)."""
        from repro import count_subgraphs

        g = gen.barabasi_albert(120, 4, seed=17)
        r = g.relabel_by_degree()
        assert count_subgraphs(r, pattern).count == count_subgraphs(g, pattern).count

    def test_networkx_round_trip(self):
        g = gen.barabasi_albert(30, 3, seed=1)
        g2 = CSRGraph.from_networkx(g.to_networkx())
        assert g == g2

    def test_networkx_bad_labels_rejected(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_edge("a", "b")
        with pytest.raises(ValueError):
            CSRGraph.from_networkx(nxg)


class TestFingerprint:
    def test_same_edge_list_same_fingerprint(self):
        edges = [(0, 1), (1, 2), (0, 2), (2, 3)]
        a = CSRGraph.from_edges(edges)
        b = CSRGraph.from_edges(list(reversed(edges)))  # order-insensitive
        assert a.fingerprint() == b.fingerprint()
        assert len(a.fingerprint()) == 64  # sha256 hex

    def test_different_graphs_differ(self):
        a = CSRGraph.from_edges([(0, 1), (1, 2)])
        b = CSRGraph.from_edges([(0, 1), (0, 2)])
        c = CSRGraph.from_edges([(0, 1), (1, 2)], num_vertices=4)  # isolated vertex
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3

    def test_cached_and_stable(self):
        g = gen.erdos_renyi(20, 0.3, seed=5)
        assert g.fingerprint() is g.fingerprint()  # memoized
        assert g.fingerprint() == gen.erdos_renyi(20, 0.3, seed=5).fingerprint()

    def test_identity_hash_untouched(self):
        a = CSRGraph.from_edges([(0, 1)])
        b = CSRGraph.from_edges([(0, 1)])
        assert a.fingerprint() == b.fingerprint()
        assert hash(a) != hash(b)  # __hash__ stays identity-based
        assert a == b  # content equality unchanged

    def test_fingerprint_stable_across_processes(self):
        import subprocess
        import sys

        edges = [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]
        local = CSRGraph.from_edges(edges).fingerprint()
        script = (
            "from repro.graph.csr import CSRGraph; "
            f"print(CSRGraph.from_edges({edges!r}).fingerprint())"
        )
        out = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, check=True
        )
        assert out.stdout.strip() == local
