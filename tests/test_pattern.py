"""Tests for the Pattern type and small-pattern enumeration."""

import pytest

from repro.patterns import catalog
from repro.patterns.pattern import Pattern, all_connected_patterns


class TestConstruction:
    def test_from_edges(self):
        p = Pattern.from_edges([(0, 1), (1, 2)])
        assert p.n == 3 and p.num_edges == 2
        assert p.degree(1) == 2 and p.degree(0) == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Pattern.from_edges([(0, 0)])

    def test_declared_n(self):
        p = Pattern.from_edges([(0, 1)], n=4)
        assert p.n == 4
        with pytest.raises(ValueError):
            Pattern.from_edges([(0, 5)], n=3)

    def test_single_vertex(self):
        p = Pattern.single_vertex()
        assert p.n == 1 and p.num_edges == 0 and p.is_connected

    def test_networkx_round_trip(self):
        p = catalog.diamond()
        q = Pattern.from_networkx(p.to_networkx())
        assert p.is_isomorphic(q)


class TestQueries:
    def test_connectivity(self):
        assert catalog.triangle().is_connected
        assert not Pattern.from_edges([(0, 1), (2, 3)]).is_connected

    def test_edges_sorted_pairs(self):
        p = catalog.wedge()
        assert p.edges() == [(0, 1), (0, 2)]

    def test_hash_and_eq(self):
        assert catalog.triangle() == catalog.cycle(3)
        assert hash(catalog.triangle()) == hash(catalog.cycle(3))
        assert catalog.triangle() != catalog.wedge()


class TestTransforms:
    def test_relabel(self):
        p = catalog.wedge().relabel([2, 0, 1])
        assert p.degree(2) == 2  # old hub 0 -> new 2

    def test_relabel_bad_mapping(self):
        with pytest.raises(ValueError):
            catalog.wedge().relabel([0, 0, 1])

    def test_induced(self):
        p = catalog.four_clique().induced([0, 2, 3])
        assert p.n == 3 and p.num_edges == 3

    def test_with_fringe_tail(self):
        p = catalog.triangle().with_fringe([0])
        assert p.is_isomorphic(catalog.tailed_triangle())

    def test_with_fringe_count(self):
        p = catalog.triangle().with_fringe([0, 1, 2], 2)
        assert p.n == 5 and p.num_edges == 9

    def test_with_fringe_invalid(self):
        with pytest.raises(ValueError):
            catalog.triangle().with_fringe([])
        with pytest.raises(ValueError):
            catalog.triangle().with_fringe([7])


class TestCanonical:
    def test_isomorphic_relabelings_same_key(self):
        p = catalog.tailed_triangle()
        q = p.relabel([3, 2, 1, 0])
        assert p.canonical_key() == q.canonical_key()

    def test_different_patterns_different_key(self):
        assert catalog.four_cycle().canonical_key() != catalog.diamond().canonical_key()

    def test_too_large_guarded(self):
        with pytest.raises(ValueError):
            catalog.star(10).canonical_key()


class TestAllConnectedPatterns:
    @pytest.mark.parametrize("n,count", [(1, 1), (2, 1), (3, 2), (4, 6), (5, 21)])
    def test_known_counts(self, n, count):
        # OEIS A001349: connected graphs on n nodes
        assert len(all_connected_patterns(n)) == count

    def test_all_connected_and_distinct(self):
        pats = all_connected_patterns(4)
        assert all(p.is_connected for p in pats)
        keys = {p.canonical_key() for p in pats}
        assert len(keys) == len(pats)
