"""Tests for multi-pattern counting (shared core passes)."""

import pytest

from repro import count_subgraphs
from repro.core.multi import MultiPatternCounter, count_many
from repro.graph import generators as gen
from repro.patterns import catalog


@pytest.fixture(scope="module")
def graph():
    return gen.kronecker(7, 8, seed=8)


class TestGrouping:
    def test_same_core_family_shares_one_group(self):
        fam = {f"{k}tails": catalog.k_tailed_triangle(k) for k in (1, 2, 3, 4)}
        mpc = MultiPatternCounter(fam)
        assert mpc.num_groups == 1

    def test_different_cores_split_groups(self):
        mpc = MultiPatternCounter(
            {"star": catalog.star(3), "clique": catalog.four_clique(), "paw": catalog.paw()}
        )
        assert mpc.num_groups == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiPatternCounter({})


class TestCorrectness:
    def test_matches_individual_counts(self, graph):
        fam = {
            "triangle": catalog.triangle(),
            "paw": catalog.paw(),
            "2-tailed": catalog.k_tailed_triangle(2),
            "diamond": catalog.diamond(),
            "3-star": catalog.star(3),
            "4-clique": catalog.four_clique(),
        }
        got = count_many(graph, fam)
        for name, pattern in fam.items():
            assert got[name] == count_subgraphs(graph, pattern).count, name

    def test_mixed_degree_filters_in_one_group(self, graph):
        """Members with very different fringe loads (hence degree
        filters) must still count exactly under the shared weakest
        filter."""
        fam = {
            "light": catalog.k_tailed_triangle(1),
            "heavy": catalog.k_tailed_triangle(6),
        }
        mpc = MultiPatternCounter(fam)
        assert mpc.num_groups == 1
        got = mpc.count_all(graph)
        for name, pattern in fam.items():
            assert got[name].count == count_subgraphs(graph, pattern).count

    def test_trivial_patterns_included(self, graph):
        got = count_many(
            graph, {"v": catalog.single_vertex(), "e": catalog.edge(), "t": catalog.triangle()}
        )
        assert got["v"] == graph.num_vertices
        assert got["e"] == graph.num_edges

    def test_fig14_series_shares_core(self, graph):
        # adding tri-fringes preserves the core's decoration symmetry, so
        # the whole series shares one plan (wedge additions on {0,1}
        # would break the 1<->2 swap and legitimately split the group)
        fam = {}
        base = catalog.fig4_pattern()
        fam["f0"] = base
        fam["f2"] = base.with_fringe((0, 1, 2), 2)
        mpc = MultiPatternCounter(fam)
        assert mpc.num_groups == 1
        got = mpc.count_all(graph)
        for name in fam:
            assert got[name].count == count_subgraphs(graph, fam[name], engine="general").count

    def test_symmetry_breaking_fringe_split_still_exact(self, graph):
        # wedge additions change the symmetry group: two groups, but the
        # counts must still be exact
        base = catalog.fig4_pattern()
        fam = {"f0": base, "f2w": base.with_fringe((0, 1), 2)}
        mpc = MultiPatternCounter(fam)
        assert mpc.num_groups == 2
        got = mpc.count_all(graph)
        for name in fam:
            assert got[name].count == count_subgraphs(graph, fam[name], engine="general").count


class TestSharedWorkEfficiency:
    def test_core_matches_counted_once(self, graph):
        fam = {f"{k}t": catalog.k_tailed_triangle(k) for k in (1, 2, 3)}
        results = MultiPatternCounter(fam).count_all(graph)
        matches = {res.core_matches for res in results.values()}
        assert len(matches) == 1  # one shared enumeration

    def test_family_cheaper_than_individual(self, graph):
        import time

        fam = {f"{k}t": catalog.k_tailed_triangle(k) for k in (1, 2, 3, 4, 5)}
        t0 = time.perf_counter()
        count_many(graph, fam)
        shared = time.perf_counter() - t0
        t0 = time.perf_counter()
        for pattern in fam.values():
            count_subgraphs(pattern=pattern, graph=graph, engine="general")
        individual = time.perf_counter() - t0
        assert shared < individual
