"""Socket-free tests for the serve pipeline: drive CountingService with
asyncio tasks and a gate-controlled Runtime so coalescing, deadlines,
admission control, and cache invalidation are all deterministic."""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.graph import generators as gen
from repro.obs import Observer
from repro.obs.export import prometheus_text
from repro.patterns.dsl import parse_pattern
from repro.runtime import Runtime
from repro.serve import (
    CountingService,
    CountRequest,
    CountResponse,
    ErrorResponse,
    GraphRegistry,
    ServiceConfig,
)


class GatedRuntime(Runtime):
    """A Runtime whose count() blocks until the test opens the gate."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.gate = threading.Event()
        self.calls = 0
        self._call_lock = threading.Lock()

    def count(self, *args, **kwargs):
        with self._call_lock:
            self.calls += 1
        assert self.gate.wait(timeout=20), "test never opened the gate"
        return super().count(*args, **kwargs)


def make_graph(seed=1):
    return gen.erdos_renyi(30, 0.3, seed=seed)


def run(coro):
    return asyncio.run(coro)


async def started_service(registry, **kwargs):
    service = CountingService(registry, **kwargs)
    service.start()
    return service


# ----------------------------------------------------------------------
# basics
# ----------------------------------------------------------------------
class TestBasics:
    def test_count_matches_direct_runtime(self):
        graph = make_graph()
        expected = Runtime().count(graph, parse_pattern("triangle")).count

        async def scenario():
            registry = GraphRegistry()
            registry.register("g", graph)
            service = await started_service(registry)
            try:
                return await service.submit(CountRequest(graph="g", pattern="triangle"))
            finally:
                await service.stop()

        response = run(scenario())
        assert isinstance(response, CountResponse)
        assert response.count == expected
        assert response.fingerprint == graph.fingerprint()
        assert not response.cached and not response.coalesced

    def test_unknown_graph_and_bad_pattern(self):
        async def scenario():
            registry = GraphRegistry()
            registry.register("g", make_graph())
            service = await started_service(registry)
            try:
                missing = await service.submit(CountRequest(graph="nope", pattern="triangle"))
                bad = await service.submit(CountRequest(graph="g", pattern="tri@ngle!!"))
                return missing, bad
            finally:
                await service.stop()

        missing, bad = run(scenario())
        assert isinstance(missing, ErrorResponse) and missing.code == "unknown_graph"
        assert isinstance(bad, ErrorResponse) and bad.code == "bad_pattern"

    def test_submit_before_start_raises(self):
        registry = GraphRegistry()
        service = CountingService(registry)

        async def scenario():
            with pytest.raises(RuntimeError, match="not started"):
                await service.submit(CountRequest(graph="g", pattern="triangle"))

        run(scenario())


# ----------------------------------------------------------------------
# coalescing
# ----------------------------------------------------------------------
class TestCoalescing:
    def test_identical_inflight_queries_cost_one_execution(self):
        graph = make_graph()
        expected = Runtime().count(graph, parse_pattern("triangle")).count

        async def scenario():
            registry = GraphRegistry()
            registry.register("g", graph)
            runtime = GatedRuntime()
            service = await started_service(registry, runtime=runtime)
            try:
                tasks = [
                    asyncio.create_task(
                        service.submit(CountRequest(graph="g", pattern="triangle"))
                    )
                    for _ in range(6)
                ]
                await asyncio.sleep(0.2)  # all submits reach the coalescing map
                runtime.gate.set()
                responses = await asyncio.gather(*tasks)
            finally:
                await service.stop()
            return runtime, service, responses

        runtime, service, responses = run(scenario())
        assert runtime.calls == 1  # one Runtime execution for six clients
        assert all(isinstance(r, CountResponse) for r in responses)
        assert {r.count for r in responses} == {expected}
        coalesced = [r for r in responses if r.coalesced]
        assert len(coalesced) == 5
        assert service.metrics.counter("repro_serve_coalesced_total").value == 5

    def test_distinct_queries_do_not_coalesce(self):
        async def scenario():
            registry = GraphRegistry()
            registry.register("g", make_graph())
            runtime = GatedRuntime()
            runtime.gate.set()
            service = await started_service(registry, runtime=runtime)
            try:
                a = await service.submit(CountRequest(graph="g", pattern="triangle"))
                b = await service.submit(CountRequest(graph="g", pattern="3-star"))
            finally:
                await service.stop()
            return runtime, a, b

        runtime, a, b = run(scenario())
        assert runtime.calls == 2
        assert a.count != b.count or a.pattern != b.pattern


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_waiter_deadline_expires_without_cancelling_execution(self):
        graph = make_graph()

        async def scenario():
            registry = GraphRegistry()
            registry.register("g", graph)
            runtime = GatedRuntime()
            service = await started_service(registry, runtime=runtime)
            try:
                t0 = time.perf_counter()
                response = await service.submit(
                    CountRequest(graph="g", pattern="triangle", timeout_s=0.1)
                )
                waited = time.perf_counter() - t0
                runtime.gate.set()  # let the abandoned execution finish
                await asyncio.sleep(0.2)
            finally:
                await service.stop()
            return response, waited, service

        response, waited, service = run(scenario())
        assert isinstance(response, ErrorResponse)
        assert response.code == "deadline_exceeded"
        assert waited < 5.0  # returned promptly, not after the execution
        assert service.metrics.counter("repro_serve_expired_total").value >= 1

    def test_fast_request_beats_deadline(self):
        async def scenario():
            registry = GraphRegistry()
            registry.register("g", make_graph())
            service = await started_service(registry)
            try:
                return await service.submit(
                    CountRequest(graph="g", pattern="triangle", timeout_s=30.0)
                )
            finally:
                await service.stop()

        assert isinstance(run(scenario()), CountResponse)


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_full_queue_rejects_overloaded(self):
        patterns = ["triangle", "3-star", "4-star", "5-star", "4-cycle"]

        async def scenario():
            registry = GraphRegistry()
            registry.register("g", make_graph())
            runtime = GatedRuntime()
            config = ServiceConfig(max_queue=2, max_batch=1, executor_workers=1)
            service = await started_service(registry, runtime=runtime, config=config)
            try:
                tasks = []
                # p0 executes (blocked on the gate), p1 sits in the batcher
                # waiting for an executor slot, p2/p3 fill the queue.
                for pattern in patterns[:4]:
                    tasks.append(
                        asyncio.create_task(
                            service.submit(CountRequest(graph="g", pattern=pattern))
                        )
                    )
                    await asyncio.sleep(0.1)
                overflow = await service.submit(
                    CountRequest(graph="g", pattern=patterns[4])
                )
                # metrics stay exported while saturated
                depth = service.metrics.gauge("repro_serve_queue_depth").value
                text = prometheus_text(service.metrics)
                runtime.gate.set()
                accepted = await asyncio.gather(*tasks)
            finally:
                await service.stop()
            return service, overflow, depth, text, accepted

        service, overflow, depth, text, accepted = run(scenario())
        assert isinstance(overflow, ErrorResponse)
        assert overflow.code == "overloaded"
        assert service.metrics.counter("repro_serve_rejected_total").value == 1
        assert depth == 2  # the admission queue was genuinely full
        assert "repro_serve_queue_depth 2" in text
        assert "repro_serve_latency_seconds_bucket" in text
        assert all(isinstance(r, CountResponse) for r in accepted)


# ----------------------------------------------------------------------
# result cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_hit_after_completion(self):
        async def scenario():
            registry = GraphRegistry()
            registry.register("g", make_graph())
            service = await started_service(registry)
            try:
                first = await service.submit(CountRequest(graph="g", pattern="triangle"))
                second = await service.submit(CountRequest(graph="g", pattern="triangle"))
            finally:
                await service.stop()
            return service, first, second

        service, first, second = run(scenario())
        assert not first.cached and second.cached
        assert first.count == second.count
        assert service.metrics.counter("repro_serve_result_cache_hits_total").value == 1
        ratio = service.metrics.gauge("repro_serve_result_cache_hit_ratio").value
        assert 0 < ratio < 1

    def test_no_cache_bypasses_read_and_write(self):
        async def scenario():
            registry = GraphRegistry()
            registry.register("g", make_graph())
            runtime = GatedRuntime()
            runtime.gate.set()
            service = await started_service(registry, runtime=runtime)
            try:
                await service.submit(CountRequest(graph="g", pattern="triangle"))
                fresh = await service.submit(
                    CountRequest(graph="g", pattern="triangle", use_cache=False)
                )
            finally:
                await service.stop()
            return runtime, fresh

        runtime, fresh = run(scenario())
        assert runtime.calls == 2  # second call executed despite the cached result
        assert not fresh.cached

    def test_ttl_expiry(self):
        async def scenario():
            registry = GraphRegistry()
            registry.register("g", make_graph())
            config = ServiceConfig(result_cache_ttl_s=0.05)
            service = await started_service(registry, config=config)
            try:
                await service.submit(CountRequest(graph="g", pattern="triangle"))
                await asyncio.sleep(0.1)
                late = await service.submit(CountRequest(graph="g", pattern="triangle"))
            finally:
                await service.stop()
            return late

        assert not run(scenario()).cached

    def test_registry_replace_invalidates_and_serves_fresh_counts(self):
        sparse = make_graph(seed=1)
        dense = gen.erdos_renyi(30, 0.7, seed=2)
        expect_sparse = Runtime().count(sparse, parse_pattern("triangle")).count
        expect_dense = Runtime().count(dense, parse_pattern("triangle")).count
        assert expect_sparse != expect_dense

        async def scenario():
            registry = GraphRegistry()
            registry.register("g", sparse)
            service = await started_service(registry)
            try:
                before = await service.submit(CountRequest(graph="g", pattern="triangle"))
                cached = await service.submit(CountRequest(graph="g", pattern="triangle"))
                registry.register("g", dense)  # replace fires invalidation
                after = await service.submit(CountRequest(graph="g", pattern="triangle"))
            finally:
                await service.stop()
            return service, before, cached, after

        service, before, cached, after = run(scenario())
        assert before.count == expect_sparse and cached.cached
        assert after.count == expect_dense
        assert not after.cached
        assert after.fingerprint == dense.fingerprint()
        assert (
            service.metrics.counter("repro_serve_result_cache_invalidations_total").value
            >= 1
        )


# ----------------------------------------------------------------------
# batching + tracing
# ----------------------------------------------------------------------
class TestBatching:
    def test_queued_requests_group_into_one_batch(self):
        graph = make_graph()
        patterns = ["triangle", "3-star", "4-star", "paw"]

        async def scenario():
            registry = GraphRegistry()
            registry.register("g", graph)
            runtime = GatedRuntime()
            # one worker and a blocked gate: everything queues behind the
            # first dispatch, then drains as one grouped batch.
            config = ServiceConfig(max_batch=8, executor_workers=1)
            observer = Observer(trace=True, metrics=True)
            service = await started_service(
                registry, runtime=runtime, config=config, observer=observer
            )
            try:
                tasks = [
                    asyncio.create_task(
                        service.submit(CountRequest(graph="g", pattern=p))
                    )
                    for p in patterns
                ]
                await asyncio.sleep(0.2)
                runtime.gate.set()
                responses = await asyncio.gather(*tasks)
            finally:
                await service.stop()
            return service, observer, responses

        service, observer, responses = run(scenario())
        assert all(isinstance(r, CountResponse) for r in responses)
        hist = service.metrics.histogram("repro_serve_batch_size")
        assert hist.count >= 1
        # all four requests were drained and grouped into one micro-batch
        assert max(r.batch_size for r in responses) == len(patterns)
        names = {s.name for s in observer.tracer.spans}
        assert {"serve.admit", "serve.batch", "serve.execute", "serve.respond"} <= names

    def test_batch_window_gathers_lagging_requests(self):
        async def scenario():
            registry = GraphRegistry()
            registry.register("g", make_graph())
            config = ServiceConfig(max_batch=8, batch_window_s=0.2, executor_workers=1)
            service = await started_service(registry, config=config)
            try:
                first = asyncio.create_task(
                    service.submit(CountRequest(graph="g", pattern="triangle"))
                )
                await asyncio.sleep(0.05)  # inside the window
                second = asyncio.create_task(
                    service.submit(CountRequest(graph="g", pattern="3-star"))
                )
                responses = await asyncio.gather(first, second)
            finally:
                await service.stop()
            return responses

        responses = run(scenario())
        assert all(isinstance(r, CountResponse) for r in responses)
        assert max(r.batch_size for r in responses) == 2


# ----------------------------------------------------------------------
# persistent-pool executor
# ----------------------------------------------------------------------
class TestPoolExecutor:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(executor="rocket")
        with pytest.raises(ValueError):
            ServiceConfig(executor="pool", pool_workers=0)
        assert ServiceConfig(executor="pool", pool_workers=2).executor == "pool"

    def test_thread_executor_has_no_parallel(self):
        service = CountingService(GraphRegistry())
        assert service._parallel is None

    def test_pool_executor_counts_match_serial(self):
        from repro.parallel.shm import shm_available
        from repro.parallel.workerpool import shutdown_default_pool

        if not shm_available():
            pytest.skip("no shared memory")
        graph = gen.barabasi_albert(400, 4, seed=6)
        expected = Runtime().count(graph, parse_pattern("diamond")).count

        async def scenario():
            registry = GraphRegistry()
            registry.register("g", graph)
            config = ServiceConfig(executor="pool", pool_workers=2)
            service = await started_service(registry, config=config)
            try:
                responses = await asyncio.gather(*[
                    service.submit(CountRequest(graph="g", pattern="diamond",
                                                use_cache=False))
                    for _ in range(4)
                ])
            finally:
                await service.stop()
            return responses

        try:
            responses = run(scenario())
        finally:
            shutdown_default_pool()
        assert all(isinstance(r, CountResponse) for r in responses)
        assert all(r.count == expected for r in responses)
        assert any("fringe-pool(x2" in r.engine for r in responses)
