"""Tests for the stack-based core matcher."""



from repro.core.matcher import build_plan, count_core_matches, match_cores
from repro.graph import generators as gen
from repro.patterns import catalog
from repro.patterns.decompose import decompose, decomposition_from_core


def ordered_embedding_count(graph, pattern):
    """Reference: injective edge-preserving maps of the *whole* pattern."""
    from repro.baselines.vf2 import count_injective_maps

    return count_injective_maps(graph, pattern)


class TestCoreMatching:
    def test_edge_core_counts_ordered_edges(self, k5):
        d = decompose(catalog.triangle())  # edge core, symmetric decoration
        plan = build_plan(d, symmetry_breaking=False)
        # all ordered vertex pairs joined by an edge: 2 * |E|
        assert count_core_matches(k5, plan) == 2 * k5.num_edges

    def test_symmetry_breaking_halves_symmetric_edge_core(self, k5):
        d = decompose(catalog.diamond())
        on = count_core_matches(k5, build_plan(d, symmetry_breaking=True))
        off = count_core_matches(k5, build_plan(d, symmetry_breaking=False))
        assert off == 2 * on

    def test_matches_are_injective_and_edge_preserving(self, small_graphs):
        d = decompose(catalog.four_clique())
        plan = build_plan(d, symmetry_breaking=False)
        core = d.core_pattern
        for g in small_graphs[:4]:
            for match in match_cores(g, plan):
                assert len(set(match)) == len(match)
                for i in range(len(match)):
                    for j in range(i + 1, len(match)):
                        ci, cj = plan.order[i], plan.order[j]
                        if core.has_edge(ci, cj):
                            assert g.has_edge(match[i], match[j])

    def test_whole_pattern_matching_equals_injective_maps(self, small_graphs):
        for pat in (catalog.triangle(), catalog.four_cycle(), catalog.paw()):
            d = decomposition_from_core(pat, range(pat.n))
            plan = build_plan(d, symmetry_breaking=False)
            for g in small_graphs[:4]:
                assert count_core_matches(g, plan) == ordered_embedding_count(g, pat)

    def test_symmetry_reduction_factor_exact(self, small_graphs):
        """#matches(no SB) == group_order * #matches(SB) for every graph."""
        for pat in (catalog.four_clique(), catalog.four_cycle(), catalog.diamond()):
            d = decompose(pat)
            plan_on = build_plan(d, symmetry_breaking=True)
            plan_off = build_plan(d, symmetry_breaking=False)
            for g in small_graphs:
                assert (
                    count_core_matches(g, plan_off)
                    == plan_on.group_order * count_core_matches(g, plan_on)
                )

    def test_start_vertices_partition_work(self, small_graphs):
        d = decompose(catalog.four_clique())
        plan = build_plan(d)
        g = small_graphs[0]
        whole = count_core_matches(g, plan)
        split = sum(
            sum(1 for _ in match_cores(g, plan, start_vertices=[v]))
            for v in range(g.num_vertices)
        )
        assert whole == split

    def test_single_vertex_core(self):
        d = decompose(catalog.star(3))
        plan = build_plan(d)
        g = gen.star_graph(5)
        # degree filter: only the hub has degree >= 3
        assert count_core_matches(g, plan) == 1

    def test_degree_filter_prunes_roots(self):
        d = decompose(catalog.star(4))
        plan = build_plan(d)
        assert plan.min_degree[0] == 4
        g = gen.path_graph(10)
        assert count_core_matches(g, plan) == 0


class TestPlan:
    def test_back_edges_within_prefix(self):
        for pat in (catalog.fig4_pattern(), catalog.four_clique()):
            plan = build_plan(decompose(pat))
            for i, back in enumerate(plan.back_edges):
                assert all(b < i for b in back)
                if i > 0:
                    assert back, "every later vertex must touch the prefix"

    def test_min_degree_uses_full_pattern_degree(self):
        plan = build_plan(decompose(catalog.tailed_triangle()))
        # first core vertex carries the tail: full degree 3
        assert plan.min_degree[0] == 3
        assert plan.min_degree[1] == 2
