"""The vectorized frontier matcher (:mod:`repro.core.frontier`).

Three layers of evidence that the frontier backend is a drop-in
replacement for the serial engine:

* **Count agreement** — frontier counts equal general-engine counts on
  the full Fig. 1 pattern catalog (plus fringe-heavy tails and the
  Fig. 4 pattern) over a Kronecker graph, two built-in dataset
  stand-ins, and hypothesis-randomized graphs.
* **Matcher equivalence** — the set of frontier rows is exactly the set
  of tuples the per-match stack matcher yields, so symmetry-breaking
  masks and injectivity filters agree constraint-for-constraint.
* **Budget invariance** — absurdly small ``max_frontier_rows`` values
  force recursive block splitting and change nothing but peak memory.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import FrontierBackend, FrontierStats
from repro.core.engine import EngineConfig
from repro.core.frontier import (
    frontier_match_matrix,
    has_edges_bulk,
    iter_frontier_blocks,
)
from repro.core.matcher import build_plan, match_cores
from repro.core.plan import compile_pattern
from repro.graph import datasets, generators as gen
from repro.graph.csr import CSRGraph
from repro.patterns import catalog
from repro.patterns.decompose import decompose
from repro.patterns.pattern import Pattern
from repro.runtime import Runtime

SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@pytest.fixture(scope="module")
def rt() -> Runtime:
    return Runtime()


@pytest.fixture(scope="module")
def kron() -> CSRGraph:
    return gen.kronecker(6, edge_factor=8, seed=3)


@pytest.fixture(scope="module")
def dataset_graphs() -> dict[str, CSRGraph]:
    return {
        "amazon0601": datasets.make("amazon0601", "tiny"),
        "internet": datasets.make("internet", "tiny"),
    }


def catalog_patterns() -> dict[str, Pattern]:
    out = dict(catalog.fig1_patterns())
    out["2-tailed 4-clique"] = catalog.tailed_four_clique(2)
    out["3-tailed 4-clique"] = catalog.tailed_four_clique(3)
    out["fig4"] = catalog.fig4_pattern()
    return out


# ----------------------------------------------------------------------
# count agreement: frontier == general on every catalog pattern
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(catalog_patterns()))
def test_counts_agree_kron(rt, kron, name):
    pattern = catalog_patterns()[name]
    assert (
        rt.count(kron, pattern, engine="frontier").count
        == rt.count(kron, pattern, engine="general").count
    )


@pytest.mark.parametrize("dataset", ["amazon0601", "internet"])
@pytest.mark.parametrize("name", sorted(catalog_patterns()))
def test_counts_agree_datasets(rt, dataset_graphs, dataset, name):
    graph = dataset_graphs[dataset]
    pattern = catalog_patterns()[name]
    assert (
        rt.count(graph, pattern, engine="frontier").count
        == rt.count(graph, pattern, engine="general").count
    )


@st.composite
def graph_edges(draw, max_n=14):
    n = draw(st.integers(min_value=4, max_value=max_n))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    mask = draw(st.lists(st.booleans(), min_size=len(pairs), max_size=len(pairs)))
    return n, [p for p, m in zip(pairs, mask) if m]


class TestRandomizedAgreement:
    @SETTINGS
    @given(graph_edges())
    def test_diamond_and_tailed_clique(self, ne):
        n, edges = ne
        g = CSRGraph.from_edges(edges, num_vertices=n)
        rt = Runtime()
        for pattern in (catalog.diamond(), catalog.tailed_four_clique(2)):
            assert (
                rt.count(g, pattern, engine="frontier").count
                == rt.count(g, pattern, engine="general").count
            )

    @SETTINGS
    @given(graph_edges(max_n=10), st.integers(min_value=1, max_value=9))
    def test_tiny_budget_still_agrees(self, ne, max_rows):
        n, edges = ne
        g = CSRGraph.from_edges(edges, num_vertices=n)
        rt = Runtime()
        cfg = EngineConfig(max_frontier_rows=max_rows)
        pattern = catalog.four_cycle()
        assert (
            rt.count(g, pattern, engine="frontier", config=cfg).count
            == rt.count(g, pattern, engine="general").count
        )


# ----------------------------------------------------------------------
# matcher equivalence: frontier rows == stack-matcher tuples
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "pattern",
    [catalog.triangle(), catalog.four_cycle(), catalog.diamond(), catalog.four_clique()],
    ids=["triangle", "4-cycle", "diamond", "4-clique"],
)
def test_rows_match_stack_matcher(kron, pattern):
    plan = build_plan(decompose(pattern))
    rows = frontier_match_matrix(kron, plan)
    frontier_set = {tuple(int(v) for v in row) for row in rows}
    stack_set = set(match_cores(kron, plan))
    assert frontier_set == stack_set
    assert len(rows) == len(frontier_set)  # no duplicate embeddings


def test_symmetry_breaking_masks_applied(kron):
    """With symmetry breaking off, the frontier sees the full
    group_order-fold set of ordered core embeddings, exactly like the
    stack matcher (each Aut_dec orbit expands to group_order tuples)."""
    decomp = decompose(catalog.four_clique())
    sym = build_plan(decomp, symmetry_breaking=True)
    nosym = build_plan(decomp, symmetry_breaking=False)
    n_sym = len(frontier_match_matrix(kron, sym))
    n_nosym = len(frontier_match_matrix(kron, nosym))
    assert sym.group_order > 1
    assert n_nosym == n_sym * sym.group_order
    assert {tuple(map(int, r)) for r in frontier_match_matrix(kron, nosym)} == set(
        match_cores(kron, nosym)
    )


def test_start_vertices_partition(kron):
    """Root slices partition the embedding set (the parallel layer's
    work-distribution contract)."""
    plan = build_plan(decompose(catalog.diamond()))
    total = len(frontier_match_matrix(kron, plan))
    mid = kron.num_vertices // 2
    lo = len(frontier_match_matrix(kron, plan, start_vertices=range(mid)))
    hi = len(
        frontier_match_matrix(kron, plan, start_vertices=range(mid, kron.num_vertices))
    )
    assert lo + hi == total


# ----------------------------------------------------------------------
# budget splitting and early exit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("max_rows", [1, 3, 17])
def test_budget_splitting_identical_counts(rt, kron, max_rows):
    pattern = catalog.tailed_four_clique(2)
    cfg = EngineConfig(max_frontier_rows=max_rows)
    stats = FrontierStats()
    plan = build_plan(decompose(pattern))
    blocks = list(iter_frontier_blocks(kron, plan, max_rows=max_rows, stats=stats))
    assert stats.spills > 0  # tiny budgets must actually split
    assert all(len(b) >= 1 for b in blocks)
    assert (
        rt.count(kron, pattern, engine="frontier", config=cfg).count
        == rt.count(kron, pattern, engine="general").count
    )


def test_peak_width_bounded_by_budget(kron):
    plan = build_plan(decompose(catalog.four_clique()))
    unbounded = FrontierStats()
    list(iter_frontier_blocks(kron, plan, stats=unbounded))
    budget = 8
    stats = FrontierStats()
    list(iter_frontier_blocks(kron, plan, max_rows=budget, stats=stats))
    assert stats.peak_width <= max(budget, unbounded.peak_width // 2)
    assert stats.rows == unbounded.rows  # same total work, smaller blocks


def test_empty_frontier_early_exit():
    """A star pattern's hub needs degree 5; a path graph has none, so the
    frontier dies at the root level and the backend reports zero."""
    g = gen.path_graph(12)
    pattern = catalog.star(6)  # 5-star: hub degree 5
    plan = compile_pattern(pattern, EngineConfig())
    partial = FrontierBackend().run(plan, g)
    assert partial.matches == 0
    assert partial.sigma == 0
    assert partial.batches == 0


def test_max_rows_validation(kron):
    plan = build_plan(decompose(catalog.triangle()))
    with pytest.raises(ValueError):
        list(iter_frontier_blocks(kron, plan, max_rows=0))
    with pytest.raises(ValueError):
        EngineConfig(max_frontier_rows=0)


# ----------------------------------------------------------------------
# has_edges_bulk: the vectorized binary search
# ----------------------------------------------------------------------
def test_has_edges_bulk_matches_scalar(kron):
    rng = np.random.default_rng(7)
    u = rng.integers(0, kron.num_vertices, size=500)
    v = rng.integers(0, kron.num_vertices, size=500)
    got = has_edges_bulk(kron.rowptr, kron.colidx, u, v)
    expect = np.array([kron.has_edge(int(a), int(b)) for a, b in zip(u, v)])
    assert np.array_equal(got, expect)


def test_has_edges_bulk_empty_inputs():
    g = CSRGraph.from_edges([], num_vertices=4)
    out = has_edges_bulk(
        g.rowptr, g.colidx, np.array([0, 1], dtype=np.int64), np.array([1, 2], dtype=np.int64)
    )
    assert not out.any()
    assert has_edges_bulk(g.rowptr, g.colidx, np.array([], dtype=np.int64), np.array([], dtype=np.int64)).shape == (0,)
