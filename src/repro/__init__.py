"""Fringe-SGC: counting subgraphs with fringe vertices (SC '25 reproduction).

Public entry points:

* :func:`repro.count_subgraphs` — count a pattern in a graph;
* :class:`repro.FringeCounter` — pattern-compiled counter for many graphs;
* :mod:`repro.graph` — CSR graphs, generators, datasets, I/O;
* :mod:`repro.patterns` — pattern type, catalog, decomposition.
"""

from .core.engine import CountResult, EngineConfig, FringeCounter, count_subgraphs
from .core.multi import MultiPatternCounter, count_many
from .graph.csr import CSRGraph
from .patterns.pattern import Pattern
from .patterns import catalog

__version__ = "1.0.0"

__all__ = [
    "CountResult",
    "MultiPatternCounter",
    "count_many",
    "EngineConfig",
    "FringeCounter",
    "count_subgraphs",
    "CSRGraph",
    "Pattern",
    "catalog",
    "__version__",
]
