"""Fringe-SGC: counting subgraphs with fringe vertices (SC '25 reproduction).

Public entry points:

* :func:`repro.count_subgraphs` — count a pattern in a graph (plan-cached
  through the process-wide :class:`repro.Runtime`);
* :class:`repro.FringeCounter` — pattern-compiled counter for many graphs;
* :class:`repro.Runtime` / :func:`repro.get_runtime` — the serving front
  door: LRU plan cache, backend routing, execution stats;
* :func:`repro.compile_pattern` — build a reusable, picklable
  :class:`repro.CountingPlan` by hand;
* :mod:`repro.graph` — CSR graphs, generators, datasets, I/O;
* :mod:`repro.patterns` — pattern type, catalog, decomposition;
* :mod:`repro.obs` — tracing + metrics (spans, Prometheus export, the
  :class:`repro.Observer` hook for :class:`repro.Runtime`).
"""

from .core.engine import (
    CountResult,
    EngineConfig,
    ExecutionStats,
    FringeCounter,
    count_subgraphs,
)
from .core.multi import MultiPatternCounter, count_many
from .core.plan import CountingPlan, compile_pattern
from .graph.csr import CSRGraph
from .obs import Observer
from .patterns.pattern import Pattern
from .patterns import catalog
from .runtime import Runtime, get_runtime

__version__ = "1.2.0"

__all__ = [
    "CountResult",
    "CountingPlan",
    "ExecutionStats",
    "MultiPatternCounter",
    "Observer",
    "Runtime",
    "count_many",
    "compile_pattern",
    "EngineConfig",
    "FringeCounter",
    "count_subgraphs",
    "get_runtime",
    "CSRGraph",
    "Pattern",
    "catalog",
    "__version__",
]
