"""Partitioned counting with ghost regions (the paper's multi-GPU plan).

Paper §3.6: "If the input does not fit on a single GPU, it would have to
be partitioned. Each partition would need a ghost region that is as wide
as the diameter of the search pattern ... This way, multiple GPUs can
process the partitions independently and at the same time."

This module implements that scheme on the CPU:

1. the vertex set is split into ``k`` parts (contiguous by default, or by
   a provided assignment);
2. each part is expanded by a BFS halo of width = the *core diameter*
  (+1 for the fringes, which reach one hop beyond the core) — the ghost
   region;
3. each worker counts on its local subgraph, with the ownership rule
   "a core match is counted by the partition that owns its first matched
   vertex", so every match is counted exactly once globally;
4. partial sums are reduced and normalized once.

The result is bit-identical to single-machine counting; tests assert it
on every partition count and pattern family.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..core.engine import CountResult, EngineConfig, FringeCounter
from ..graph.csr import CSRGraph
from ..patterns.decompose import Decomposition
from ..patterns.pattern import Pattern

__all__ = ["Partition", "partition_graph", "ghost_width", "partitioned_count"]


@dataclass(frozen=True)
class Partition:
    """One partition: local subgraph + id maps + ownership mask."""

    index: int
    graph: CSRGraph  # local subgraph (owned + ghost), compact local ids
    local_to_global: np.ndarray
    owned_local: np.ndarray  # local ids owned by this partition


def core_diameter(decomp: Decomposition) -> int:
    """Diameter of the core pattern (BFS, the core is small)."""
    core = decomp.core_pattern
    best = 0
    for s in range(core.n):
        dist = {s: 0}
        q = deque([s])
        while q:
            v = q.popleft()
            for w in core.adj[v]:
                if w not in dist:
                    dist[w] = dist[v] + 1
                    q.append(w)
        best = max(best, max(dist.values()))
    return best


def ghost_width(decomp: Decomposition) -> int:
    """Halo width: core diameter + 1 (fringe neighbourhoods reach one hop
    past the core). Bounded by the pattern size, as the paper notes."""
    return core_diameter(decomp) + 1


def partition_graph(
    graph: CSRGraph,
    num_parts: int,
    halo: int,
    *,
    assignment: np.ndarray | None = None,
) -> list[Partition]:
    """Split ``graph`` into ``num_parts`` with BFS ghost halos."""
    n = graph.num_vertices
    if assignment is None:
        assignment = np.minimum(
            np.arange(n, dtype=np.int64) * num_parts // max(n, 1), num_parts - 1
        )
    else:
        assignment = np.asarray(assignment, dtype=np.int64)
        if len(assignment) != n or assignment.min() < 0 or assignment.max() >= num_parts:
            raise ValueError("assignment must map every vertex into 0..num_parts-1")

    partitions = []
    for part in range(num_parts):
        owned = np.nonzero(assignment == part)[0]
        # BFS halo of `halo` hops around the owned set
        in_part = np.zeros(n, dtype=bool)
        in_part[owned] = True
        frontier = owned
        for _ in range(halo):
            nxt: list[int] = []
            for v in frontier.tolist():
                for w in graph.neighbors(v).tolist():
                    if not in_part[w]:
                        in_part[w] = True
                        nxt.append(w)
            frontier = np.asarray(nxt, dtype=np.int64)
            if len(frontier) == 0:
                break
        local_vertices = np.nonzero(in_part)[0]
        global_to_local = -np.ones(n, dtype=np.int64)
        global_to_local[local_vertices] = np.arange(len(local_vertices))
        sub = graph.subgraph(local_vertices.tolist())
        partitions.append(
            Partition(
                index=part,
                graph=sub,
                local_to_global=local_vertices,
                owned_local=global_to_local[owned],
            )
        )
    return partitions


def partitioned_count(
    graph: CSRGraph,
    pattern: Pattern,
    num_parts: int = 2,
    *,
    decomposition: Decomposition | None = None,
    config: EngineConfig | None = None,
) -> CountResult:
    """Count by independent per-partition passes (multi-GPU simulation).

    Ownership rule: a core embedding is tallied by the partition owning
    the graph vertex matched at position 0 of the matching order. The
    halo guarantees every core + fringe neighbourhood around an owned
    root is fully present locally, so local Venn diagrams equal global
    ones.
    """
    import time

    from ..core.backends import select_backend
    from ..core.plan import compile_pattern

    start = time.perf_counter()
    cfg = config or EngineConfig()
    if pattern.n <= 2:
        return FringeCounter(pattern, config=cfg).count(graph)
    # one compiled plan shared by every partition pass — the pattern side
    # is partition-independent
    plan = compile_pattern(pattern, cfg, decomposition=decomposition)
    decomp = plan.decomp
    halo = ghost_width(decomp)
    partitions = partition_graph(graph, num_parts, halo)

    backend = select_backend(cfg)
    sigma = 0
    matches = 0
    for part in partitions:
        ps = backend.run(plan, part.graph, start_vertices=part.owned_local)
        sigma += ps.sigma
        matches += ps.matches
    value = plan.normalize(sigma, context="partitioned count (halo too small?)")
    return CountResult(
        count=value,
        pattern=pattern,
        core_matches=matches,
        elapsed_s=time.perf_counter() - start,
        engine=f"fringe-partitioned(x{num_parts},halo={halo})",
        decomposition=decomp,
    )
