"""Work-distribution strategies for parallel counting.

The paper's GPU code uses a dynamic schedule because per-root search cost
varies with vertex degree (§3.6). The same issue appears on multicore
CPUs: a contiguous static split strands one worker with the hub vertices
of a skewed graph. Three strategies are provided; the ablation benchmark
compares them on a Kronecker input.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SCHEDULES", "static_contiguous", "static_strided", "dynamic_chunks", "make_chunks"]

# valid schedule names, in the order the CLI/docs present them
SCHEDULES: tuple[str, ...] = ("static", "strided", "dynamic")


def static_contiguous(num_vertices: int, num_workers: int) -> list[np.ndarray]:
    """Split 0..n-1 into ``num_workers`` contiguous ranges."""
    return [np.asarray(c, dtype=np.int64) for c in np.array_split(np.arange(num_vertices), num_workers)]


def static_strided(num_vertices: int, num_workers: int) -> list[np.ndarray]:
    """Worker w takes vertices w, w+W, w+2W, ... — interleaving spreads
    hubs (which cluster at low ids after degree relabeling) evenly."""
    verts = np.arange(num_vertices, dtype=np.int64)
    return [verts[w::num_workers] for w in range(num_workers)]


def dynamic_chunks(num_vertices: int, chunk_size: int) -> list[np.ndarray]:
    """Fixed-size chunks served from a shared queue (dynamic schedule)."""
    verts = np.arange(num_vertices, dtype=np.int64)
    return [verts[i : i + chunk_size] for i in range(0, num_vertices, chunk_size)]


def make_chunks(
    num_vertices: int, num_workers: int, schedule: str, chunk_size: int = 256
) -> list[np.ndarray]:
    if schedule == "static":
        return static_contiguous(num_vertices, num_workers)
    if schedule == "strided":
        return static_strided(num_vertices, num_workers)
    if schedule == "dynamic":
        return dynamic_chunks(num_vertices, chunk_size)
    raise ValueError(f"unknown schedule {schedule!r}; use {'|'.join(SCHEDULES)}")
