"""Multicore parallel counting layer (dynamic/static/strided schedules)."""

from .partition import Partition, ghost_width, partition_graph, partitioned_count
from .pool import ParallelConfig, parallel_count
from .schedule import SCHEDULES, dynamic_chunks, make_chunks, static_contiguous, static_strided

__all__ = [
    "Partition",
    "ghost_width",
    "partition_graph",
    "partitioned_count",
    "ParallelConfig",
    "parallel_count",
    "SCHEDULES",
    "dynamic_chunks",
    "make_chunks",
    "static_contiguous",
    "static_strided",
]
