"""Multicore parallel counting layer.

Work distribution (dynamic/static/strided schedules), the per-call fork
pool, the persistent spawn-context :class:`WorkerPool` with work
stealing, and zero-copy graph sharing over named shared memory
(:mod:`repro.parallel.shm`).
"""

from .partition import Partition, ghost_width, partition_graph, partitioned_count
from .pool import POOLS, ParallelConfig, parallel_count
from .schedule import SCHEDULES, dynamic_chunks, make_chunks, static_contiguous, static_strided
from .shm import GraphExport, ShmManager, attach_graph, default_manager, shm_available
from .workerpool import PoolStats, WorkerPool, get_default_pool, shutdown_default_pool

__all__ = [
    "Partition",
    "ghost_width",
    "partition_graph",
    "partitioned_count",
    "ParallelConfig",
    "parallel_count",
    "POOLS",
    "SCHEDULES",
    "dynamic_chunks",
    "make_chunks",
    "static_contiguous",
    "static_strided",
    "GraphExport",
    "ShmManager",
    "attach_graph",
    "default_manager",
    "shm_available",
    "PoolStats",
    "WorkerPool",
    "get_default_pool",
    "shutdown_default_pool",
]
