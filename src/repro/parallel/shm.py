"""Zero-copy CSR graph sharing via named POSIX shared memory.

The paper's GPU pipeline keeps the CSR graph *resident* on the device
across kernel launches; all per-call traffic is work descriptors and
partial sums. This module is the CPU analogue for the persistent worker
pool (:mod:`repro.parallel.workerpool`): the parent exports a
:class:`~repro.graph.csr.CSRGraph`'s ``rowptr``/``colidx`` arrays into
named ``multiprocessing.shared_memory`` segments exactly once, and every
worker process attaches the same physical pages read-only — no pickling,
no copy-on-write forking, spawn-safe on every platform.

Exports are keyed by :meth:`CSRGraph.fingerprint` and refcounted: the
:class:`GraphRegistry` pre-exports on load and releases on evict, the
pool backend piggybacks a weakref-tied export for ad-hoc graphs, and a
segment is unlinked only when its last owner releases it (plus an
``atexit`` sweep so nothing outlives the process).

Worker side: :func:`attach_graph` maps the segments and rebuilds a
``CSRGraph`` whose arrays are views over the shared buffer
(``validate=False`` — the exporter already held a valid graph). Attached
segments are cached per fingerprint so repeated calls on a resident
graph cost nothing.
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..graph.csr import CSRGraph, INDEX_DTYPE

try:  # pragma: no cover - stdlib everywhere we run, but stay importable
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None

__all__ = [
    "GraphExport",
    "ShmManager",
    "shm_available",
    "default_manager",
    "attach_graph",
    "detach_all",
]

_ITEMSIZE = np.dtype(INDEX_DTYPE).itemsize


def shm_available() -> bool:
    """True when named shared memory is usable on this platform."""
    return _shm is not None


@dataclass(frozen=True)
class GraphExport:
    """Picklable descriptor of one exported graph (what workers receive)."""

    fingerprint: str
    num_vertices: int
    rowptr_name: str
    colidx_name: str
    rowptr_len: int
    colidx_len: int

    @property
    def nbytes(self) -> int:
        return (self.rowptr_len + self.colidx_len) * _ITEMSIZE


class _Segment:
    """Parent-side state for one exported graph: segments + refcount."""

    __slots__ = ("export", "rowptr_shm", "colidx_shm", "refs")

    def __init__(self, export: GraphExport, rowptr_shm, colidx_shm):
        self.export = export
        self.rowptr_shm = rowptr_shm
        self.colidx_shm = colidx_shm
        self.refs = 1


def _new_segment(tag: str, arr: np.ndarray):
    """Create one named segment holding ``arr`` (size >= 1, names unique)."""
    name = f"rp{os.getpid():x}-{tag}-{secrets.token_hex(4)}"
    seg = _shm.SharedMemory(name=name, create=True, size=max(1, arr.nbytes))
    if arr.nbytes:
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        view[:] = arr
    return seg


class ShmManager:
    """Refcounted exporter of CSR graphs into named shared memory.

    ``export``/``release`` are the explicit pair (the registry's
    load/evict lifecycle); :meth:`ensure` ties one export to the *graph
    object's* lifetime via ``weakref.finalize`` — the pool backend's
    path for graphs nobody registered. Both share one refcount per
    fingerprint, so a graph that is registered *and* counted on keeps
    its segments until every owner lets go.
    """

    def __init__(self):
        # RLock: weakref finalizers (``_auto_release``) can fire from a GC
        # triggered while this thread already holds the lock.
        self._lock = threading.RLock()
        self._segments: dict[str, _Segment] = {}
        # id(graph) -> (fingerprint, finalizer) for weakref-tied exports
        self._auto: dict[int, tuple[str, weakref.finalize]] = {}

    # ------------------------------------------------------------------
    def export(self, graph: CSRGraph) -> GraphExport:
        """Export (or re-reference) ``graph``; returns the descriptor."""
        if _shm is None:  # pragma: no cover - platform gate
            raise RuntimeError("multiprocessing.shared_memory unavailable")
        fp = graph.fingerprint()
        with self._lock:
            seg = self._segments.get(fp)
            if seg is not None:
                seg.refs += 1
                return seg.export
        # copy outside the lock — O(n + m), done once per graph content
        rowptr_shm = _new_segment(fp[:12] + "r", graph.rowptr)
        try:
            colidx_shm = _new_segment(fp[:12] + "c", graph.colidx)
        except BaseException:
            rowptr_shm.close()
            rowptr_shm.unlink()
            raise
        export = GraphExport(
            fingerprint=fp,
            num_vertices=graph.num_vertices,
            rowptr_name=rowptr_shm.name,
            colidx_name=colidx_shm.name,
            rowptr_len=len(graph.rowptr),
            colidx_len=len(graph.colidx),
        )
        with self._lock:
            racing = self._segments.get(fp)
            if racing is not None:  # lost an export race: keep the winner's
                racing.refs += 1
                export, lost_race = racing.export, True
            else:
                self._segments[fp] = _Segment(export, rowptr_shm, colidx_shm)
                lost_race = False
        if lost_race:
            _destroy(rowptr_shm)
            _destroy(colidx_shm)
        self._gauge()
        return export

    def release(self, fingerprint: str) -> bool:
        """Drop one reference; unlink the segments on the last one."""
        with self._lock:
            seg = self._segments.get(fingerprint)
            if seg is None:
                return False
            seg.refs -= 1
            if seg.refs > 0:
                return False
            del self._segments[fingerprint]
        _destroy(seg.rowptr_shm)
        _destroy(seg.colidx_shm)
        self._gauge()
        return True

    def ensure(self, graph: CSRGraph) -> GraphExport:
        """Export tied to ``graph``'s lifetime (auto-released on GC)."""
        key = id(graph)
        with self._lock:
            slot = self._auto.get(key)
            if slot is not None and slot[1].alive:
                seg = self._segments.get(slot[0])
                if seg is not None:
                    return seg.export
        export = self.export(graph)
        fin = weakref.finalize(graph, self._auto_release, export.fingerprint, key)
        with self._lock:
            self._auto[key] = (export.fingerprint, fin)
        return export

    def _auto_release(self, fingerprint: str, key: int) -> None:
        with self._lock:
            self._auto.pop(key, None)
        self.release(fingerprint)

    # ------------------------------------------------------------------
    def total_bytes(self) -> int:
        with self._lock:
            return sum(s.export.nbytes for s in self._segments.values())

    def exported(self) -> list[str]:
        with self._lock:
            return sorted(self._segments)

    def refcount(self, fingerprint: str) -> int:
        with self._lock:
            seg = self._segments.get(fingerprint)
            return seg.refs if seg is not None else 0

    def release_all(self) -> None:
        """Unlink every segment regardless of refcount (atexit sweep)."""
        with self._lock:
            segments = list(self._segments.values())
            self._segments.clear()
            for _, fin in self._auto.values():
                fin.detach()
            self._auto.clear()
        for seg in segments:
            _destroy(seg.rowptr_shm)
            _destroy(seg.colidx_shm)
        self._gauge()

    def _gauge(self) -> None:
        obs.gauge_set("repro_shm_bytes", self.total_bytes())


def _destroy(seg) -> None:
    try:
        seg.close()
        seg.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - already gone
        pass


# ----------------------------------------------------------------------
# process-wide default manager (what the registry and pool backend use)
# ----------------------------------------------------------------------
_default: ShmManager | None = None
_default_lock = threading.Lock()


def default_manager() -> ShmManager:
    global _default
    if _default is None:
        with _default_lock:
            if _default is None:
                _default = ShmManager()
                atexit.register(_default.release_all)
    return _default


# ----------------------------------------------------------------------
# worker (attach) side
# ----------------------------------------------------------------------
# fingerprint -> (CSRGraph view, SharedMemory handles). Bounded: workers
# serve few resident graphs; evicting the LRU closes its segments.
_ATTACH_CACHE_MAX = 8
_attached: OrderedDict[str, tuple[CSRGraph, tuple]] = OrderedDict()
_attach_lock = threading.Lock()


def _attach_segment(name: str):
    # CPython < 3.13 registers *attached* segments with the resource
    # tracker too (bpo-38119). The tracker cache is shared across the
    # process tree and is a set, so unregistering after the fact would
    # erase the creator's registration and make the creator's later
    # unlink a tracker error. Instead, suppress registration for the
    # duration of the attach: the creating process owns cleanup.
    try:  # pragma: no cover - depends on resource_tracker internals
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shm(name, rtype):
            if rtype != "shared_memory":
                original(name, rtype)

        resource_tracker.register = _skip_shm
        try:
            return _shm.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
    except ImportError:
        return _shm.SharedMemory(name=name)


def attach_graph(export: GraphExport) -> CSRGraph:
    """Map an exported graph read-only; cached per fingerprint."""
    if _shm is None:  # pragma: no cover - platform gate
        raise RuntimeError("multiprocessing.shared_memory unavailable")
    with _attach_lock:
        hit = _attached.get(export.fingerprint)
        if hit is not None:
            _attached.move_to_end(export.fingerprint)
            return hit[0]
    rowptr_shm = _attach_segment(export.rowptr_name)
    colidx_shm = _attach_segment(export.colidx_name)
    rowptr = np.ndarray((export.rowptr_len,), dtype=INDEX_DTYPE, buffer=rowptr_shm.buf)
    colidx = np.ndarray((export.colidx_len,), dtype=INDEX_DTYPE, buffer=colidx_shm.buf)
    graph = CSRGraph(rowptr, colidx, validate=False)
    with _attach_lock:
        _attached[export.fingerprint] = (graph, (rowptr_shm, colidx_shm))
        while len(_attached) > _ATTACH_CACHE_MAX:
            _, (_, handles) = _attached.popitem(last=False)
            for seg in handles:
                try:
                    seg.close()
                except BufferError:  # a view still alive somewhere
                    pass
    return graph


def detach_all() -> None:
    """Drop every cached attachment (worker shutdown / tests)."""
    with _attach_lock:
        entries = list(_attached.values())
        _attached.clear()
    for _, handles in entries:
        for seg in handles:
            try:
                seg.close()
            except BufferError:
                pass
