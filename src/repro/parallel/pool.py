"""Multiprocess parallel counting.

Each worker runs the same compiled :class:`~repro.core.plan.CountingPlan`
over a slice of start vertices (the matcher's unit of work distribution —
the same decomposition the CUDA code uses across thread blocks) and
returns its partial core sum; the parent reduces and normalizes once
through the plan's single normalization path. Workers are forked, so the
read-only CSR graph is shared copy-on-write and never pickled.

The fork-pool mechanics live in
:class:`repro.core.backends.MultiprocessBackend`; this module keeps the
historical :func:`parallel_count` entry point as a thin wrapper over the
process-wide :class:`repro.runtime.Runtime` (so parallel calls share the
plan cache with everything else).

``num_workers=1`` bypasses multiprocessing entirely (useful under
pytest-benchmark and on platforms without fork).
"""

from __future__ import annotations

import os

from ..core.engine import CountResult, EngineConfig
from ..graph.csr import CSRGraph
from ..patterns.pattern import Pattern
from .schedule import SCHEDULES

__all__ = ["parallel_count", "ParallelConfig", "POOLS"]


#: execution substrates for a multi-worker count (ParallelConfig.pool)
POOLS: tuple[str, ...] = ("fork", "persistent")


class ParallelConfig:
    """Worker count, schedule, and pool substrate for parallel counts.

    ``pool`` picks the execution substrate: ``"fork"`` spins up a fresh
    fork pool per call (copy-on-write sharing, fork platforms only);
    ``"persistent"`` routes to the resident spawn-context
    :class:`~repro.parallel.workerpool.WorkerPool` — started once,
    reused across calls, graph shared through named shared memory, work
    stealing between workers. ``mp_context`` selects the start method of
    the persistent pool (ignored for ``"fork"``).

    Validates eagerly: a bad worker count, schedule name, chunk size, or
    pool name raises here, at construction, instead of failing deep
    inside ``make_chunks`` mid-run.
    """

    def __init__(
        self,
        num_workers: int | None = None,
        schedule: str = "dynamic",
        chunk_size: int = 256,
        pool: str = "fork",
        mp_context: str = "spawn",
    ):
        if num_workers is not None and num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if schedule not in SCHEDULES:
            raise ValueError(
                f"unknown schedule {schedule!r}; use {'|'.join(SCHEDULES)}"
            )
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if pool not in POOLS:
            raise ValueError(f"unknown pool {pool!r}; use {'|'.join(POOLS)}")
        self.num_workers = num_workers or max(1, (os.cpu_count() or 2) - 1)
        self.schedule = schedule
        self.chunk_size = chunk_size
        self.pool = pool
        self.mp_context = mp_context

    def __repr__(self) -> str:
        return (
            f"ParallelConfig(num_workers={self.num_workers}, "
            f"schedule={self.schedule!r}, chunk_size={self.chunk_size}, "
            f"pool={self.pool!r})"
        )


def parallel_count(
    graph: CSRGraph,
    pattern: Pattern,
    *,
    parallel: ParallelConfig | None = None,
    config: EngineConfig | None = None,
) -> CountResult:
    """Count ``pattern`` in ``graph`` across processes.

    Exact same result as :func:`repro.count_subgraphs`; only the work
    distribution differs.
    """
    from ..runtime import get_runtime

    par = parallel or ParallelConfig()
    return get_runtime().count(graph, pattern, engine="general", config=config, parallel=par)
