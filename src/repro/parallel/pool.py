"""Multiprocess parallel counting.

Each worker runs the same pattern-compiled :class:`FringeCounter` over a
slice of start vertices (the matcher's unit of work distribution — the
same decomposition the CUDA code uses across thread blocks) and returns
its partial core sum; the parent reduces and normalizes once. Workers are
forked, so the read-only CSR graph is shared copy-on-write and never
pickled.

``num_workers=1`` bypasses multiprocessing entirely (useful under
pytest-benchmark and on platforms without fork).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from typing import Sequence

import numpy as np

from ..core.engine import CountResult, EngineConfig, FringeCounter
from ..graph.csr import CSRGraph
from ..patterns.pattern import Pattern
from .schedule import make_chunks

__all__ = ["parallel_count", "ParallelConfig"]

# fork-shared state (set in the parent immediately before the pool starts)
_SHARED: dict = {}


def _worker_count(chunk_ids: Sequence[int]) -> tuple[int, int]:
    counter: FringeCounter = _SHARED["counter"]
    graph: CSRGraph = _SHARED["graph"]
    chunks = _SHARED["chunks"]
    sigma = 0
    matches = 0
    for ci in chunk_ids:
        s, m = counter._core_sum_with_stats(graph, chunks[ci])
        sigma += s
        matches += m
    return sigma, matches


class ParallelConfig:
    """Worker count and schedule for :func:`parallel_count`."""

    def __init__(
        self,
        num_workers: int | None = None,
        schedule: str = "dynamic",
        chunk_size: int = 256,
    ):
        self.num_workers = num_workers or max(1, (os.cpu_count() or 2) - 1)
        self.schedule = schedule
        self.chunk_size = chunk_size


def parallel_count(
    graph: CSRGraph,
    pattern: Pattern,
    *,
    parallel: ParallelConfig | None = None,
    config: EngineConfig | None = None,
) -> CountResult:
    """Count ``pattern`` in ``graph`` across processes.

    Exact same result as :func:`repro.count_subgraphs`; only the work
    distribution differs.
    """
    par = parallel or ParallelConfig()
    start = time.perf_counter()
    counter = FringeCounter(pattern, config=config)
    if pattern.n <= 2:
        return counter.count(graph)

    chunks = make_chunks(graph.num_vertices, par.num_workers, par.schedule, par.chunk_size)
    if par.num_workers <= 1 or len(chunks) <= 1:
        sigma, matches = counter._core_sum_with_stats(graph, None)
    else:
        _SHARED["counter"] = counter
        _SHARED["graph"] = graph
        _SHARED["chunks"] = chunks
        try:
            ctx = mp.get_context("fork")
            with ctx.Pool(processes=par.num_workers) as pool:
                # dynamic: many chunks round-robined by the pool's own
                # work queue; static/strided: one chunk list per worker
                jobs = [[i] for i in range(len(chunks))]
                results = pool.map(_worker_count, jobs)
        finally:
            _SHARED.clear()
        sigma = sum(r[0] for r in results)
        matches = sum(r[1] for r in results)

    total = sigma * counter.plan.group_order
    value, rem = divmod(total, counter.denominator)
    if rem:
        raise AssertionError("non-integral parallel count — engine bug")
    return CountResult(
        count=value,
        pattern=pattern,
        core_matches=matches,
        elapsed_s=time.perf_counter() - start,
        engine=f"fringe-parallel(x{par.num_workers},{par.schedule})",
        decomposition=counter.decomp,
    )
