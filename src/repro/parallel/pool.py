"""Multiprocess parallel counting.

Each worker runs the same compiled :class:`~repro.core.plan.CountingPlan`
over a slice of start vertices (the matcher's unit of work distribution —
the same decomposition the CUDA code uses across thread blocks) and
returns its partial core sum; the parent reduces and normalizes once
through the plan's single normalization path. Workers are forked, so the
read-only CSR graph is shared copy-on-write and never pickled.

The fork-pool mechanics live in
:class:`repro.core.backends.MultiprocessBackend`; this module keeps the
historical :func:`parallel_count` entry point as a thin wrapper over the
process-wide :class:`repro.runtime.Runtime` (so parallel calls share the
plan cache with everything else).

``num_workers=1`` bypasses multiprocessing entirely (useful under
pytest-benchmark and on platforms without fork).
"""

from __future__ import annotations

import os

from ..core.engine import CountResult, EngineConfig
from ..graph.csr import CSRGraph
from ..patterns.pattern import Pattern
from .schedule import SCHEDULES

__all__ = ["parallel_count", "ParallelConfig"]


class ParallelConfig:
    """Worker count and schedule for :func:`parallel_count`.

    Validates eagerly: a bad worker count, schedule name, or chunk size
    raises here, at construction, instead of failing deep inside
    ``make_chunks`` mid-run.
    """

    def __init__(
        self,
        num_workers: int | None = None,
        schedule: str = "dynamic",
        chunk_size: int = 256,
    ):
        if num_workers is not None and num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if schedule not in SCHEDULES:
            raise ValueError(
                f"unknown schedule {schedule!r}; use {'|'.join(SCHEDULES)}"
            )
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.num_workers = num_workers or max(1, (os.cpu_count() or 2) - 1)
        self.schedule = schedule
        self.chunk_size = chunk_size

    def __repr__(self) -> str:
        return (
            f"ParallelConfig(num_workers={self.num_workers}, "
            f"schedule={self.schedule!r}, chunk_size={self.chunk_size})"
        )


def parallel_count(
    graph: CSRGraph,
    pattern: Pattern,
    *,
    parallel: ParallelConfig | None = None,
    config: EngineConfig | None = None,
) -> CountResult:
    """Count ``pattern`` in ``graph`` across processes.

    Exact same result as :func:`repro.count_subgraphs`; only the work
    distribution differs.
    """
    from ..runtime import get_runtime

    par = parallel or ParallelConfig()
    return get_runtime().count(graph, pattern, engine="general", config=config, parallel=par)
