"""Persistent spawn-context worker pool with work stealing.

The CPU analogue of the paper's §3.6 execution discipline: thousands of
GPU workers stay resident next to the graph and pull work dynamically,
so no launch cost is paid per query and no straggler holds the tail.
Here the residents are OS processes (spawn context — no fork
assumptions, true multi-core under the GIL), the graph reaches them
zero-copy through :mod:`repro.parallel.shm`, and work distribution is a
split-half stealing protocol over start-vertex chunk spans:

* each call partitions the chunk index space into one contiguous span
  per worker, published in a shared ``Array``;
* a worker takes chunks off the *front* of its own span one at a time;
* a worker whose span is empty picks the victim with the most remaining
  work and steals the *back half* of its span (classic Cilk-style
  split-half, all under one cross-process lock — span updates are two
  integer writes, so the critical section is tiny);
* when every span is drained the worker ships its
  :class:`~repro.core.backends.PartialSum` (plus steal/busy stats) and
  parks on its control pipe waiting for the next call.

Compare :class:`repro.core.backends.MultiprocessBackend`, which pays a
full fork-pool spin-up per ``count()``: this pool starts its workers
once, reuses them across calls (``repro_pool_dispatch_seconds`` measures
the per-call overhead that remains), detects dead workers and respawns,
and shuts itself down after ``idle_ttl_s`` without traffic.

``get_default_pool()`` hands out a process-wide pool (the
:class:`~repro.core.backends.PoolBackend`'s path);
:meth:`repro.runtime.Runtime.close` and an ``atexit`` hook tear it down.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import queue as queue_mod
import signal
import threading
import time
from dataclasses import dataclass, replace

from .. import obs
from ..graph.csr import CSRGraph
from .schedule import make_chunks
from .shm import attach_graph, default_manager, shm_available

__all__ = [
    "WorkerPool",
    "PoolStats",
    "get_default_pool",
    "shutdown_default_pool",
]

# Parent-side wait granularity while reducing results: short enough to
# notice a dead worker promptly, long enough to stay off the CPU.
_REAP_POLL_S = 0.05
_START_TIMEOUT_S = 60.0


@dataclass(frozen=True)
class PoolStats:
    """Cumulative per-pool counters (parent side)."""

    calls: int = 0
    steals: int = 0
    stolen_chunks: int = 0
    respawns: int = 0
    retries: int = 0

    def __add__(self, other: "PoolStats") -> "PoolStats":
        return PoolStats(
            calls=self.calls + other.calls,
            steals=self.steals + other.steals,
            stolen_chunks=self.stolen_chunks + other.stolen_chunks,
            respawns=self.respawns + other.respawns,
            retries=self.retries + other.retries,
        )


class WorkerDied(RuntimeError):
    """A worker process vanished mid-call (the pool resets and retries)."""


# ----------------------------------------------------------------------
# worker process body
# ----------------------------------------------------------------------
def _take_chunk(spans, wid: int, num_workers: int) -> tuple[int, bool] | None:
    """Next chunk index for worker ``wid``: own span first, else steal.

    Returns ``(chunk_index, was_stolen)`` or ``None`` when every span is
    drained (the call is complete — no new work ever appears mid-call).
    """
    with spans.get_lock():
        lo, hi = spans[2 * wid], spans[2 * wid + 1]
        if lo < hi:
            spans[2 * wid] = lo + 1
            return lo, False
        victim, best_rem = -1, 0
        for v in range(num_workers):
            rem = spans[2 * v + 1] - spans[2 * v]
            if v != wid and rem > best_rem:
                victim, best_rem = v, rem
        if victim < 0:
            return None
        vlo, vhi = spans[2 * victim], spans[2 * victim + 1]
        # split-half: victim keeps the front, thief takes the back
        mid = vlo + best_rem // 2 if best_rem > 1 else vlo
        spans[2 * victim + 1] = mid
        spans[2 * wid] = mid + 1  # thief immediately takes the first chunk
        spans[2 * wid + 1] = vhi
        return mid, True


def _resolve_graph(graph_spec) -> CSRGraph:
    kind, payload = graph_spec
    if kind == "shm":
        return attach_graph(payload)
    return payload  # "inline": the pickled graph itself


def _worker_main(wid: int, num_workers: int, conn, result_q, spans) -> None:
    """One resident worker: park on the control pipe, serve calls."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent owns shutdown
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg[0] == "stop":
            return
        if msg[0] != "call":  # pragma: no cover - protocol guard
            continue
        _, call_id, payload = msg
        try:
            result_q.put(_worker_call(wid, num_workers, spans, call_id, payload))
        except Exception as exc:  # ship the failure; parent fails the call
            result_q.put(("error", call_id, wid, f"{type(exc).__name__}: {exc}"))


def _worker_call(wid, num_workers, spans, call_id, payload):
    from ..core.backends import PartialSum, WorkerDelta

    plan = payload["plan"]
    inner = payload["inner"]
    graph = _resolve_graph(payload["graph"])
    chunks = make_chunks(
        payload["num_vertices"], num_workers, payload["schedule"], payload["chunk_size"]
    )
    local = obs.Observer(trace=False) if payload["collect_metrics"] else None
    out = PartialSum()
    done = steals = stolen = 0
    t0 = time.perf_counter()
    ctx = local if local is not None else _NULL_CTX
    with ctx:
        while True:
            nxt = _take_chunk(spans, wid, num_workers)
            if nxt is None:
                break
            ci, was_stolen = nxt
            out += inner.run(plan, graph, start_vertices=chunks[ci])
            done += 1
            if was_stolen:
                steals += 1
                stolen += 1
    elapsed = time.perf_counter() - t0
    delta = WorkerDelta(
        pid=os.getpid(),
        chunks=done,
        matches=out.matches,
        venn_fc_s=out.venn_fc_s,
        batches=out.batches,
        elapsed_s=elapsed,
        metrics=local.metrics.snapshot() if local is not None else None,
    )
    stats = {"worker": wid, "chunks": done, "steals": steals, "stolen_chunks": stolen,
             "busy_s": elapsed}
    return ("done", call_id, wid, replace(out, workers=(delta,)), stats)


class _NullCtx:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CTX = _NullCtx()


# ----------------------------------------------------------------------
# parent-side pool
# ----------------------------------------------------------------------
class WorkerPool:
    """Persistent process pool executing CountingPlan calls.

    Workers are started lazily on the first :meth:`count` and reused
    until :meth:`shutdown` (or ``idle_ttl_s`` of silence, or process
    exit). One call runs at a time — concurrent callers queue on an
    internal lock, and the wait is what ``repro_pool_dispatch_seconds``
    measures — but each call uses every worker.
    """

    def __init__(
        self,
        num_workers: int,
        *,
        mp_context: str = "spawn",
        idle_ttl_s: float | None = None,
        max_retries: int = 2,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self.mp_context = mp_context
        self.idle_ttl_s = idle_ttl_s
        self.max_retries = max_retries
        self.stats = PoolStats()
        self._ctx = mp.get_context(mp_context)
        self._call_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._procs: list = []
        self._conns: list = []
        self._result_q = None
        self._spans = None
        self._call_seq = 0
        self._last_used = time.monotonic()
        self._idle_timer: threading.Timer | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return bool(self._procs) and all(p.is_alive() for p in self._procs)

    def worker_pids(self) -> list[int]:
        return [p.pid for p in self._procs if p.is_alive()]

    def start(self) -> None:
        """Spawn the resident workers (idempotent while they are alive)."""
        with self._state_lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            if self._procs and all(p.is_alive() for p in self._procs):
                return
            self._teardown_locked()
            t0 = time.perf_counter()
            self._result_q = self._ctx.Queue()
            self._spans = self._ctx.Array("q", 2 * self.num_workers, lock=True)
            self._procs, self._conns = [], []
            for wid in range(self.num_workers):
                parent_conn, child_conn = self._ctx.Pipe()
                proc = self._ctx.Process(
                    target=_worker_main,
                    args=(wid, self.num_workers, child_conn, self._result_q, self._spans),
                    name=f"repro-pool-{wid}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
            obs.gauge_set("repro_pool_workers", len(self._procs))
            obs.observe("repro_pool_spinup_seconds", time.perf_counter() - t0)

    def shutdown(self) -> None:
        """Stop the workers; the pool restarts lazily on the next call."""
        with self._state_lock:
            self._teardown_locked()

    def close(self) -> None:
        """Shut down permanently (``start`` raises afterwards)."""
        with self._state_lock:
            self._closed = True
            self._teardown_locked()

    def _teardown_locked(self) -> None:
        if self._idle_timer is not None:
            self._idle_timer.cancel()
            self._idle_timer = None
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
            finally:
                conn.close()
        for proc in self._procs:
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        if self._result_q is not None:
            self._result_q.close()
            self._result_q.cancel_join_thread()
        self._procs, self._conns = [], []
        self._result_q, self._spans = None, None
        obs.gauge_set("repro_pool_workers", 0)

    def _reset(self) -> None:
        """Hard restart after a dead worker: everything is respawned."""
        with self._state_lock:
            self._teardown_locked()
        self.stats = replace(self.stats, respawns=self.stats.respawns + 1)
        self.start()

    # ------------------------------------------------------------------
    # the call path
    # ------------------------------------------------------------------
    def count(self, plan, graph: CSRGraph, *, schedule: str = "dynamic",
              chunk_size: int = 256, inner=None):
        """Run ``plan`` over ``graph`` across the resident workers.

        Returns the reduced :class:`~repro.core.backends.PartialSum`
        (un-normalized, like every backend). Exact under work stealing:
        chunk spans partition the start-vertex space and each chunk is
        executed exactly once.
        """
        from ..core.backends import PartialSum, select_backend

        if inner is None:
            inner = select_backend(plan.config)
        t_submit = time.perf_counter()
        with self._call_lock:
            self.start()
            last_exc: Exception | None = None
            for attempt in range(self.max_retries + 1):
                if attempt:
                    self.stats = replace(self.stats, retries=self.stats.retries + 1)
                try:
                    result = self._run_call(
                        plan, graph, schedule, chunk_size, inner, t_submit
                    )
                    break
                except WorkerDied as exc:
                    last_exc = exc
                    self._reset()
            else:
                raise RuntimeError(
                    f"pool call failed after {self.max_retries} retries: {last_exc}"
                ) from last_exc
            self.stats = replace(self.stats, calls=self.stats.calls + 1)
            self._last_used = time.monotonic()
            self._arm_idle_timer()
        assert isinstance(result, PartialSum)
        return result

    def _run_call(self, plan, graph, schedule, chunk_size, inner, t_submit):
        call_id = self._call_seq = self._call_seq + 1
        num_chunks = len(make_chunks(graph.num_vertices, self.num_workers,
                                     schedule, chunk_size))
        # initial even split of the chunk index space, one span per worker
        base, extra = divmod(num_chunks, self.num_workers)
        with self._spans.get_lock():
            lo = 0
            for w in range(self.num_workers):
                hi = lo + base + (1 if w < extra else 0)
                self._spans[2 * w] = lo
                self._spans[2 * w + 1] = hi
                lo = hi
        if shm_available():
            graph_spec = ("shm", default_manager().ensure(graph))
        else:  # pragma: no cover - no-shm platforms ship the arrays
            graph_spec = ("inline", graph)
        payload = {
            "plan": plan,
            "inner": inner,
            "graph": graph_spec,
            "num_vertices": graph.num_vertices,
            "schedule": schedule,
            "chunk_size": chunk_size,
            "collect_metrics": obs.active_metrics() is not None,
        }
        for conn in self._conns:
            try:
                conn.send(("call", call_id, payload))
            except (OSError, BrokenPipeError) as exc:
                raise WorkerDied(f"worker pipe broke during dispatch: {exc}") from exc
        dispatch_s = time.perf_counter() - t_submit
        total, stats = self._reduce(call_id)
        self._record_metrics(total, stats, dispatch_s)
        return total

    def _reduce(self, call_id):
        from ..core.backends import PartialSum

        total = PartialSum()
        stats: list[dict] = []
        pending = set(range(self.num_workers))
        while pending:
            try:
                msg = self._result_q.get(timeout=_REAP_POLL_S)
            except queue_mod.Empty:
                dead = [w for w in pending if not self._procs[w].is_alive()]
                if dead:
                    raise WorkerDied(
                        f"worker(s) {dead} died mid-call "
                        f"(exitcodes {[self._procs[w].exitcode for w in dead]})"
                    )
                continue
            if msg[0] == "error":
                _, cid, wid, text = msg
                if cid != call_id:
                    continue  # stale message from an aborted call
                raise RuntimeError(f"pool worker {wid} failed: {text}")
            _, cid, wid, partial, wstats = msg
            if cid != call_id or wid not in pending:
                continue
            pending.discard(wid)
            total += partial
            stats.append(wstats)
        return total, stats

    # ------------------------------------------------------------------
    def _record_metrics(self, total, stats, dispatch_s: float) -> None:
        steals = sum(s["steals"] for s in stats)
        stolen = sum(s["stolen_chunks"] for s in stats)
        self.stats = replace(
            self.stats,
            steals=self.stats.steals + steals,
            stolen_chunks=self.stats.stolen_chunks + stolen,
        )
        registry = obs.active_metrics()
        if registry is None:
            return
        from ..core.backends import record_worker_metrics

        record_worker_metrics(total)
        registry.gauge("repro_pool_workers").set(self.num_workers)
        registry.counter("repro_pool_steals_total").inc(steals)
        registry.counter("repro_pool_stolen_chunks_total").inc(stolen)
        registry.histogram("repro_pool_dispatch_seconds").observe(dispatch_s)
        registry.gauge("repro_shm_bytes").set(default_manager().total_bytes())
        for s in stats:
            wid = str(s["worker"])
            registry.gauge("repro_pool_worker_steals", worker=wid).set(s["steals"])
            registry.gauge("repro_pool_worker_chunks", worker=wid).set(s["chunks"])
            registry.gauge("repro_pool_worker_busy_seconds", worker=wid).set(s["busy_s"])

    def _arm_idle_timer(self) -> None:
        if self.idle_ttl_s is None:
            return
        if self._idle_timer is not None:
            self._idle_timer.cancel()
        self._idle_timer = threading.Timer(self.idle_ttl_s, self._idle_check)
        self._idle_timer.daemon = True
        self._idle_timer.start()

    def _idle_check(self) -> None:
        if not self._call_lock.acquire(blocking=False):
            return  # a call is running; it will re-arm on completion
        try:
            if time.monotonic() - self._last_used >= (self.idle_ttl_s or 0):
                self.shutdown()
        finally:
            self._call_lock.release()

    def __repr__(self) -> str:
        state = "running" if self.running else ("closed" if self._closed else "idle")
        return (
            f"WorkerPool(num_workers={self.num_workers}, ctx={self.mp_context!r}, "
            f"{state}, calls={self.stats.calls}, steals={self.stats.steals})"
        )


# ----------------------------------------------------------------------
# process-wide default pool
# ----------------------------------------------------------------------
_default_pool: WorkerPool | None = None
_default_pool_lock = threading.Lock()


def get_default_pool(
    num_workers: int,
    *,
    mp_context: str = "spawn",
    idle_ttl_s: float | None = 300.0,
) -> WorkerPool:
    """The process-wide persistent pool (created/resized on demand).

    A request for a different worker count or context replaces the pool
    (the old workers are stopped first) — callers that need several
    concurrent shapes should hold their own :class:`WorkerPool`.
    """
    global _default_pool
    with _default_pool_lock:
        pool = _default_pool
        if (
            pool is None
            or pool._closed
            or pool.num_workers != num_workers
            or pool.mp_context != mp_context
        ):
            if pool is not None:
                pool.close()
            pool = _default_pool = WorkerPool(
                num_workers, mp_context=mp_context, idle_ttl_s=idle_ttl_s
            )
        return pool


def shutdown_default_pool() -> None:
    """Stop and drop the process-wide pool (Runtime.close / atexit)."""
    global _default_pool
    with _default_pool_lock:
        if _default_pool is not None:
            _default_pool.close()
            _default_pool = None


atexit.register(shutdown_default_pool)
