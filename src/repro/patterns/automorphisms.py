"""Automorphism handling and symmetry breaking (paper §3.1).

Two distinct groups matter for Fringe-SGC:

* ``Aut(P)`` — the full pattern automorphism group. The engine divides the
  injective-homomorphism total by ``|Aut(P)|`` to obtain subgraph copies.
  For fringe-heavy patterns ``|Aut(P)|`` is astronomically large (it
  contains ``Π_t k_t!`` fringe permutations), so it is *never* enumerated;
  the engine computes it structurally via the identity
  ``|Aut(P)| = inj(P, P)`` — counting the pattern in itself with the very
  same fringe formula (see ``repro.core.engine``).

* ``Aut_dec(core)`` — the decoration-preserving core automorphisms: the
  core-pattern automorphisms that map every anchor set onto an anchor set
  with the same fringe count. Ordered core embeddings related by such an
  automorphism contribute identical fringe counts, so the matcher can
  enumerate one representative per orbit (via the classic min-ID
  restriction scheme) and multiply by ``|Aut_dec|``.
"""

from __future__ import annotations

import math

from .decompose import Decomposition
from .isomorphism import automorphisms_of, isomorphisms
from .pattern import Pattern

__all__ = [
    "aut_size_bruteforce",
    "decorated_core_automorphisms",
    "symmetry_restrictions",
    "aut_size_structural",
]


def aut_size_bruteforce(pattern: Pattern) -> int:
    """|Aut(P)| by enumeration — exponential, for small test patterns only."""
    return len(automorphisms_of(pattern))


def decorated_core_automorphisms(decomp: Decomposition) -> list[tuple[int, ...]]:
    """Automorphisms of the core pattern that preserve the fringe decoration.

    Returned permutations act on core-local ids. Pre-filter candidate
    vertex pairs by full-pattern degree and by the multiset of fringe types
    anchored at each vertex, then verify anchor-set preservation exactly.
    """
    decoration = decomp.decoration()  # core-local anchor set -> count
    pattern, core = decomp.pattern, decomp.core_vertices

    # per-core-vertex profile: full degree + sorted (arity, count) incidences
    def profile(c: int) -> tuple:
        incidences = sorted(
            (len(a), decoration[a]) for a in decoration if c in a
        )
        return (pattern.degree(core[c]), tuple(incidences))

    profiles = [profile(c) for c in range(decomp.num_core)]

    def compatible(u: int, v: int) -> bool:
        return profiles[u] == profiles[v]

    out = []
    for perm in isomorphisms(decomp.core_pattern, decomp.core_pattern, compatible=compatible):
        mapped = {
            frozenset(perm[c] for c in anchors): count
            for anchors, count in decoration.items()
        }
        if mapped == decoration:
            out.append(perm)
    return out


def symmetry_restrictions(
    decomp: Decomposition,
) -> tuple[list[tuple[int, int]], int]:
    """Min-ID symmetry-breaking restrictions for the core matcher.

    Returns ``(restrictions, group_order)`` where each restriction
    ``(i, j)`` — in *matching-order positions* — requires
    ``match[i] < match[j]``. Enumerating only embeddings satisfying all
    restrictions visits exactly one member per ``Aut_dec`` orbit, so the
    matcher multiplies its total by ``group_order``.

    This is the standard stabilizer-chain construction used by GraphPi,
    Dryadic, and STMatch: walk the matching order; at the first position
    whose orbit under the remaining group is non-trivial, pin it to be the
    minimum of its orbit and descend into the stabilizer.
    """
    autos = decorated_core_automorphisms(decomp)
    group_order = len(autos)
    restrictions: list[tuple[int, int]] = []
    order = decomp.matching_order
    pos_of = {c: i for i, c in enumerate(order)}
    group = [a for a in autos if a != tuple(range(decomp.num_core))]
    for c in order:
        if not group:
            break
        orbit = {a[c] for a in group} | {c}
        if len(orbit) > 1:
            for other in orbit - {c}:
                restrictions.append((pos_of[c], pos_of[other]))
        group = [a for a in group if a[c] == c]
    return restrictions, group_order


def aut_size_structural(decomp: Decomposition, count_injective_core) -> int:
    """|Aut(P)| via inj(P, P) = Σ_φ F_sets · Π k_t! over the pattern itself.

    ``count_injective_core`` is injected by the engine to avoid a circular
    import: it must return Σ over ordered core embeddings of the fringe-set
    count, for an arbitrary (graph, decomposition) pair.
    """
    from ..graph.csr import CSRGraph

    pattern_as_graph = CSRGraph.from_edges(decomp.pattern.edges(), num_vertices=decomp.pattern.n)
    sigma = count_injective_core(pattern_as_graph, decomp)
    return sigma * decomp.fringe_permutation_factor()


def fringe_factorial_product(decomp: Decomposition) -> int:
    return math.prod(math.factorial(ft.count) for ft in decomp.fringe_types)
