"""Vertex orbits of a pattern under its automorphism group.

Orbit structure explains the fractional core-mass semantics of the
listing mode (two core placements related by an automorphism share one
copy's mass) and drives orbit-aware graphlet degrees: two pattern
vertices in the same orbit are indistinguishable roles ("leaf of a star"),
different orbits are distinct roles ("apex vs tail of a paw").

Brute-force over the automorphism group — pattern-sized inputs only.
"""

from __future__ import annotations

from .isomorphism import automorphisms_of
from .pattern import Pattern

__all__ = ["vertex_orbits", "orbit_of", "num_orbits", "edge_orbits"]


def vertex_orbits(pattern: Pattern) -> list[frozenset[int]]:
    """Partition of the vertices into automorphism orbits (sorted by
    smallest member)."""
    autos = automorphisms_of(pattern)
    seen: set[int] = set()
    orbits: list[frozenset[int]] = []
    for v in range(pattern.n):
        if v in seen:
            continue
        orbit = frozenset(a[v] for a in autos)
        seen.update(orbit)
        orbits.append(orbit)
    return orbits


def orbit_of(pattern: Pattern, v: int) -> frozenset[int]:
    """The orbit containing vertex ``v``."""
    if not 0 <= v < pattern.n:
        raise ValueError(f"vertex {v} out of range")
    for orbit in vertex_orbits(pattern):
        if v in orbit:
            return orbit
    raise AssertionError("orbits must cover every vertex")


def num_orbits(pattern: Pattern) -> int:
    return len(vertex_orbits(pattern))


def edge_orbits(pattern: Pattern) -> list[frozenset[tuple[int, int]]]:
    """Partition of the edges into automorphism orbits."""
    autos = automorphisms_of(pattern)
    seen: set[tuple[int, int]] = set()
    orbits: list[frozenset[tuple[int, int]]] = []
    for u, v in pattern.edges():
        if (u, v) in seen:
            continue
        orbit = frozenset(
            (min(a[u], a[v]), max(a[u], a[v])) for a in autos
        )
        seen.update(orbit)
        orbits.append(orbit)
    return orbits
