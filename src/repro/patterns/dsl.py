"""A small text language for user-defined patterns.

Fringe-SGC counts "user-provided patterns" (§2); files and command lines
need a concise syntax. Three forms, composable with ``+`` fringe clauses:

* **named**: any catalog name — ``triangle``, ``diamond``, ``4-cycle``,
  ``5-clique``, ``3-star``, ``6-path``, ``fig4``, ``tailed-triangle`` ...
* **edge list**: ``edges:0-1,1-2,0-2`` (vertex ids are integers);
* **fringe clauses**: ``<base> + <count>x<anchors>`` where anchors are
  core vertex ids joined by ``&`` — e.g.
  ``triangle + 2x0&1&2 + 1x0`` is the triangle with two tri-fringes and
  a tail on vertex 0.

Examples::

    parse_pattern("tailed-triangle")
    parse_pattern("edges:0-1,1-2,2-3,3-0")           # 4-cycle
    parse_pattern("edge + 3x0&1 + 2x0")              # 3 wedges + 2 tails
    parse_pattern("fig4 + 10x0&1")                   # the Fig. 13 series
"""

from __future__ import annotations

import re

from . import catalog
from .pattern import Pattern

__all__ = ["parse_pattern", "pattern_names", "PatternSyntaxError"]


class PatternSyntaxError(ValueError):
    """Raised on malformed pattern expressions."""


_PARAMETRIC = {
    "book": catalog.book,
    "friendship": catalog.friendship,
    "star": catalog.star,
    "path": catalog.path,
    "cycle": catalog.cycle,
    "clique": catalog.clique,
    "tailed-triangle": lambda k: catalog.k_tailed_triangle(k),
}

_NAMED = {
    "vertex": catalog.single_vertex,
    "edge": catalog.edge,
    "wedge": catalog.wedge,
    "triangle": catalog.triangle,
    "tailed-triangle": catalog.tailed_triangle,
    "paw": catalog.paw,
    "diamond": catalog.diamond,
    "4-cycle": catalog.four_cycle,
    "4-clique": catalog.four_clique,
    "fig4": catalog.fig4_pattern,
}


def pattern_names() -> list[str]:
    """Every recognized base name (parametric ones shown with ``k-``)."""
    return sorted(_NAMED) + [f"k-{name}" for name in sorted(_PARAMETRIC)]


def _parse_base(token: str) -> Pattern:
    token = token.strip().lower()
    if token.startswith("edges:"):
        body = token[len("edges:") :]
        edges = []
        for part in body.split(","):
            m = re.fullmatch(r"\s*(\d+)\s*-\s*(\d+)\s*", part)
            if not m:
                raise PatternSyntaxError(f"bad edge {part!r} (want 'u-v')")
            edges.append((int(m.group(1)), int(m.group(2))))
        if not edges:
            raise PatternSyntaxError("edge list is empty")
        return Pattern.from_edges(edges)
    if token in _NAMED:
        return _NAMED[token]()
    m = re.fullmatch(r"(\d+)-(\w[\w-]*)", token)
    if m:
        k, name = int(m.group(1)), m.group(2)
        if name in _PARAMETRIC:
            return _PARAMETRIC[name](k)
        raise PatternSyntaxError(
            f"unknown parametric pattern {name!r}; known: {sorted(_PARAMETRIC)}"
        )
    raise PatternSyntaxError(
        f"unknown pattern {token!r}; known names: {pattern_names()}"
    )


def _parse_fringe_clause(clause: str) -> tuple[int, tuple[int, ...]]:
    m = re.fullmatch(r"\s*(\d+)\s*x\s*([\d&\s]+)\s*", clause)
    if not m:
        raise PatternSyntaxError(
            f"bad fringe clause {clause!r} (want '<count>x<v1&v2&...>')"
        )
    count = int(m.group(1))
    if count < 1:
        raise PatternSyntaxError("fringe count must be >= 1")
    anchors = tuple(int(a) for a in m.group(2).split("&"))
    return count, anchors


def parse_pattern(text: str) -> Pattern:
    """Parse a pattern expression (see module docstring for the syntax)."""
    if not text or not text.strip():
        raise PatternSyntaxError("empty pattern expression")
    parts = text.split("+")
    pattern = _parse_base(parts[0])
    for clause in parts[1:]:
        count, anchors = _parse_fringe_clause(clause)
        if any(a >= pattern.n or a < 0 for a in anchors):
            raise PatternSyntaxError(
                f"anchor out of range in {clause!r} (pattern has {pattern.n} vertices)"
            )
        pattern = pattern.with_fringe(anchors, count)
    if not pattern.is_connected:
        raise PatternSyntaxError("pattern must be connected")
    return pattern
