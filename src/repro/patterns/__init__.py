"""Pattern toolkit: pattern type, catalog, decomposition, automorphisms."""

from .pattern import Pattern, all_connected_patterns
from .decompose import Decomposition, FringeType, decompose, decomposition_from_core
from . import automorphisms, catalog, dsl, isomorphism, orbits

__all__ = [
    "Pattern",
    "all_connected_patterns",
    "Decomposition",
    "FringeType",
    "decompose",
    "decomposition_from_core",
    "automorphisms",
    "catalog",
    "isomorphism",
    "dsl",
    "orbits",
]
