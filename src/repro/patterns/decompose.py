"""Core/fringe decomposition of a pattern (paper §3.4).

Definitions (paper §3):

* **core** — a minimal connected subset of pattern vertices such that all
  non-core vertices are only connected to core vertices;
* **fringe vertex** — any non-core vertex (hence adjacent only to core
  vertices, never to another fringe);
* **anchor set** — the core vertices a fringe is attached to. Fringes with
  the same anchor set form one *fringe type* (tail = 1 anchor, wedge = 2,
  tri-fringe = 3, ...).

The decomposition heuristic follows the paper verbatim: process vertices in
increasing degree order; an unprocessed degree-d vertex whose neighbours
contain no fringe becomes a fringe and promotes its neighbours to the core;
if the resulting core is disconnected, fringe vertices along shortest paths
between core components are moved into the core.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from .pattern import Pattern

__all__ = ["FringeType", "Decomposition", "decompose", "decomposition_from_core"]


@dataclass(frozen=True)
class FringeType:
    """All fringes sharing one anchor set."""

    anchors: frozenset[int]  # pattern-space core vertex ids
    count: int
    fringe_vertices: tuple[int, ...]

    @property
    def arity(self) -> int:
        """1 = tail, 2 = wedge fringe, 3 = tri-fringe, ..."""
        return len(self.anchors)


@dataclass(frozen=True)
class Decomposition:
    """A validated core/fringe split plus everything the engine needs.

    ``core_vertices`` is sorted; ``core_local[v]`` maps a pattern vertex id
    to its index in ``core_vertices`` (core-local id). ``core_pattern`` is
    the induced subpattern on the core, in core-local ids.

    ``matching_order`` lists core-local ids most-constrained-first while
    keeping every prefix connected (paper §3.6). ``anchored`` lists, in
    matching-order position, the core-local ids that appear in at least one
    anchor set — the ``q`` vertices whose Venn diagram must be computed.
    """

    pattern: Pattern
    core_vertices: tuple[int, ...]
    fringe_types: tuple[FringeType, ...]
    core_pattern: Pattern = field(init=False)
    core_local: dict[int, int] = field(init=False)
    matching_order: tuple[int, ...] = field(init=False)
    anchored: tuple[int, ...] = field(init=False)

    def __post_init__(self):
        _validate(self.pattern, self.core_vertices, self.fringe_types)
        core_local = {v: i for i, v in enumerate(self.core_vertices)}
        object.__setattr__(self, "core_local", core_local)
        object.__setattr__(self, "core_pattern", self.pattern.induced(self.core_vertices))
        order = _matching_order(self.pattern, self.core_pattern, self.core_vertices)
        object.__setattr__(self, "matching_order", order)
        anchored_set = set()
        for ft in self.fringe_types:
            anchored_set.update(core_local[a] for a in ft.anchors)
        anchored = tuple(c for c in order if c in anchored_set)
        object.__setattr__(self, "anchored", anchored)

    # ------------------------------------------------------------------
    @property
    def num_core(self) -> int:
        return len(self.core_vertices)

    @property
    def q(self) -> int:
        """Number of core vertices that belong to at least one anchor set."""
        return len(self.anchored)

    @property
    def num_fringe_types(self) -> int:
        return len(self.fringe_types)

    @property
    def num_fringes(self) -> int:
        return sum(ft.count for ft in self.fringe_types)

    def fringe_permutation_factor(self) -> int:
        """``Π_t k_t!`` — converts per-type set choices to ordered choices."""
        import math

        out = 1
        for ft in self.fringe_types:
            out *= math.factorial(ft.count)
        return out

    def anchor_bitsets(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """(anch, k) arrays for the fc function (paper Listing 5).

        ``anch[t]`` is the anchor set of fringe type ``t`` encoded as a
        q-bit bitset: bit ``i`` is the i-th entry of ``self.anchored``
        (matching-order position of the anchored vertices, paper §3.4).
        Types are sorted by bitset for determinism.
        """
        bit_of = {c: i for i, c in enumerate(self.anchored)}
        pairs = []
        for ft in self.fringe_types:
            bits = 0
            for a in ft.anchors:
                bits |= 1 << bit_of[self.core_local[a]]
            pairs.append((bits, ft.count))
        pairs.sort()
        anch = tuple(p[0] for p in pairs)
        k = tuple(p[1] for p in pairs)
        return anch, k

    def decoration(self) -> dict[frozenset[int], int]:
        """Anchor set (in core-local ids) -> fringe count."""
        return {
            frozenset(self.core_local[a] for a in ft.anchors): ft.count
            for ft in self.fringe_types
        }

    def __repr__(self) -> str:
        types = ", ".join(
            f"{sorted(ft.anchors)}x{ft.count}" for ft in self.fringe_types
        )
        return (
            f"Decomposition(core={list(self.core_vertices)}, "
            f"fringes=[{types}], q={self.q})"
        )


def decompose(pattern: Pattern) -> Decomposition:
    """Split ``pattern`` into core and fringes with the paper's heuristic."""
    n = pattern.n
    if n == 0:
        raise ValueError("empty pattern")
    if not pattern.is_connected:
        raise ValueError("pattern must be connected")
    if n == 1:
        return decomposition_from_core(pattern, [0])

    CORE, FRINGE = 1, 2
    state = [0] * n  # 0 = unprocessed
    max_deg = max(pattern.degrees())
    for d in range(1, max_deg + 1):
        for v in range(n):
            if state[v] != 0 or pattern.degree(v) != d:
                continue
            if any(state[w] == FRINGE for w in pattern.adj[v]):
                # a neighbour is already a fringe, so v must be core
                state[v] = CORE
                continue
            state[v] = FRINGE
            for w in pattern.adj[v]:
                state[w] = CORE

    core = {v for v in range(n) if state[v] == CORE}
    if not core:
        # all vertices became fringes is impossible (marking a fringe
        # promotes its neighbours), but a 1-vertex pattern reaches here
        core = {0}

    core = _reconnect(pattern, core)
    return decomposition_from_core(pattern, sorted(core))


def decomposition_from_core(pattern: Pattern, core_vertices: Iterable[int]) -> Decomposition:
    """Build a decomposition from an explicitly chosen core.

    Any valid core works with the counting formula; tests exploit this to
    check that alternative cores yield identical counts (the paper notes
    the core is not unique, §3).
    """
    core = sorted(set(int(v) for v in core_vertices))
    core_set = set(core)
    groups: dict[frozenset[int], list[int]] = {}
    for v in range(pattern.n):
        if v in core_set:
            continue
        anchors = frozenset(pattern.adj[v])
        groups.setdefault(anchors, []).append(v)
    fringe_types = tuple(
        FringeType(anchors=anchors, count=len(vs), fringe_vertices=tuple(vs))
        for anchors, vs in sorted(groups.items(), key=lambda kv: sorted(kv[0]))
    )
    return Decomposition(pattern, tuple(core), fringe_types)


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _validate(pattern: Pattern, core_vertices: tuple[int, ...], fringe_types) -> None:
    core_set = set(core_vertices)
    if not core_set:
        raise ValueError("core must be non-empty")
    if any(v < 0 or v >= pattern.n for v in core_set):
        raise ValueError("core vertex out of range")
    covered = set(core_set)
    for ft in fringe_types:
        if not ft.anchors or not ft.anchors <= core_set:
            raise ValueError(f"anchors {sorted(ft.anchors)} not a non-empty core subset")
        if ft.count != len(ft.fringe_vertices):
            raise ValueError("fringe count mismatch")
        for f in ft.fringe_vertices:
            if f in core_set:
                raise ValueError(f"vertex {f} is both core and fringe")
            if pattern.adj[f] != ft.anchors:
                raise ValueError(
                    f"fringe {f} neighbours {sorted(pattern.adj[f])} != anchors {sorted(ft.anchors)}"
                )
            covered.add(f)
    if covered != set(range(pattern.n)):
        raise ValueError("core + fringes must cover every pattern vertex")
    if not _is_connected_within(pattern, core_set):
        raise ValueError("core must induce a connected subpattern")


def _is_connected_within(pattern: Pattern, verts: set[int]) -> bool:
    if not verts:
        return False
    start = next(iter(verts))
    seen = {start}
    frontier = [start]
    while frontier:
        v = frontier.pop()
        for w in pattern.adj[v]:
            if w in verts and w not in seen:
                seen.add(w)
                frontier.append(w)
    return seen == verts


def _reconnect(pattern: Pattern, core: set[int]) -> set[int]:
    """Move a minimal number of fringe vertices into the core to make it
    connected: BFS through the whole pattern between core components and
    absorb the vertices on the shortest connecting path (paper §3.4)."""
    core = set(core)
    while not _is_connected_within(pattern, core):
        component = _component_of(pattern, core, next(iter(core)))
        path = _shortest_path_to_other_component(pattern, core, component)
        core.update(path)
    return core


def _component_of(pattern: Pattern, core: set[int], start: int) -> set[int]:
    seen = {start}
    frontier = [start]
    while frontier:
        v = frontier.pop()
        for w in pattern.adj[v]:
            if w in core and w not in seen:
                seen.add(w)
                frontier.append(w)
    return seen


def _shortest_path_to_other_component(
    pattern: Pattern, core: set[int], component: set[int]
) -> list[int]:
    """BFS from ``component`` through any vertices to the nearest core
    vertex outside it; returns the interior path vertices to absorb."""
    parent: dict[int, int | None] = {v: None for v in component}
    queue = deque(component)
    while queue:
        v = queue.popleft()
        for w in pattern.adj[v]:
            if w in parent:
                continue
            parent[w] = v
            if w in core:  # reached another core component
                path = []
                cur: int | None = v
                while cur is not None and cur not in component:
                    path.append(cur)
                    cur = parent[cur]
                return path
            queue.append(w)
    raise AssertionError("pattern connected but no path between core components")


def _matching_order(
    pattern: Pattern, core_pattern: Pattern, core_vertices: tuple[int, ...]
) -> tuple[int, ...]:
    """Core-local matching order: most constrained first, prefixes connected.

    'Most constrained' uses the vertex's degree in the *full* pattern (its
    core degree plus attached fringes), since that is the degree bound the
    matcher filters on — the paper's tailed-triangle example picks the
    core vertex with the tail first.
    """
    p = core_pattern.n
    full_degree = [pattern.degree(v) for v in core_vertices]
    order = [max(range(p), key=lambda c: (full_degree[c], core_pattern.degree(c)))]
    placed = set(order)
    while len(order) < p:
        candidates = [c for c in range(p) if c not in placed]
        # connectivity first, then constraint strength
        candidates.sort(
            key=lambda c: (
                sum(1 for w in core_pattern.adj[c] if w in placed),
                full_degree[c],
                core_pattern.degree(c),
                -c,
            ),
            reverse=True,
        )
        best = candidates[0]
        if not any(w in placed for w in core_pattern.adj[best]) and p > 1:
            # core is connected, so some candidate must touch the prefix
            touching = [
                c for c in candidates if any(w in placed for w in core_pattern.adj[c])
            ]
            best = touching[0]
        order.append(best)
        placed.add(best)
    return tuple(order)
