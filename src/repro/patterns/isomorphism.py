"""Backtracking (sub)graph isomorphism for small patterns.

Used for pattern catalogs, automorphism enumeration, and as the ground
truth in tests. VF2-style: extend a partial mapping one vertex at a time,
pruning on degree and adjacency consistency. Patterns are tiny, so no
fancy candidate ordering is needed here — the *graph*-side matcher in
``repro.core.matcher`` is the performance-critical one.
"""

from __future__ import annotations

from typing import Callable, Iterator

from .pattern import Pattern

__all__ = ["are_isomorphic", "isomorphisms", "automorphisms_of"]


def isomorphisms(
    a: Pattern,
    b: Pattern,
    *,
    compatible: Callable[[int, int], bool] | None = None,
) -> Iterator[tuple[int, ...]]:
    """Yield every isomorphism ``a -> b`` as a tuple ``m`` with ``m[v]`` the
    image of ``v``. ``compatible(va, vb)`` can impose extra vertex-level
    constraints (used for decoration-preserving core automorphisms)."""
    if a.n != b.n or a.num_edges != b.num_edges:
        return
    if sorted(a.degrees()) != sorted(b.degrees()):
        return
    n = a.n
    deg_a, deg_b = a.degrees(), b.degrees()
    mapping = [-1] * n
    used = [False] * n
    # order pattern-a vertices so each (after the first) touches a previous
    # one when possible; keeps pruning tight for connected patterns.
    order = _connect_order(a)

    def extend(pos: int) -> Iterator[tuple[int, ...]]:
        if pos == n:
            yield tuple(mapping)
            return
        va = order[pos]
        for vb in range(n):
            if used[vb] or deg_a[va] != deg_b[vb]:
                continue
            if compatible is not None and not compatible(va, vb):
                continue
            ok = True
            for wa in a.adj[va]:
                mb = mapping[wa]
                if mb != -1 and mb not in b.adj[vb]:
                    ok = False
                    break
            if ok:
                # also ensure non-adjacent mapped pairs stay non-adjacent
                for wa in range(n):
                    mb = mapping[wa]
                    if mb != -1 and wa not in a.adj[va] and mb in b.adj[vb]:
                        ok = False
                        break
            if not ok:
                continue
            mapping[va] = vb
            used[vb] = True
            yield from extend(pos + 1)
            mapping[va] = -1
            used[vb] = False

    yield from extend(0)


def are_isomorphic(a: Pattern, b: Pattern) -> bool:
    return next(isomorphisms(a, b), None) is not None


def automorphisms_of(
    pattern: Pattern, *, compatible: Callable[[int, int], bool] | None = None
) -> list[tuple[int, ...]]:
    """All automorphisms of ``pattern`` (exponential; small patterns only)."""
    return list(isomorphisms(pattern, pattern, compatible=compatible))


def _connect_order(pattern: Pattern) -> list[int]:
    if pattern.n == 0:
        return []
    order = [max(range(pattern.n), key=pattern.degree)]
    placed = set(order)
    while len(order) < pattern.n:
        # prefer vertices adjacent to already-placed ones, highest degree first
        candidates = [v for v in range(pattern.n) if v not in placed]
        candidates.sort(
            key=lambda v: (sum(1 for w in pattern.adj[v] if w in placed), pattern.degree(v)),
            reverse=True,
        )
        order.append(candidates[0])
        placed.add(candidates[0])
    return order
