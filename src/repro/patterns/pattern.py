"""The pattern (search subgraph) type.

Patterns are tiny (a dozen-ish vertices), so the representation favours
clarity and hashability over raw speed: a tuple of frozen neighbour sets.
All pattern-level precomputation (decomposition, automorphisms, matching
order) happens once per pattern and is amortized over the whole graph
search, exactly as in the paper (§3.4: "not performance critical").
"""

from __future__ import annotations

from functools import cached_property
from itertools import combinations, permutations
from typing import Iterable, Sequence

__all__ = ["Pattern"]


class Pattern:
    """An undirected, simple, connected search pattern.

    Vertices are ``0..n-1``. Construct via :meth:`from_edges` or the
    builders in :mod:`repro.patterns.catalog`.
    """

    __slots__ = ("n", "adj", "__dict__")

    def __init__(self, n: int, adj: tuple[frozenset[int], ...]):
        self.n = n
        self.adj = adj

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[tuple[int, int]], n: int | None = None) -> "Pattern":
        edge_list = [(int(u), int(v)) for u, v in edges]
        max_id = max((max(u, v) for u, v in edge_list), default=-1)
        size = max_id + 1 if n is None else int(n)
        if n is not None and max_id >= n:
            raise ValueError("edge endpoint exceeds declared vertex count")
        sets: list[set[int]] = [set() for _ in range(size)]
        for u, v in edge_list:
            if u == v:
                raise ValueError(f"self loop on vertex {u}")
            if u < 0 or v < 0:
                raise ValueError("negative vertex id")
            sets[u].add(v)
            sets[v].add(u)
        return cls(size, tuple(frozenset(s) for s in sets))

    @classmethod
    def single_vertex(cls) -> "Pattern":
        return cls(1, (frozenset(),))

    @classmethod
    def from_networkx(cls, nxg) -> "Pattern":
        import networkx as nx

        nxg = nx.convert_node_labels_to_integers(nxg)
        return cls.from_edges(nxg.edges(), n=nxg.number_of_nodes())

    def to_networkx(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_nodes_from(range(self.n))
        nxg.add_edges_from(self.edges())
        return nxg

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def degree(self, v: int) -> int:
        return len(self.adj[v])

    def neighbors(self, v: int) -> frozenset[int]:
        return self.adj[v]

    def has_edge(self, u: int, v: int) -> bool:
        return v in self.adj[u]

    def edges(self) -> list[tuple[int, int]]:
        return [(u, v) for u in range(self.n) for v in self.adj[u] if u < v]

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self.adj) // 2

    def degrees(self) -> list[int]:
        return [len(s) for s in self.adj]

    @cached_property
    def is_connected(self) -> bool:
        if self.n == 0:
            return True
        seen = {0}
        frontier = [0]
        while frontier:
            v = frontier.pop()
            for w in self.adj[v]:
                if w not in seen:
                    seen.add(w)
                    frontier.append(w)
        return len(seen) == self.n

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def relabel(self, mapping: Sequence[int]) -> "Pattern":
        """Return the pattern with vertex ``v`` renamed ``mapping[v]``."""
        if sorted(mapping) != list(range(self.n)):
            raise ValueError("mapping must be a permutation of 0..n-1")
        return Pattern.from_edges(
            [(mapping[u], mapping[v]) for u, v in self.edges()], n=self.n
        )

    def induced(self, vertices: Sequence[int]) -> "Pattern":
        """Induced subpattern on ``vertices``, relabeled by their sorted order."""
        verts = sorted(set(vertices))
        index = {v: i for i, v in enumerate(verts)}
        edges = [
            (index[u], index[v]) for u, v in self.edges() if u in index and v in index
        ]
        return Pattern.from_edges(edges, n=len(verts))

    def with_fringe(self, anchors: Iterable[int], count: int = 1) -> "Pattern":
        """Attach ``count`` new fringe vertices, each adjacent to exactly
        ``anchors``. This is the §6.2 'systematic addition of fringes' op."""
        anchor_list = sorted(set(int(a) for a in anchors))
        if not anchor_list:
            raise ValueError("a fringe needs at least one anchor")
        if any(a >= self.n or a < 0 for a in anchor_list):
            raise ValueError("anchor out of range")
        edges = self.edges()
        n = self.n
        for _ in range(count):
            edges.extend((a, n) for a in anchor_list)
            n += 1
        return Pattern.from_edges(edges, n=n)

    # ------------------------------------------------------------------
    # canonical form (small patterns only; used for catalogs and tests)
    # ------------------------------------------------------------------
    def canonical_key(self) -> tuple:
        """A canonical certificate: the lexicographically smallest edge set
        over all vertex relabelings. Exponential — guarded to n <= 9."""
        if self.n > 9:
            raise ValueError("canonical_key is brute force; pattern too large (n > 9)")
        best = None
        for perm in permutations(range(self.n)):
            relabeled = tuple(
                sorted(
                    (min(perm[u], perm[v]), max(perm[u], perm[v]))
                    for u, v in self.edges()
                )
            )
            if best is None or relabeled < best:
                best = relabeled
        return (self.n, best or ())

    def is_isomorphic(self, other: "Pattern") -> bool:
        if self.n != other.n or self.num_edges != other.num_edges:
            return False
        if sorted(self.degrees()) != sorted(other.degrees()):
            return False
        from .isomorphism import are_isomorphic

        return are_isomorphic(self, other)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self.n == other.n and self.adj == other.adj

    def __hash__(self) -> int:
        return hash((self.n, self.adj))

    def __repr__(self) -> str:
        return f"Pattern(n={self.n}, m={self.num_edges})"


def all_connected_patterns(n: int) -> list[Pattern]:
    """Every connected pattern with exactly ``n`` vertices, up to isomorphism.

    Brute force over edge subsets; used by the exhaustive validation suite
    (the paper tested all patterns with up to 5 vertices, §3.4).
    """
    if n == 1:
        return [Pattern.single_vertex()]
    pairs = list(combinations(range(n), 2))
    seen_keys: set[tuple] = set()
    result: list[Pattern] = []
    for bits in range(1 << len(pairs)):
        edges = [pairs[i] for i in range(len(pairs)) if bits >> i & 1]
        if len(edges) < n - 1:
            continue
        pat = Pattern.from_edges(edges, n=n)
        if not pat.is_connected:
            continue
        key = pat.canonical_key()
        if key not in seen_keys:
            seen_keys.add(key)
            result.append(pat)
    return result
