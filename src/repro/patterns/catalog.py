"""Named patterns: everything the paper draws or evaluates.

* Fig. 1 — all connected 3- and 4-vertex patterns;
* Fig. 3 — k-tailed triangles;
* Fig. 4 — the 16-vertex / 25-edge triangle-core showcase pattern;
* §5/§6 — the systematic core+fringe families used in the evaluation
  (vertex core, edge core, wedge core, triangle core, each with
  incrementally added fringes).

Builders return fresh :class:`~repro.patterns.pattern.Pattern` objects.
"""

from __future__ import annotations

from .pattern import Pattern

__all__ = [
    "single_vertex",
    "edge",
    "star",
    "wedge",
    "triangle",
    "path",
    "cycle",
    "clique",
    "tailed_triangle",
    "k_tailed_triangle",
    "diamond",
    "paw",
    "four_cycle",
    "four_clique",
    "tailed_four_clique",
    "complete_bipartite",
    "book",
    "friendship",
    "fig1_patterns",
    "fig4_pattern",
    "core_with_fringes",
    "vertex_core_family",
    "edge_core_family",
    "wedge_core_family",
    "triangle_core_family",
]


# ----------------------------------------------------------------------
# elementary patterns
# ----------------------------------------------------------------------
def single_vertex() -> Pattern:
    return Pattern.single_vertex()


def edge() -> Pattern:
    return Pattern.from_edges([(0, 1)])


def star(k: int) -> Pattern:
    """k-star: hub 0 with k spokes (the 2-star is the wedge)."""
    if k < 1:
        raise ValueError("k-star needs k >= 1")
    return Pattern.from_edges([(0, i) for i in range(1, k + 1)])


def wedge() -> Pattern:
    return star(2)


def triangle() -> Pattern:
    return cycle(3)


def path(n: int) -> Pattern:
    """Path on n vertices (n - 1 edges)."""
    if n < 2:
        raise ValueError("path needs n >= 2")
    return Pattern.from_edges([(i, i + 1) for i in range(n - 1)])


def cycle(n: int) -> Pattern:
    if n < 3:
        raise ValueError("cycle needs n >= 3")
    return Pattern.from_edges([(i, (i + 1) % n) for i in range(n)])


def clique(n: int) -> Pattern:
    if n < 2:
        raise ValueError("clique needs n >= 2")
    return Pattern.from_edges([(i, j) for i in range(n) for j in range(i + 1, n)])


def complete_bipartite(m: int, n: int) -> Pattern:
    """K_{m,n}: sides 0..m-1 and m..m+n-1. For m = 2 this is the wedge
    core carrying n wedge fringes (the Fig. 11 K_{2,k} family)."""
    if m < 1 or n < 1:
        raise ValueError("complete bipartite needs m, n >= 1")
    return Pattern.from_edges([(i, m + j) for i in range(m) for j in range(n)])


def book(pages: int) -> Pattern:
    """The 'book' B_k: an edge core with k wedge fringes (k triangles
    sharing one edge) — the purest fringe-scaling pattern."""
    if pages < 1:
        raise ValueError("book needs >= 1 page")
    return core_with_fringes("edge", [((0, 1), pages)])


def friendship(k: int) -> Pattern:
    """The friendship graph F_k: k triangles sharing one vertex.

    A stress pattern for the decomposition heuristic: the two outer
    vertices of each triangle are adjacent, so they cannot both be
    fringes — the heuristic must promote one per triangle into the core,
    yielding a (k+1)-vertex core with k wedge fringes."""
    if k < 1:
        raise ValueError("friendship graph needs k >= 1")
    edges = []
    for i in range(k):
        a, b = 1 + 2 * i, 2 + 2 * i
        edges += [(0, a), (0, b), (a, b)]
    return Pattern.from_edges(edges)


# ----------------------------------------------------------------------
# Fig. 1 / Fig. 3 patterns
# ----------------------------------------------------------------------
def tailed_triangle() -> Pattern:
    """Triangle 0-1-2 with a tail vertex 3 on vertex 0 (the 'paw')."""
    return Pattern.from_edges([(0, 1), (1, 2), (0, 2), (0, 3)])


paw = tailed_triangle


def k_tailed_triangle(k: int) -> Pattern:
    """Triangle with k tails on one vertex (Fig. 3's k-tailed triangles)."""
    edges = [(0, 1), (1, 2), (0, 2)]
    edges.extend((0, 3 + i) for i in range(k))
    return Pattern.from_edges(edges)


def diamond() -> Pattern:
    """Edge core {0,1} plus two wedge fringes — K4 minus an edge."""
    return Pattern.from_edges([(0, 1), (0, 2), (1, 2), (0, 3), (1, 3)])


def four_cycle() -> Pattern:
    return cycle(4)


def four_clique() -> Pattern:
    return clique(4)


def tailed_four_clique(tails: int = 1) -> Pattern:
    """4-clique with ``tails`` tail vertices on vertex 0 (§6.1, Fig. 10)."""
    edges = clique(4).edges()
    edges.extend((0, 4 + i) for i in range(tails))
    return Pattern.from_edges(edges)


def fig1_patterns() -> dict[str, Pattern]:
    """All connected 3- and 4-vertex patterns, as drawn in Fig. 1."""
    return {
        "wedge": wedge(),
        "triangle": triangle(),
        "3-star": star(3),
        "4-path": path(4),
        "tailed triangle": tailed_triangle(),
        "4-cycle": four_cycle(),
        "diamond": diamond(),
        "4-clique": four_clique(),
    }


# ----------------------------------------------------------------------
# systematic core + fringe construction (§5, §6.2)
# ----------------------------------------------------------------------
_CORES = {
    "vertex": Pattern.single_vertex(),
    "edge": edge(),
    "wedge": wedge(),
    "triangle": triangle(),
}


def core_with_fringes(core: str | Pattern, fringes: list[tuple[tuple[int, ...], int]]) -> Pattern:
    """Build ``core`` plus fringes: each ``(anchors, count)`` adds ``count``
    fringe vertices adjacent to exactly ``anchors`` (core vertex ids).

    Example: ``core_with_fringes("edge", [((0,), 2), ((0, 1), 1)])`` is the
    2-tailed triangle.
    """
    pat = _CORES[core] if isinstance(core, str) else core
    for anchors, count in fringes:
        if count:
            pat = pat.with_fringe(anchors, count)
    return pat


def fig4_pattern() -> Pattern:
    """The paper's Fig. 4 showcase: 16 vertices, 25 edges, triangle core.

    Reconstructed from the figure description (the figure itself names
    tri-fringes O and P): triangle core {0,1,2} carrying 2 tri-fringes,
    5 wedge fringes (2 on {0,1}, 2 on {0,2}, 1 on {1,2}), and 6 tails
    (2 per core vertex):  3 + 13 vertices, 3 + 2·3 + 5·2 + 6·1 = 25 edges.
    """
    pat = core_with_fringes(
        "triangle",
        [
            ((0, 1, 2), 2),  # tri-fringes (vertices O and P)
            ((0, 1), 2),
            ((0, 2), 2),
            ((1, 2), 1),
            ((0,), 2),
            ((1,), 2),
            ((2,), 2),
        ],
    )
    assert pat.n == 16 and pat.num_edges == 25
    return pat


def vertex_core_family(max_fringes: int = 6) -> dict[str, Pattern]:
    """1-vertex-core patterns of §6.1/Fig. 8: k-stars, k = 2..max_fringes."""
    return {f"{k}-star": star(k) for k in range(2, max_fringes + 1)}


def edge_core_family() -> dict[str, Pattern]:
    """2-vertex-core patterns of Fig. 9: fringes added to all anchor sets
    incrementally up to the third-party 7-vertex limit."""
    fam: dict[str, Pattern] = {}
    fam["triangle"] = core_with_fringes("edge", [((0, 1), 1)])
    fam["tailed triangle"] = core_with_fringes("edge", [((0, 1), 1), ((0,), 1)])
    fam["diamond"] = core_with_fringes("edge", [((0, 1), 2)])
    fam["2-tailed triangle"] = core_with_fringes("edge", [((0, 1), 1), ((0,), 2)])
    fam["tailed diamond"] = core_with_fringes("edge", [((0, 1), 2), ((0,), 1)])
    fam["double-tailed triangle"] = core_with_fringes("edge", [((0, 1), 1), ((0,), 1), ((1,), 1)])
    fam["3-wedge edge"] = core_with_fringes("edge", [((0, 1), 3)])
    fam["2-tailed diamond"] = core_with_fringes("edge", [((0, 1), 2), ((0,), 1), ((1,), 1)])
    fam["4-wedge edge"] = core_with_fringes("edge", [((0, 1), 4)])
    fam["tailed 4-wedge"] = core_with_fringes("edge", [((0, 1), 4), ((0,), 1)])
    fam["5-wedge edge"] = core_with_fringes("edge", [((0, 1), 5)])
    return fam


def wedge_core_family() -> dict[str, Pattern]:
    """3-vertex wedge-core patterns of Fig. 11 (up to 7 vertices).

    ``wedge()`` is ``star(2)``: centre 0, endpoints 1 and 2. The 4-cycle
    is the wedge core plus one wedge fringe on the two *endpoints*.
    """
    w = wedge()
    ends = (1, 2)
    fam: dict[str, Pattern] = {}
    fam["4-cycle"] = core_with_fringes(w, [(ends, 1)])
    fam["tailed 4-cycle"] = core_with_fringes(w, [(ends, 1), ((0,), 1)])
    fam["k23"] = core_with_fringes(w, [(ends, 2)])
    fam["2-tailed 4-cycle"] = core_with_fringes(w, [(ends, 1), ((0,), 2)])
    fam["tailed k23"] = core_with_fringes(w, [(ends, 2), ((0,), 1)])
    fam["k24"] = core_with_fringes(w, [(ends, 3)])
    fam["k25"] = core_with_fringes(w, [(ends, 4)])
    return fam


def triangle_core_family() -> dict[str, Pattern]:
    """Triangle-core patterns of Fig. 10 (up to 7 vertices)."""
    t = triangle()
    fam: dict[str, Pattern] = {}
    fam["4-clique"] = core_with_fringes(t, [((0, 1, 2), 1)])
    fam["tailed 4-clique"] = core_with_fringes(t, [((0, 1, 2), 1), ((0,), 1)])
    fam["5-clique-minus"] = core_with_fringes(t, [((0, 1, 2), 2)])
    fam["2-tailed 4-clique"] = core_with_fringes(t, [((0, 1, 2), 1), ((0,), 2)])
    fam["wedged 4-clique"] = core_with_fringes(t, [((0, 1, 2), 1), ((0, 1), 1)])
    fam["3-tailed 4-clique"] = core_with_fringes(t, [((0, 1, 2), 1), ((0,), 1), ((1,), 1), ((2,), 1)])
    fam["3-trifringe triangle"] = core_with_fringes(t, [((0, 1, 2), 3)])
    return fam
