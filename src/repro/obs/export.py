"""Exporters: JSONL traces, Prometheus text metrics, CLI tables.

Three audiences, three formats:

* :func:`write_trace_jsonl` — one JSON object per span, loadable by any
  trace tooling (or ``jq``);
* :func:`prometheus_text` — the Prometheus exposition text format, with
  cumulative histogram buckets and a ``+Inf`` bound;
* :func:`metrics_table` — a human-readable dump for ``--metrics`` runs.
"""

from __future__ import annotations

import json
from pathlib import Path

from .metrics import Gauge, Histogram, MetricsRegistry
from .trace import Tracer

__all__ = [
    "trace_jsonl_lines",
    "write_trace_jsonl",
    "prometheus_text",
    "metrics_table",
]


# ----------------------------------------------------------------------
# traces
# ----------------------------------------------------------------------
def trace_jsonl_lines(tracer: Tracer) -> list[str]:
    """One JSON line per finished span, ordered by start time."""
    spans = sorted(tracer.spans, key=lambda s: (s.start_s, s.span_id))
    return [
        json.dumps(
            {
                "span_id": s.span_id,
                "parent_id": s.parent_id,
                "name": s.name,
                "start_s": round(s.start_s, 9),
                "duration_s": round(s.duration_s, 9),
                "attrs": s.attrs,
            },
            sort_keys=True,
        )
        for s in spans
    ]


def write_trace_jsonl(tracer: Tracer, path: str | Path) -> int:
    """Write the trace; returns the number of spans written."""
    lines = trace_jsonl_lines(tracer)
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
    return len(lines)


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def _labels_text(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(merged.items()))
    return "{" + inner + "}"


def _num(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus exposition format (text/plain; version 0.0.4)."""
    lines: list[str] = []
    typed: set[str] = set()
    for name, labels, metric in registry.collect():
        if name not in typed:
            lines.append(f"# TYPE {name} {metric.kind}")
            typed.add(name)
        if isinstance(metric, Histogram):
            cumulative = 0
            for bound, count in zip(metric.buckets, metric.counts):
                cumulative += count
                lines.append(
                    f"{name}_bucket{_labels_text(labels, {'le': _num(float(bound))})} {cumulative}"
                )
            cumulative += metric.counts[-1]
            lines.append(f"{name}_bucket{_labels_text(labels, {'le': '+Inf'})} {cumulative}")
            lines.append(f"{name}_sum{_labels_text(labels)} {_num(metric.sum)}")
            lines.append(f"{name}_count{_labels_text(labels)} {metric.count}")
        else:
            lines.append(f"{name}{_labels_text(labels)} {_num(metric.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_table(registry: MetricsRegistry) -> str:
    """Aligned human-readable metrics dump (the CLI ``--metrics`` view)."""
    rows: list[tuple[str, str]] = []
    for name, labels, metric in registry.collect():
        label = name + _labels_text(labels)
        if isinstance(metric, Histogram):
            value = f"count={metric.count} sum={metric.sum:.6g} mean={metric.mean:.6g}"
        elif isinstance(metric, Gauge):
            value = f"{metric.value:.6g}"
        else:
            value = _num(metric.value)
        rows.append((label, value))
    if not rows:
        return "(no metrics recorded)"
    width = max(len(label) for label, _ in rows)
    return "\n".join(f"{label:<{width}}  {value}" for label, value in rows)
