"""Span-based tracing: nested spans over monotonic clocks.

A :class:`Tracer` collects :class:`Span` records; nesting is tracked per
execution context with :mod:`contextvars`, so spans opened on different
threads (or in forked workers that return their spans by value) never
interleave their parent links. Timestamps are ``time.perf_counter()``
offsets from the tracer's epoch — monotonic, immune to wall-clock jumps.

The instrumented code never talks to a Tracer directly; it calls
:func:`repro.obs.span`, which resolves the active observer and returns a
shared no-op context manager when tracing is off (one pointer check, no
allocation).
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One finished span: a named, timed, attributed tree node."""

    span_id: int
    parent_id: int | None
    name: str
    start_s: float  # offset from the tracer's epoch (monotonic)
    duration_s: float
    attrs: dict = field(default_factory=dict)


class Tracer:
    """Collects spans; ``span()`` nests via a per-tracer context variable."""

    def __init__(self):
        self._epoch = time.perf_counter()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._current: ContextVar[int | None] = ContextVar("repro_span", default=None)
        self.spans: list[Span] = []

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a child of the context's current span; record on exit.

        The span is appended when the block exits (even on exception), so
        ``self.spans`` holds only finished spans — children before their
        parents, which exporters reorder by start time.
        """
        span_id = next(self._ids)
        parent_id = self._current.get()
        token = self._current.set(span_id)
        start = time.perf_counter()
        try:
            yield self
        finally:
            duration = time.perf_counter() - start
            self._current.reset(token)
            record = Span(
                span_id=span_id,
                parent_id=parent_id,
                name=name,
                start_s=start - self._epoch,
                duration_s=duration,
                attrs=attrs,
            )
            with self._lock:
                self.spans.append(record)

    def roots(self) -> list[Span]:
        """Top-level spans (no parent), in start order."""
        return sorted(
            (s for s in self.spans if s.parent_id is None), key=lambda s: s.start_s
        )

    def children(self, span: Span) -> list[Span]:
        return sorted(
            (s for s in self.spans if s.parent_id == span.span_id),
            key=lambda s: s.start_s,
        )
