"""Observability for the counting engine (``repro.obs``).

The paper's evaluation is entirely performance characterization —
throughput, per-stage cost splits, warp occupancy, load balance — and
this package is how the reproduction measures the same things end to
end:

* :mod:`repro.obs.metrics` — process-wide counters / gauges /
  fixed-bucket histograms, snapshot-mergeable across fork-pool workers;
* :mod:`repro.obs.trace` — span-based tracing with ``contextvars``
  nesting and monotonic clocks;
* :mod:`repro.obs.export` — JSONL traces, Prometheus text metrics, and
  a human-readable table for the CLI.

An :class:`Observer` bundles one tracer and one registry. Activation is
scoped: ``with Observer() as ob`` installs it for the current execution
context (threads and forked workers inherit it), and :func:`enable`
installs a process-global fallback. Instrumented code calls the module
helpers (:func:`span`, :func:`counter_add`, :func:`observe`, ...) which
resolve the active observer per call — when nothing is active each
helper is a single pointer check, so the engine's hot paths pay
effectively nothing with observability off.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from contextvars import ContextVar
from typing import Iterable

from .export import metrics_table, prometheus_text, trace_jsonl_lines, write_trace_jsonl
from .metrics import BUCKETS, Counter, Gauge, Histogram, MetricsRegistry
from .trace import Span, Tracer

__all__ = [
    "Observer",
    "current",
    "enable",
    "disable",
    "span",
    "counter_add",
    "gauge_set",
    "observe",
    "observe_many",
    "active_metrics",
    # re-exports
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "BUCKETS",
    "Tracer",
    "Span",
    "metrics_table",
    "prometheus_text",
    "trace_jsonl_lines",
    "write_trace_jsonl",
]


class Observer:
    """One tracer + one metrics registry, installable as a scope.

    ``with Observer() as ob:`` activates it for the current context (and
    anything forked from it); nesting restores the previous observer on
    exit. Pass ``trace=False`` / ``metrics=False`` to collect only one
    side — workers, for example, run metrics-only registries and ship
    the snapshot back through :class:`~repro.core.backends.PartialSum`.
    """

    def __init__(self, *, trace: bool = True, metrics: bool = True):
        self.tracer: Tracer | None = Tracer() if trace else None
        self.metrics: MetricsRegistry | None = MetricsRegistry() if metrics else None
        self._tls = threading.local()

    def __enter__(self) -> "Observer":
        stack = getattr(self._tls, "tokens", None)
        if stack is None:
            stack = self._tls.tokens = []
        stack.append(_active.set(self))
        return self

    def __exit__(self, *exc) -> bool:
        _active.reset(self._tls.tokens.pop())
        return False


_active: ContextVar[Observer | None] = ContextVar("repro_observer", default=None)
_global: Observer | None = None

_NULL_SPAN = nullcontext(None)


def current() -> Observer | None:
    """The active observer: context-scoped first, process-global second."""
    observer = _active.get()
    return observer if observer is not None else _global


def enable(*, trace: bool = True, metrics: bool = True) -> Observer:
    """Install (and return) a process-global observer."""
    global _global
    _global = Observer(trace=trace, metrics=metrics)
    return _global


def disable() -> None:
    """Remove the process-global observer."""
    global _global
    _global = None


# ----------------------------------------------------------------------
# instrumentation helpers — one pointer check when observability is off
# ----------------------------------------------------------------------
def span(name: str, **attrs):
    """Context manager for a trace span (shared no-op when inactive)."""
    observer = current()
    if observer is None or observer.tracer is None:
        return _NULL_SPAN
    return observer.tracer.span(name, **attrs)


def active_metrics() -> MetricsRegistry | None:
    """The active registry, or None — hot loops check this once up front."""
    observer = current()
    return observer.metrics if observer is not None else None


def counter_add(name: str, amount: float = 1, **labels: str) -> None:
    registry = active_metrics()
    if registry is not None:
        registry.counter(name, **labels).inc(amount)


def gauge_set(name: str, value: float, **labels: str) -> None:
    registry = active_metrics()
    if registry is not None:
        registry.gauge(name, **labels).set(value)


def observe(name: str, value: float, **labels: str) -> None:
    registry = active_metrics()
    if registry is not None:
        registry.histogram(name, **labels).observe(value)


def observe_many(name: str, values: Iterable[float], **labels: str) -> None:
    registry = active_metrics()
    if registry is not None:
        registry.histogram(name, **labels).observe_many(values)
