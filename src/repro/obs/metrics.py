"""Process-wide metrics: counters, gauges, and fixed-bucket histograms.

The paper's evaluation (§6) is a performance characterization —
throughput, per-stage cost splits, load balance — so the reproduction
needs first-class metrics, not ad-hoc prints. This module provides the
data structures only; the *recording* helpers that check whether
observability is active live in :mod:`repro.obs` so the disabled path
stays one pointer check.

Design constraints:

* **mergeable** — fork-pool workers snapshot their registry and the
  parent merges the deltas at reduction (``snapshot()`` / ``merge()``),
  which is how per-worker load-imbalance series cross the process
  boundary;
* **fixed buckets** — histograms use per-metric bucket tables declared
  in :data:`BUCKETS`, so worker snapshots always merge bin-for-bin;
* **thread-safe** — one registry serves every thread of a Runtime.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "BUCKETS",
    "DEFAULT_BUCKETS",
]

# Per-metric bucket tables (upper bounds, Prometheus ``le`` semantics).
# Seconds-shaped metrics share the latency table; size-shaped metrics use
# powers of four, matching the paper's orders-of-magnitude plots.
_LATENCY_BUCKETS = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)
_SIZE_BUCKETS = (1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144)
# Micro-batch sizes are small by construction (ServiceConfig.max_batch):
# powers of two up to a generous cap keep every realistic size resolvable.
_BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)

DEFAULT_BUCKETS = _LATENCY_BUCKETS

BUCKETS: dict[str, tuple[float, ...]] = {
    "repro_count_latency_seconds": _LATENCY_BUCKETS,
    "repro_compile_seconds": _LATENCY_BUCKETS,
    "repro_worker_elapsed_seconds": _LATENCY_BUCKETS,
    "repro_venn_set_size": _SIZE_BUCKETS,
    "repro_candidate_set_size": _SIZE_BUCKETS,
    "repro_batch_matches": _SIZE_BUCKETS,
    "repro_serve_latency_seconds": _LATENCY_BUCKETS,
    "repro_serve_queue_wait_seconds": _LATENCY_BUCKETS,
    "repro_serve_batch_size": _BATCH_BUCKETS,
    "repro_pool_dispatch_seconds": _LATENCY_BUCKETS,
    "repro_pool_spinup_seconds": _LATENCY_BUCKETS,
}


class Counter:
    """Monotonically increasing value (int or float)."""

    __slots__ = ("value", "_lock")
    kind = "counter"

    def __init__(self, lock: threading.Lock):
        self.value: float = 0
        self._lock = lock

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """Last-written value (set semantics, not additive)."""

    __slots__ = ("value", "_lock")
    kind = "gauge"

    def __init__(self, lock: threading.Lock):
        self.value: float = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class Histogram:
    """Fixed-bucket histogram (non-cumulative bins + overflow bin).

    ``counts[i]`` holds observations ``<= buckets[i]`` (and above the
    previous bound); ``counts[-1]`` is the overflow bin. The Prometheus
    exporter cumulates on the way out.
    """

    __slots__ = ("buckets", "counts", "sum", "count", "_lock")
    kind = "histogram"

    def __init__(self, lock: threading.Lock, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum: float = 0.0
        self.count: int = 0
        self._lock = lock

    def _bin(self, value: float) -> int:
        # first bucket whose upper bound admits the value (linear scan is
        # fine: bucket tables are ~a dozen entries)
        for i, ub in enumerate(self.buckets):
            if value <= ub:
                return i
        return len(self.buckets)

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[self._bin(value)] += 1
            self.sum += value
            self.count += 1

    def observe_many(self, values: Iterable[float]) -> None:
        vals = [float(v) for v in values]
        if not vals:
            return
        bins = [self._bin(v) for v in vals]
        with self._lock:
            for b in bins:
                self.counts[b] += 1
            self.sum += sum(vals)
            self.count += len(vals)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Name+labels → metric map with snapshot/merge for worker deltas."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, tuple], Counter | Gauge | Histogram] = {}

    # -- access (get-or-create; kind mismatches are programming errors) --
    def _get(self, factory, name: str, labels: Mapping[str, str]):
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory()
                self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(lambda: Counter(self._lock), name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(lambda: Gauge(self._lock), name, labels)

    def histogram(
        self, name: str, buckets: Sequence[float] | None = None, **labels: str
    ) -> Histogram:
        resolved = tuple(buckets) if buckets is not None else BUCKETS.get(name, DEFAULT_BUCKETS)
        return self._get(lambda: Histogram(self._lock, resolved), name, labels)

    # ------------------------------------------------------------------
    def collect(self) -> list[tuple[str, dict, Counter | Gauge | Histogram]]:
        """Sorted (name, labels, metric) triples for exporters."""
        with self._lock:
            items = sorted(self._metrics.items())
        return [(name, dict(labelkey), metric) for (name, labelkey), metric in items]

    def snapshot(self) -> list[dict]:
        """Plain-data (picklable) dump — the cross-process delta format."""
        out: list[dict] = []
        for name, labels, metric in self.collect():
            entry: dict = {"name": name, "labels": labels, "type": metric.kind}
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                entry["counts"] = list(metric.counts)
                entry["sum"] = metric.sum
                entry["count"] = metric.count
            else:
                entry["value"] = metric.value
            out.append(entry)
        return out

    def merge(self, snapshot: Iterable[Mapping]) -> None:
        """Fold a :meth:`snapshot` into this registry (additive for
        counters/histograms, last-wins for gauges)."""
        for entry in snapshot:
            name, labels = entry["name"], dict(entry.get("labels", {}))
            kind = entry["type"]
            if kind == "counter":
                self.counter(name, **labels).inc(entry["value"])
            elif kind == "gauge":
                self.gauge(name, **labels).set(entry["value"])
            elif kind == "histogram":
                hist = self.histogram(name, buckets=entry["buckets"], **labels)
                if tuple(entry["buckets"]) != hist.buckets:
                    raise ValueError(f"bucket mismatch merging histogram {name!r}")
                with hist._lock:
                    for i, c in enumerate(entry["counts"]):
                        hist.counts[i] += c
                    hist.sum += entry["sum"]
                    hist.count += entry["count"]
            else:  # pragma: no cover - snapshot always writes known kinds
                raise ValueError(f"unknown metric kind {kind!r}")
