"""The Backend layer: execution substrates for a compiled CountingPlan.

A backend turns a :class:`~repro.core.plan.CountingPlan` plus a graph
(and an optional start-vertex slice — the unit of work distribution) into
a :class:`PartialSum`: the raw symmetry-reduced ordered-embedding sum
``sigma`` and the number of core matches visited. Backends never
normalize; :meth:`CountingPlan.normalize` is the single shared
normalization path.

Four substrates mirror the paper's execution models:

* :class:`SerialBackend` — the per-match Venn + fc pipeline (Listing 5);
* :class:`BatchBackend` — the vectorized fringe-polynomial formulation
  (one batched Venn pass per ``batch_size`` matches — the data-parallel
  shape the CUDA kernel uses), still driven by the per-match stack
  matcher;
* :class:`FrontierBackend` — fully vectorized: the frontier-at-a-time
  matcher (:mod:`repro.core.frontier`) produces whole *blocks* of core
  embeddings per NumPy kernel pass and feeds them straight into
  ``venn_batch`` + the compiled fringe polynomial, eliminating the
  per-embedding Python loop end to end (the warp model of Listing 7);
* :class:`MultiprocessBackend` — fork-pool distribution of start-vertex
  chunks across workers, each running an inner backend; the read-only CSR
  graph and the plan are shared copy-on-write, never pickled;
* :class:`PoolBackend` — the *persistent* spawn-context pool
  (:mod:`repro.parallel.workerpool`): workers started once and reused
  across calls, the graph resident in named shared memory
  (:mod:`repro.parallel.shm`), chunks served by split-half work stealing.
  Selected with ``ParallelConfig(pool="persistent")``.

This is the seam the GraphBLAS-style multi-backend papers advocate: one
logical algorithm, several execution substrates, all interchangeable and
all cross-checked in the test suite.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
from dataclasses import dataclass, replace
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from .. import obs
from ..graph.csr import CSRGraph
from .fringe_count import fc_iterative, fc_recursive
from .frontier import FrontierStats, iter_frontier_blocks
from .matcher import match_cores
from .plan import CountingPlan
from .venn import VENN_IMPLS, venn_batch

__all__ = [
    "PartialSum",
    "WorkerDelta",
    "Backend",
    "SerialBackend",
    "BatchBackend",
    "FrontierBackend",
    "MultiprocessBackend",
    "PoolBackend",
    "record_worker_metrics",
    "select_backend",
]


@dataclass(frozen=True)
class WorkerDelta:
    """One fork-pool job's contribution, attributed to its worker process.

    Crosses the process boundary inside :class:`PartialSum`, so the
    parent can compute per-worker load-imbalance (the paper's §3.6
    dynamic-schedule discussion) after the reduction. ``metrics`` is a
    :meth:`repro.obs.MetricsRegistry.snapshot` delta recorded by the
    worker while running this job (``None`` when observability is off).
    """

    pid: int
    chunks: int
    matches: int
    venn_fc_s: float
    batches: int
    elapsed_s: float
    metrics: list | None = None


@dataclass(frozen=True)
class PartialSum:
    """A backend's contribution: raw sums plus execution substatistics.

    ``sigma`` is Σ F_sets over the visited symmetry-reduced core
    embeddings (un-normalized); ``matches`` counts those embeddings.
    ``venn_fc_s`` is the time spent in Venn + fringe-count evaluation
    (as opposed to core matching); ``batches`` counts vectorized batch
    flushes. ``workers`` carries per-worker :class:`WorkerDelta` records
    out of the fork pool (empty for in-process execution); their fields
    sum to this object's totals. Partial sums add, so reductions are one
    ``sum()``.
    """

    sigma: int = 0
    matches: int = 0
    venn_fc_s: float = 0.0
    batches: int = 0
    workers: tuple[WorkerDelta, ...] = ()

    def __add__(self, other: "PartialSum") -> "PartialSum":
        return PartialSum(
            sigma=self.sigma + other.sigma,
            matches=self.matches + other.matches,
            venn_fc_s=self.venn_fc_s + other.venn_fc_s,
            batches=self.batches + other.batches,
            workers=self.workers + other.workers,
        )

    __radd__ = __add__


@runtime_checkable
class Backend(Protocol):
    """Anything that can execute a CountingPlan over a graph slice."""

    name: str

    def run(
        self,
        plan: CountingPlan,
        graph: CSRGraph,
        start_vertices: Sequence[int] | None = None,
    ) -> PartialSum: ...


def _count_matches_only(plan, graph, start_vertices) -> PartialSum:
    """q == 0 (no anchored fringes): every core embedding contributes 1."""
    matches = sum(1 for _ in match_cores(graph, plan.core_plan, start_vertices=start_vertices))
    return PartialSum(sigma=matches, matches=matches)


class SerialBackend:
    """Per-match Venn + fc evaluation (the paper's Listing 5 pipeline)."""

    name = "serial"

    def run(
        self,
        plan: CountingPlan,
        graph: CSRGraph,
        start_vertices: Sequence[int] | None = None,
    ) -> PartialSum:
        if plan.q == 0:
            return _count_matches_only(plan, graph, start_vertices)
        cfg = plan.config
        venn_fn = VENN_IMPLS[cfg.venn_impl]
        fc = fc_recursive if cfg.fc_impl == "recursive" else fc_iterative
        anch, k, q = plan.anch, plan.k, plan.q
        positions = plan.anchored_positions
        registry = obs.active_metrics()  # checked once, outside the hot loop
        degrees = graph.degrees
        total = 0
        matches = 0
        venn_fc_s = 0.0
        for match in match_cores(graph, plan.core_plan, start_vertices=start_vertices):
            matches += 1
            t0 = time.perf_counter()
            anchors = [match[i] for i in positions]
            venn = venn_fn(graph, anchors, match)
            total += fc(venn, anch, k, q)
            venn_fc_s += time.perf_counter() - t0
            if registry is not None:
                registry.histogram("repro_venn_set_size").observe(sum(venn))
                registry.histogram("repro_candidate_set_size").observe(
                    int(sum(degrees[a] for a in anchors))
                )
        if registry is not None:
            registry.counter("repro_core_matches_total").inc(matches)
            registry.counter("repro_venn_fc_seconds_total").inc(venn_fc_s)
        return PartialSum(sigma=total, matches=matches, venn_fc_s=venn_fc_s)


class BatchBackend:
    """Vectorized fringe-polynomial evaluation over match batches."""

    name = "batch"

    def run(
        self,
        plan: CountingPlan,
        graph: CSRGraph,
        start_vertices: Sequence[int] | None = None,
    ) -> PartialSum:
        if plan.q == 0:
            return _count_matches_only(plan, graph, start_vertices)
        bs = plan.config.batch_size
        positions = list(plan.anchored_positions)
        poly = plan.poly
        registry = obs.active_metrics()  # checked once, outside the hot loop
        total = 0
        matches = 0
        batches = 0
        venn_fc_s = 0.0
        buf: list[tuple[int, ...]] = []

        def flush() -> int:
            with obs.span("venn_fc_batch", matches=len(buf)):
                core_matrix = np.asarray(buf, dtype=np.int64)
                anchor_matrix = core_matrix[:, positions]
                venns = venn_batch(graph, anchor_matrix, core_matrix)
                if registry is not None:
                    registry.histogram("repro_batch_matches").observe(len(buf))
                    registry.histogram("repro_venn_set_size").observe_many(
                        venns.sum(axis=1).tolist()
                    )
                    registry.histogram("repro_candidate_set_size").observe_many(
                        graph.degrees[anchor_matrix].sum(axis=1).tolist()
                    )
                return poly.evaluate_batch(venns)

        for match in match_cores(graph, plan.core_plan, start_vertices=start_vertices):
            matches += 1
            buf.append(match)
            if len(buf) >= bs:
                t0 = time.perf_counter()
                total += flush()
                venn_fc_s += time.perf_counter() - t0
                batches += 1
                buf.clear()
        if buf:
            t0 = time.perf_counter()
            total += flush()
            venn_fc_s += time.perf_counter() - t0
            batches += 1
        if registry is not None:
            registry.counter("repro_core_matches_total").inc(matches)
            registry.counter("repro_batches_flushed_total").inc(batches)
            registry.counter("repro_venn_fc_seconds_total").inc(venn_fc_s)
        return PartialSum(sigma=total, matches=matches, venn_fc_s=venn_fc_s, batches=batches)


class FrontierBackend:
    """Frontier-at-a-time vectorized matching + batched venn/fc.

    The matcher side runs level-synchronously over 2-D embedding blocks
    (:func:`repro.core.frontier.iter_frontier_blocks`); each completed
    block goes through ``venn_batch`` and the compiled fringe polynomial
    in ``batch_size`` chunks. ``EngineConfig.max_frontier_rows`` bounds
    the candidate volume of any expansion step (larger frontiers split
    and traverse depth-first), so memory stays fixed on dense graphs.
    """

    name = "frontier"

    def run(
        self,
        plan: CountingPlan,
        graph: CSRGraph,
        start_vertices: Sequence[int] | None = None,
    ) -> PartialSum:
        cfg = plan.config
        registry = obs.active_metrics()  # checked once, outside the hot loop
        fstats = FrontierStats()
        positions = list(plan.anchored_positions)
        poly = plan.poly
        sigma = 0
        matches = 0
        venn_fc_s = 0.0
        batches = 0
        t_run = time.perf_counter()
        with obs.span("frontier.match", pattern_vertices=plan.pattern.n):
            for block in iter_frontier_blocks(
                graph,
                plan.core_plan,
                start_vertices=start_vertices,
                max_rows=cfg.max_frontier_rows,
                stats=fstats,
            ):
                matches += len(block)
                if plan.q == 0:
                    # no anchored fringes: every core embedding contributes 1
                    sigma += len(block)
                    continue
                t0 = time.perf_counter()
                for s in range(0, len(block), cfg.batch_size):
                    chunk = block[s : s + cfg.batch_size]
                    with obs.span("venn_fc_batch", matches=len(chunk)):
                        venns = venn_batch(graph, chunk[:, positions], chunk)
                        if registry is not None:
                            registry.histogram("repro_batch_matches").observe(len(chunk))
                            registry.histogram("repro_venn_set_size").observe_many(
                                venns.sum(axis=1).tolist()
                            )
                        sigma += poly.evaluate_batch(venns)
                    batches += 1
                venn_fc_s += time.perf_counter() - t0
        elapsed = time.perf_counter() - t_run
        if registry is not None:
            registry.counter("repro_core_matches_total").inc(matches)
            registry.counter("repro_batches_flushed_total").inc(batches)
            registry.counter("repro_venn_fc_seconds_total").inc(venn_fc_s)
            registry.counter("repro_frontier_rows_total").inc(fstats.rows)
            if elapsed > 0:
                registry.gauge("repro_frontier_rows_per_second").set(
                    fstats.rows / elapsed
                )
        return PartialSum(sigma=sigma, matches=matches, venn_fc_s=venn_fc_s, batches=batches)


# ----------------------------------------------------------------------
# multiprocess execution
# ----------------------------------------------------------------------
# fork-shared state (set in the parent immediately before the pool starts,
# cleared in a finally). Forked children see it copy-on-write; nothing is
# ever pickled through the pool besides chunk indices and PartialSums.
# _SHARED_LOCK serializes populate -> fork -> clear: two threads counting
# concurrently (the serve executor path) must not interleave, or one
# thread's children fork with the other thread's plan/graph.
_SHARED: dict = {}
_SHARED_LOCK = threading.Lock()


def _worker_run(chunk_ids: Sequence[int]) -> PartialSum:
    plan: CountingPlan = _SHARED["plan"]
    graph: CSRGraph = _SHARED["graph"]
    chunks = _SHARED["chunks"]
    inner: Backend = _SHARED["inner"]
    # When the forked parent had observability active, record this job's
    # metrics into a fresh worker-local registry (the parent's registry
    # is a copy-on-write copy — writes there would be lost) and ship the
    # snapshot back as the job's delta for merge-at-reduction.
    parent = obs.current()
    local = (
        obs.Observer(trace=False)
        if parent is not None and parent.metrics is not None
        else None
    )
    out = PartialSum()
    t0 = time.perf_counter()
    if local is not None:
        with local:
            for ci in chunk_ids:
                out += inner.run(plan, graph, start_vertices=chunks[ci])
    else:
        for ci in chunk_ids:
            out += inner.run(plan, graph, start_vertices=chunks[ci])
    elapsed = time.perf_counter() - t0
    delta = WorkerDelta(
        pid=os.getpid(),
        chunks=len(chunk_ids),
        matches=out.matches,
        venn_fc_s=out.venn_fc_s,
        batches=out.batches,
        elapsed_s=elapsed,
        metrics=local.metrics.snapshot() if local is not None else None,
    )
    return replace(out, workers=(delta,))


class MultiprocessBackend:
    """Fork-pool distribution of start-vertex chunks over an inner backend.

    ``schedule`` picks the work-distribution strategy (§3.6): ``static``
    contiguous ranges, ``strided`` interleaving, or ``dynamic`` fixed-size
    chunks served from the pool's queue. With one worker (or one chunk)
    the pool is bypassed entirely and the inner backend runs in-process —
    without touching the fork-shared state.
    """

    name = "multiprocess"

    def __init__(
        self,
        num_workers: int,
        schedule: str = "dynamic",
        chunk_size: int = 256,
        inner: Backend | None = None,
    ):
        self.num_workers = num_workers
        self.schedule = schedule
        self.chunk_size = chunk_size
        self.inner = inner

    def _inner_for(self, plan: CountingPlan) -> Backend:
        if self.inner is not None:
            return self.inner
        return select_backend(plan.config)

    def run(
        self,
        plan: CountingPlan,
        graph: CSRGraph,
        start_vertices: Sequence[int] | None = None,
    ) -> PartialSum:
        # deferred: importing repro.parallel at module scope would cycle
        # back through repro.core.engine during package initialization
        from ..parallel.schedule import make_chunks

        inner = self._inner_for(plan)
        if start_vertices is not None:
            # a pre-sliced call (e.g. nested distribution) runs in-process
            return inner.run(plan, graph, start_vertices=start_vertices)
        chunks = make_chunks(graph.num_vertices, self.num_workers, self.schedule, self.chunk_size)
        if self.num_workers <= 1 or len(chunks) <= 1:
            return inner.run(plan, graph, start_vertices=None)
        # the lock spans populate -> fork -> clear: concurrent counts from
        # other threads wait here instead of clobbering the shared dict
        with _SHARED_LOCK:
            _SHARED["plan"] = plan
            _SHARED["graph"] = graph
            _SHARED["chunks"] = chunks
            _SHARED["inner"] = inner
            try:
                ctx = mp.get_context("fork")
                with ctx.Pool(processes=self.num_workers) as pool:
                    # dynamic: many chunks round-robined by the pool's own
                    # work queue; static/strided: one chunk list per worker
                    jobs = [[i] for i in range(len(chunks))]
                    results = pool.map(_worker_run, jobs)
            finally:
                _SHARED.clear()
        total = sum(results, PartialSum())
        record_worker_metrics(total)
        return total


def record_worker_metrics(total: PartialSum) -> None:
    """Merge worker deltas into the active registry at reduction.

    Per-pid busy time becomes a labeled gauge series (the Prometheus
    per-worker view) plus a busy-time histogram, and the makespan /
    mean-busy ratio becomes the load-imbalance gauge the paper's
    dynamic-schedule discussion is about (1.0 = perfectly balanced).
    Shared by the fork pool and the persistent pool — both reduce
    :class:`WorkerDelta` records off ``PartialSum.workers``.
    """
    registry = obs.active_metrics()
    if registry is None or not total.workers:
        return
    busy: dict[int, float] = {}
    for w in total.workers:
        busy[w.pid] = busy.get(w.pid, 0.0) + w.elapsed_s
        if w.metrics:
            registry.merge(w.metrics)
    for pid, seconds in sorted(busy.items()):
        registry.gauge("repro_worker_busy_seconds", worker=str(pid)).set(seconds)
        registry.histogram("repro_worker_elapsed_seconds").observe(seconds)
    mean = sum(busy.values()) / len(busy)
    imbalance = max(busy.values()) / mean if mean > 0 else 1.0
    registry.gauge("repro_worker_load_imbalance").set(imbalance)
    registry.gauge("repro_workers").set(len(busy))


class PoolBackend:
    """Persistent spawn-pool distribution over an inner backend.

    The warm-path sibling of :class:`MultiprocessBackend`: instead of
    forking a pool per call, work goes to the process-wide
    :class:`repro.parallel.workerpool.WorkerPool` — spawn-context
    workers started once, the CSR graph resident in named shared memory
    (zero-copy via :mod:`repro.parallel.shm`), start-vertex chunks
    served by split-half work stealing. Selected with
    ``ParallelConfig(pool="persistent")``. Like the fork pool, one
    worker (or a pre-sliced call) runs the inner backend in-process.
    """

    name = "pool"

    def __init__(
        self,
        num_workers: int,
        schedule: str = "dynamic",
        chunk_size: int = 256,
        inner: Backend | None = None,
        mp_context: str = "spawn",
    ):
        self.num_workers = num_workers
        self.schedule = schedule
        self.chunk_size = chunk_size
        self.inner = inner
        self.mp_context = mp_context

    def run(
        self,
        plan: CountingPlan,
        graph: CSRGraph,
        start_vertices: Sequence[int] | None = None,
    ) -> PartialSum:
        # deferred: repro.parallel imports cycle back through core.engine
        from ..parallel.workerpool import get_default_pool

        inner = self.inner if self.inner is not None else select_backend(plan.config)
        if start_vertices is not None:
            return inner.run(plan, graph, start_vertices=start_vertices)
        if self.num_workers <= 1 or graph.num_vertices <= self.chunk_size:
            return inner.run(plan, graph, start_vertices=None)
        pool = get_default_pool(self.num_workers, mp_context=self.mp_context)
        return pool.count(
            plan, graph, schedule=self.schedule, chunk_size=self.chunk_size, inner=inner
        )


def select_backend(config, parallel=None, engine: str = "auto") -> Backend:
    """Map an EngineConfig (+ optional ParallelConfig + engine) to a backend.

    ``engine="frontier"`` forces the vectorized frontier matcher; with a
    multi-worker ``parallel`` it becomes the pool's inner backend (each
    worker runs the frontier over its start-vertex slice). The chosen
    inner backend is always forwarded to the pool backend — an explicit
    non-frontier inner is honored, not silently dropped.
    ``parallel.pool`` picks the substrate: ``"fork"`` (per-call fork
    pool) or ``"persistent"`` (resident spawn pool + shared memory).
    """
    if engine == "frontier":
        inner: Backend = FrontierBackend()
    else:
        inner = BatchBackend() if config.fc_impl == "poly" else SerialBackend()
    if parallel is not None and getattr(parallel, "num_workers", 1) > 1:
        if getattr(parallel, "pool", "fork") == "persistent":
            return PoolBackend(
                num_workers=parallel.num_workers,
                schedule=parallel.schedule,
                chunk_size=parallel.chunk_size,
                inner=inner,
                mp_context=getattr(parallel, "mp_context", "spawn"),
            )
        return MultiprocessBackend(
            num_workers=parallel.num_workers,
            schedule=parallel.schedule,
            chunk_size=parallel.chunk_size,
            inner=inner,
        )
    return inner
