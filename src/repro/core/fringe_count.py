"""The fringe-counting function ``fc`` (paper Listing 5).

Given the Venn diagram of a matched core, ``fc`` computes the number of
ways to choose all fringe vertices: for each fringe type it sums over
every Venn region covering the type's anchor set, drawing ``i`` fringes
from the region (``nCk(region, i)`` ways), decrementing the region, and
recursing. Region iteration uses the paper's bitset trick
``idx = (idx + 1) | anch`` which enumerates exactly the supersets of the
anchor bitset in increasing order.

Two implementations with identical semantics:

* :func:`fc_recursive` — a line-for-line port of Listing 5 (clear, used as
  the reference);
* :func:`fc_iterative` — an explicit-stack version mirroring what the CUDA
  code must do because GPU threads have tiny stacks (§3.4).

All of Listing 5's optimizations are present: early exit when a type is
exhausted (line 6), zero-return when the last region is too small (line 9),
and the ``min(rem, vc)`` summation bound (line 16).
"""

from __future__ import annotations

from typing import Sequence

from .binomial import nCk

__all__ = ["fc_recursive", "fc_iterative", "count_fringe_choices"]


def fc_recursive(venn: list[int], anch: Sequence[int], k: Sequence[int], q: int) -> int:
    """Number of ways to place all fringes, reference recursion.

    Parameters mirror the paper: ``venn`` is the mutable 2^q array of
    disjoint region sizes (entry 0 unused), ``anch[t]``/``k[t]`` the anchor
    bitset and fringe count of type ``t``, ``q`` the anchored-vertex count.
    ``venn`` is restored before returning.
    """
    s = len(anch)
    if s == 0:
        return 1
    last = (1 << q) - 1

    def fc(pos: int, rem: int, idx: int) -> int:
        if pos == s:
            return 1  # end of recursion
        if rem == 0:  # next fringe type
            nxt = pos + 1
            return fc(nxt, k[nxt] if nxt < s else 0, anch[nxt] if nxt < s else 0)
        vc = venn[idx]
        if idx == last:  # last entry of the array
            if rem > vc:
                return 0  # no solution
            venn[idx] -= rem
            nxt = pos + 1
            cnt = nCk(vc, rem) * fc(nxt, k[nxt] if nxt < s else 0, anch[nxt] if nxt < s else 0)
            venn[idx] += rem
            return cnt
        cnt = 0
        top = min(rem, vc)
        for i in range(top + 1):  # summation loop
            venn[idx] -= i
            cnt += nCk(vc, i) * fc(pos, rem - i, (idx + 1) | anch[pos])
            venn[idx] += i
        return cnt

    return fc(0, k[0], anch[0])


def fc_iterative(venn: list[int], anch: Sequence[int], k: Sequence[int], q: int) -> int:
    """Explicit-stack fc, the shape a GPU thread runs (no recursion, §3.4).

    Two frame kinds replace the two recursive call sites of Listing 5:

    * a SUM frame ``[pos, rem, idx, i, top, partial, vc]`` holds the
      summation loop state over draws ``i = 0..top`` from region ``idx``;
    * a LAST frame ``(idx, rem, coeff)`` records the no-summation shortcut
      for the final Venn region, multiplying the child's value by
      ``nCk(vc, rem)`` on the way back up.

    Returns the same value as :func:`fc_recursive`.
    """
    s = len(anch)
    if s == 0:
        return 1
    last = (1 << q) - 1
    stack: list = []
    pos, rem, idx = 0, k[0], anch[0]
    descending = True
    value = 0

    while True:
        if descending:
            # resolve the pending call (pos, rem, idx) down to a leaf value
            while True:
                if pos == s:
                    value = 1
                    break
                if rem == 0:  # next fringe type
                    pos += 1
                    if pos == s:
                        value = 1
                        break
                    rem, idx = k[pos], anch[pos]
                    continue
                vc = venn[idx]
                if idx == last:  # last Venn region: no summation needed
                    if rem > vc:
                        value = 0
                        break
                    venn[idx] -= rem
                    stack.append(("LAST", idx, rem, nCk(vc, rem)))
                    pos += 1
                    if pos == s:
                        value = 1
                        break
                    rem, idx = k[pos], anch[pos]
                    continue
                top = min(rem, vc)
                # draw i = 0 first: venn unchanged, recurse on the next region
                stack.append(["SUM", pos, rem, idx, 0, top, 0, vc])
                idx = (idx + 1) | anch[pos]
            descending = False
        else:
            if not stack:
                return value
            frame = stack[-1]
            if frame[0] == "LAST":
                _, idx_, rem_, coeff = frame
                venn[idx_] += rem_
                value = coeff * value
                stack.pop()
                continue
            _, pos_, rem_, idx_, i, top, partial, vc = frame
            partial += nCk(vc, i) * value
            venn[idx_] += i  # undo draw i
            if i == top:
                value = partial
                stack.pop()
                continue
            i += 1
            frame[4] = i
            frame[6] = partial
            venn[idx_] -= i  # apply draw i
            pos, rem, idx = pos_, rem_ - i, (idx_ + 1) | anch[pos_]
            descending = True


def count_fringe_choices(
    venn: Sequence[int], anch: Sequence[int], k: Sequence[int], q: int, *, impl: str = "recursive"
) -> int:
    """Public wrapper: copies ``venn`` so callers keep theirs immutable."""
    work = list(venn)
    if impl == "recursive":
        return fc_recursive(work, anch, k, q)
    if impl == "iterative":
        return fc_iterative(work, anch, k, q)
    raise ValueError(f"unknown fc impl {impl!r}")
