"""Specialized counting engines for small cores (paper §3.4).

The paper invokes dedicated code for patterns whose core has one, two, or
three vertices:

* 1 vertex  — the k-star formula ``Σ_v C(d_v, k)`` evaluated on the degree
  *histogram* (exact big-int arithmetic over unique degrees only);
* 2 vertices — the closed-form §3.1 double summation, vectorized with
  NumPy over every edge at once (the data-parallel formulation the CUDA
  kernel uses); per-edge values that could exceed float64's exact-integer
  range are recomputed with Python big ints;
* 3 vertices — dedicated wedge/triangle instance enumeration with one
  shared Venn diagram per instance and an fc evaluation per role
  assignment.

Each engine divides by the same structural normalizer as the general
engine: the identical sum evaluated on the pattern itself.
"""

from __future__ import annotations

import math
import time
from typing import Callable

import numpy as np

from ..graph.csr import CSRGraph
from ..patterns.decompose import Decomposition
from .binomial import nCk, nck_array
from .engine import CountResult
from .plan import exact_divide

__all__ = ["dispatch", "VertexCoreEngine", "EdgeCoreEngine", "ThreeCoreEngine", "common_neighbor_counts"]

_EXACT_LIMIT = float(1 << 52)  # above this, float64 loses integer exactness


def dispatch(decomp: Decomposition) -> Callable[[CSRGraph], CountResult] | None:
    """Return a specialized engine for ``decomp``, or None if only the
    general engine applies."""
    p = decomp.num_core
    if p == 1:
        return VertexCoreEngine(decomp)
    if p == 2:
        return EdgeCoreEngine(decomp)
    if p == 3:
        return ThreeCoreEngine(decomp)
    return None


# ----------------------------------------------------------------------
# 1-vertex core: k-stars
# ----------------------------------------------------------------------
class VertexCoreEngine:
    """``count = Σ_v C(d_v, k) / denom`` via the degree histogram."""

    name = "fringe-specialized(vertex-core)"

    def __init__(self, decomp: Decomposition):
        if decomp.num_core != 1:
            raise ValueError("VertexCoreEngine needs a 1-vertex core")
        if decomp.num_fringe_types > 1:
            raise AssertionError("1-vertex core can only carry one fringe type")
        self.decomp = decomp
        self.k = decomp.fringe_types[0].count if decomp.fringe_types else 0
        self.denominator = self._sum_over(decomp.pattern.degrees())

    def _sum_over(self, degrees) -> int:
        hist = np.bincount(np.asarray(degrees, dtype=np.int64))
        return sum(
            int(cnt) * math.comb(d, self.k) for d, cnt in enumerate(hist.tolist()) if cnt
        )

    def __call__(self, graph: CSRGraph) -> CountResult:
        start = time.perf_counter()
        total = self._sum_over(graph.degrees)
        value = exact_divide(total, self.denominator, "k-star count")
        matches = int(np.count_nonzero(graph.degrees >= self.k))
        return CountResult(
            count=value,
            pattern=self.decomp.pattern,
            core_matches=matches,
            elapsed_s=time.perf_counter() - start,
            engine=self.name,
            decomposition=self.decomp,
        )


# ----------------------------------------------------------------------
# 2-vertex core: §3.1 closed form over all edges
# ----------------------------------------------------------------------
class EdgeCoreEngine:
    """Vectorized §3.1 formula.

    With ``a`` tails on core vertex 0, ``b`` tails on core vertex 1, and
    ``m`` wedge fringes, a matched ordered edge (u, v) contributes

    ``F = Σ_i C(n_u, a−i) C(n_uv, i) Σ_j C(n_v, b−j) C(n_uv−i, j)
            C(n_uv−i−j, m)``

    where ``n_u = d_u − 1 − c``, ``n_v = d_v − 1 − c``, ``n_uv = c`` and
    ``c`` is the number of common neighbours of u and v.
    """

    name = "fringe-specialized(edge-core)"

    def __init__(self, decomp: Decomposition):
        if decomp.num_core != 2:
            raise ValueError("EdgeCoreEngine needs a 2-vertex core")
        if not decomp.core_pattern.has_edge(0, 1):
            raise ValueError("2-vertex core must be connected (an edge)")
        self.decomp = decomp
        deco = decomp.decoration()
        self.a = deco.get(frozenset({0}), 0)
        self.b = deco.get(frozenset({1}), 0)
        self.m = deco.get(frozenset({0, 1}), 0)
        self.denominator = self._pattern_denominator()

    # -- scalar exact evaluation --------------------------------------
    def _f_exact(self, nu: int, nv: int, c: int) -> int:
        a, b, m = self.a, self.b, self.m
        total = 0
        for i in range(a + 1):
            left = nCk(nu, a - i) * nCk(c, i)
            if left == 0:
                continue
            inner = 0
            for j in range(b + 1):
                inner += nCk(nv, b - j) * nCk(c - i, j) * nCk(c - i - j, m)
            total += left * inner
        return total

    def _pattern_denominator(self) -> int:
        """inj(P, P) / Π k_t! — evaluate the same sum on the pattern."""
        pat_graph = CSRGraph.from_edges(self.decomp.pattern.edges(), num_vertices=self.decomp.pattern.n)
        edges = pat_graph.edge_array()
        c = common_neighbor_counts(pat_graph, edges)
        deg = pat_graph.degrees
        total = 0
        for (u, v), cc in zip(edges.tolist(), c.tolist()):
            nu = int(deg[u]) - 1 - cc
            nv = int(deg[v]) - 1 - cc
            total += self._f_exact(nu, nv, cc) + self._f_exact(nv, nu, cc)
        if total <= 0:
            raise AssertionError("pattern must embed in itself")
        return total

    # -- vectorized evaluation ----------------------------------------
    def _f_vector(self, nu: np.ndarray, nv: np.ndarray, c: np.ndarray) -> np.ndarray:
        a, b, m = self.a, self.b, self.m
        total = np.zeros(len(nu), dtype=np.float64)
        for i in range(a + 1):
            left = nck_array(nu, a - i) * nck_array(c, i)
            inner = np.zeros_like(total)
            for j in range(b + 1):
                inner += nck_array(nv, b - j) * nck_array(c - i, j) * nck_array(c - i - j, m)
            total += left * inner
        return total

    def __call__(self, graph: CSRGraph) -> CountResult:
        start = time.perf_counter()
        edges = graph.edge_array()
        deg = graph.degrees
        c = common_neighbor_counts(graph, edges)
        nu = deg[edges[:, 0]] - 1 - c
        nv = deg[edges[:, 1]] - 1 - c
        with np.errstate(over="ignore", invalid="ignore"):
            fwd = self._f_vector(nu, nv, c)
            rev = self._f_vector(nv, nu, c)
            per_edge = fwd + rev
        # negated comparison so NaN rows (inf * 0 on extreme hubs) fall
        # into the exact path instead of silently passing as "safe"
        risky = ~(per_edge < _EXACT_LIMIT)
        total = int(np.rint(per_edge[~risky]).astype(np.int64).sum(dtype=np.object_))
        if np.any(risky):
            for idx in np.nonzero(risky)[0].tolist():
                cu, cv, cc = int(nu[idx]), int(nv[idx]), int(c[idx])
                total += self._f_exact(cu, cv, cc) + self._f_exact(cv, cu, cc)
        value = exact_divide(total, self.denominator, "edge-core count")
        return CountResult(
            count=value,
            pattern=self.decomp.pattern,
            core_matches=2 * len(edges),
            elapsed_s=time.perf_counter() - start,
            engine=self.name,
            decomposition=self.decomp,
        )


def common_neighbor_counts(graph: CSRGraph, edges: np.ndarray) -> np.ndarray:
    """``c[e]`` = number of common neighbours of the endpoints of edge e.

    Uses a sparse A·A product when the graph is small enough for the
    intermediate to be cheap, else per-edge sorted-list intersection.
    """
    n = graph.num_vertices
    if len(edges) == 0:
        return np.zeros(0, dtype=np.int64)
    if n <= 20_000:
        from scipy.sparse import csr_matrix

        a = csr_matrix(
            (np.ones(len(graph.colidx), dtype=np.int64), graph.colidx, graph.rowptr),
            shape=(n, n),
        )
        sq = a @ a
        return np.asarray(sq[edges[:, 0], edges[:, 1]]).ravel().astype(np.int64)
    out = np.empty(len(edges), dtype=np.int64)
    for i, (u, v) in enumerate(edges.tolist()):
        au, av = graph.neighbors(u), graph.neighbors(v)
        if len(au) > len(av):
            au, av = av, au
        pos = np.searchsorted(av, au)
        pos = np.minimum(pos, len(av) - 1)
        out[i] = int(np.count_nonzero(av[pos] == au))
    return out


# ----------------------------------------------------------------------
# 3-vertex cores: wedge and triangle (§3.2)
# ----------------------------------------------------------------------
class ThreeCoreEngine:
    """Instance-based engine for wedge and triangle cores.

    Enumerates each *unordered* core instance once, computes the 7-region
    Venn diagram of the three matched vertices once, then evaluates fc for
    every valid role assignment (6 for a triangle core, 2 per center
    choice for a wedge core). The sum over role assignments equals the
    ordered-embedding sum of the general engine, so the same structural
    normalizer applies.
    """

    name = "fringe-specialized(3-core)"

    def __init__(self, decomp: Decomposition):
        if decomp.num_core != 3:
            raise ValueError("ThreeCoreEngine needs a 3-vertex core")
        self.decomp = decomp
        core = decomp.core_pattern
        ne = core.num_edges
        if ne == 3:
            self.core_kind = "triangle"
        elif ne == 2:
            self.core_kind = "wedge"
            self.center = next(c for c in range(3) if core.degree(c) == 2)
        else:
            raise ValueError("3-vertex core must be a wedge or a triangle")
        self.deco = decomp.decoration()  # core-local anchor set -> count
        # fringe-type tables per role assignment are precomputed lazily
        self._fc_tables: dict[tuple[int, int, int], tuple[tuple[int, ...], tuple[int, ...]]] = {}
        self.denominator, _ = self._sum_over_graph(
            CSRGraph.from_edges(decomp.pattern.edges(), num_vertices=decomp.pattern.n)
        )
        if self.denominator <= 0:
            raise AssertionError("pattern must embed in itself")

    # ------------------------------------------------------------------
    def _assignments(self) -> list[tuple[int, int, int]]:
        """Role assignments: position t holds the core-local id mapped to
        instance slot t. Triangle: all 6 permutations. Wedge: the center
        slot (slot 1) must hold the core's center."""
        import itertools

        if self.core_kind == "triangle":
            return list(itertools.permutations(range(3)))
        ends = [c for c in range(3) if c != self.center]
        return [
            (ends[0], self.center, ends[1]),
            (ends[1], self.center, ends[0]),
        ]

    def _table_for(self, assignment: tuple[int, int, int]):
        """(anch, k) arrays for fc under a role assignment: bit s of the
        Venn index refers to instance slot s."""
        key = assignment
        tbl = self._fc_tables.get(key)
        if tbl is None:
            slot_of = {c: s for s, c in enumerate(assignment)}
            pairs = []
            for anchors, count in self.deco.items():
                bits = 0
                for c in anchors:
                    bits |= 1 << slot_of[c]
                pairs.append((bits, count))
            pairs.sort()
            tbl = (tuple(p[0] for p in pairs), tuple(p[1] for p in pairs))
            self._fc_tables[key] = tbl
        return tbl

    def _polynomials(self):
        """Unique (polynomial, multiplicity) pairs over role assignments.

        Role assignments related by a decoration-preserving core symmetry
        produce identical (anch, k) tables; deduplicating them evaluates
        each distinct polynomial once and scales by its multiplicity.
        """
        from .fringe_poly import compile_fringe_polynomial

        if not hasattr(self, "_polys"):
            groups: dict[tuple, int] = {}
            for asg in self._assignments():
                groups[self._table_for(asg)] = groups.get(self._table_for(asg), 0) + 1
            self._polys = [
                (compile_fringe_polynomial(anch, k, 3), mult)
                for (anch, k), mult in groups.items()
            ]
        return self._polys

    def _sum_over_graph(self, graph: CSRGraph, batch: int = 8192) -> tuple[int, int]:
        from .venn import venn_batch

        polys = self._polynomials()
        total = 0
        instances = 0
        if self.core_kind == "triangle":
            chunks = _triangle_batches(graph, batch)
        else:
            chunks = _wedge_batches(graph, batch)
        for arr in chunks:
            instances += len(arr)
            venns = venn_batch(graph, arr, arr)
            for poly, mult in polys:
                total += mult * poly.evaluate_batch(venns)
        return total, instances

    def __call__(self, graph: CSRGraph) -> CountResult:
        start = time.perf_counter()
        total, instances = self._sum_over_graph(graph)
        value = exact_divide(total, self.denominator, "3-core count")
        return CountResult(
            count=value,
            pattern=self.decomp.pattern,
            core_matches=instances,
            elapsed_s=time.perf_counter() - start,
            engine=self.name,
            decomposition=self.decomp,
        )


def _triangle_batches(graph: CSRGraph, batch: int):
    """Yield (B, 3) arrays of triangles (u < v < w), each triangle once."""
    rowptr, colidx = graph.rowptr, graph.colidx
    buf: list[np.ndarray] = []
    filled = 0
    for u in range(graph.num_vertices):
        adj_u = colidx[rowptr[u] : rowptr[u + 1]]
        fwd_u = adj_u[adj_u > u]
        for v in fwd_u.tolist():
            adj_v = colidx[rowptr[v] : rowptr[v + 1]]
            fwd_v = adj_v[adj_v > v]
            if len(fwd_v) == 0:
                continue
            ws = fwd_u[np.isin(fwd_u, fwd_v, assume_unique=True)]
            ws = ws[ws > v]
            if len(ws) == 0:
                continue
            rows = np.empty((len(ws), 3), dtype=np.int64)
            rows[:, 0] = u
            rows[:, 1] = v
            rows[:, 2] = ws
            buf.append(rows)
            filled += len(ws)
            if filled >= batch:
                yield np.concatenate(buf)
                buf, filled = [], 0
    if buf:
        yield np.concatenate(buf)


def _wedge_batches(graph: CSRGraph, batch: int):
    """Yield (B, 3) arrays of wedges (x, center, y) with x < y, each once.

    The endpoints may or may not be adjacent in the graph: edge-induced
    embeddings only require the two core edges to be present.
    """
    rowptr, colidx = graph.rowptr, graph.colidx
    buf: list[np.ndarray] = []
    filled = 0
    for center in range(graph.num_vertices):
        adj = colidx[rowptr[center] : rowptr[center + 1]]
        d = len(adj)
        if d < 2:
            continue
        ii, jj = np.triu_indices(d, 1)
        # hubs produce C(d, 2) pairs — slice them so no single buffer
        # holds more than ~2 batches of instances
        step = max(batch, 1)
        for s0 in range(0, len(ii), step):
            s1 = min(s0 + step, len(ii))
            rows = np.empty((s1 - s0, 3), dtype=np.int64)
            rows[:, 0] = adj[ii[s0:s1]]
            rows[:, 1] = center
            rows[:, 2] = adj[jj[s0:s1]]
            buf.append(rows)
            filled += s1 - s0
            if filled >= batch:
                yield np.concatenate(buf)
                buf, filled = [], 0
    if buf:
        yield np.concatenate(buf)
