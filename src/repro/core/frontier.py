"""Vectorized frontier-at-a-time core matcher (paper §3.6, warp model).

The stack matcher (:mod:`repro.core.matcher`) extends one partial
embedding at a time from a Python generator — every candidate test is an
interpreter round trip. The paper's GPU kernel instead advances
*thousands* of partial embeddings in lockstep (Listing 7: one warp per
embedding, one level per step). This module is the CPU analogue of that
execution model: the partial-embedding frontier is a 2-D NumPy array
with one row per embedding and one column per matched position, and each
step extends the whole frontier by one matching-order level with bulk
array kernels:

* **candidate generation** — one CSR adjacency gather over the pivot
  column (``np.repeat`` + offset arithmetic, the same indexing scheme
  :func:`repro.core.venn.venn_batch` uses);
* **degree / symmetry / injectivity filtering** — boolean masks:
  full-pattern degree lower bounds, the ``match[j] < v`` order
  constraints from symmetry breaking, and row-wise ``!=`` compares
  against every earlier column;
* **back-edge checking** — a vectorized binary search
  (:func:`has_edges_bulk`) that resolves all (matched vertex, candidate)
  adjacency membership queries of a level in ``O(log max_degree)``
  synchronized bisection rounds over ``colidx``.

Memory is bounded: before expanding, a frontier whose candidate volume
would exceed ``max_rows`` is *split* into contiguous row blocks that are
carried independently through the remaining levels (depth-first over
blocks), so dense graphs degrade into more block iterations instead of
one giant allocation. Completed embeddings stream out as blocks, which
the :class:`repro.core.backends.FrontierBackend` feeds straight into
``venn_batch`` + the compiled fringe polynomial — the per-embedding
Python loop disappears from the whole pipeline.

Observability: each expansion emits a ``frontier.level`` span and a
``repro_frontier_width`` histogram sample; splits count into
``repro_frontier_spills_total``; the backend reports aggregate
``repro_frontier_rows_total`` and a ``repro_frontier_rows_per_second``
throughput gauge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from .. import obs
from ..graph.csr import CSRGraph
from .matcher import CorePlan

__all__ = [
    "DEFAULT_MAX_FRONTIER_ROWS",
    "FrontierStats",
    "has_edges_bulk",
    "iter_frontier_blocks",
    "frontier_match_matrix",
]

# Default cap on the candidate volume of one expansion step (rows). At
# int64 this bounds the transient candidate arrays to ~8 MB per column;
# EngineConfig.max_frontier_rows overrides it per call.
DEFAULT_MAX_FRONTIER_ROWS = 1 << 20


@dataclass
class FrontierStats:
    """Aggregate execution statistics of one frontier traversal.

    ``rows`` sums the frontier widths produced by every expansion step
    (the data volume the matcher pushed through its kernels — the
    numerator of the rows/sec throughput gauge); ``peak_width`` is the
    widest single frontier block seen; ``spills`` counts block splits
    forced by ``max_rows``.
    """

    rows: int = 0
    peak_width: int = 0
    spills: int = 0


def has_edges_bulk(
    rowptr: np.ndarray, colidx: np.ndarray, u: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """Element-wise edge membership: does ``adj(u[i])`` contain ``v[i]``?

    All queries advance together through a synchronized binary search —
    ``O(log max_degree)`` vectorized bisection rounds over the shared
    ``colidx`` array, the CPU shape of the warp-cooperative probes in
    the paper's Listing 7.
    """
    m = len(u)
    if m == 0 or len(colidx) == 0:
        return np.zeros(m, dtype=bool)
    lo = rowptr[u].copy()
    hi = rowptr[u + 1].copy()
    while True:
        active = lo < hi
        if not active.any():
            break
        mid = (lo + hi) >> 1
        midval = colidx[np.minimum(mid, len(colidx) - 1)]
        go_right = active & (midval < v)
        lo = np.where(go_right, mid + 1, lo)
        hi = np.where(active & ~go_right, mid, hi)
    found = lo < rowptr[u + 1]
    return found & (colidx[np.where(found, lo, 0)] == v)


def _expand_level(
    graph: CSRGraph, block: np.ndarray, level: int, plan: CorePlan
) -> np.ndarray:
    """Extend every partial embedding in ``block`` by matching position
    ``level``; returns the filtered ``(rows, level + 1)`` frontier."""
    rowptr, colidx, degrees = graph.rowptr, graph.colidx, graph.degrees
    piv = plan.pivot[level]
    pivots = block[:, piv]
    starts = rowptr[pivots]
    degs = rowptr[pivots + 1] - starts
    total = int(degs.sum())
    if total == 0:
        return np.empty((0, level + 1), dtype=np.int64)
    # bulk adjacency gather: candidate c of row r is colidx[starts[r] + o]
    parent = np.repeat(np.arange(len(block), dtype=np.int64), degs)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(degs) - degs, degs)
    cand = colidx[starts[parent] + offsets]

    keep = degrees[cand] >= plan.min_degree[level]
    # symmetry-breaking order constraints: match[j] < candidate
    lts = plan.less_than[level]
    for j in lts:
        keep &= block[parent, j] < cand
    # injectivity against every earlier position (strict < above already
    # implies != for the symmetry-constrained columns)
    lt_set = set(lts)
    for j in range(level):
        if j not in lt_set:
            keep &= block[parent, j] != cand
    parent, cand = parent[keep], cand[keep]
    # remaining back edges: progressive narrowing, cheapest survivors last
    for b in plan.back_edges[level]:
        if b == piv or len(cand) == 0:
            continue
        ok = has_edges_bulk(rowptr, colidx, block[parent, b], cand)
        parent, cand = parent[ok], cand[ok]

    out = np.empty((len(cand), level + 1), dtype=np.int64)
    out[:, :level] = block[parent]
    out[:, level] = cand
    return out


def _budget_spans(degs: np.ndarray, budget: int) -> Iterator[tuple[int, int]]:
    """Contiguous ``[start, end)`` row spans whose candidate volume
    (sum of ``degs``) stays within ``budget`` — at least one row each,
    so a single ultra-dense row can never wedge the traversal."""
    cum = np.cumsum(degs)
    start, base = 0, 0
    n = len(degs)
    while start < n:
        end = int(np.searchsorted(cum, base + budget, side="right"))
        if end <= start:
            end = start + 1
        yield start, end
        base = int(cum[end - 1])
        start = end


def _blocks(
    graph: CSRGraph,
    plan: CorePlan,
    block: np.ndarray,
    level: int,
    max_rows: int,
    stats: FrontierStats,
    registry,
) -> Iterator[np.ndarray]:
    """Carry one frontier block through levels ``level..p-1``, splitting
    whenever the next expansion would exceed ``max_rows`` candidates."""
    p = len(plan.order)
    while level < p:
        if len(block) == 0:
            return  # empty-frontier early exit: nothing downstream matches
        pivots = block[:, plan.pivot[level]]
        degs = graph.rowptr[pivots + 1] - graph.rowptr[pivots]
        if int(degs.sum()) > max_rows and len(block) > 1:
            stats.spills += 1
            if registry is not None:
                registry.counter("repro_frontier_spills_total").inc()
            for s, e in _budget_spans(degs, max_rows):
                yield from _blocks(
                    graph, plan, block[s:e], level, max_rows, stats, registry
                )
            return
        with obs.span("frontier.level", level=level, rows_in=len(block)):
            block = _expand_level(graph, block, level, plan)
        stats.rows += len(block)
        stats.peak_width = max(stats.peak_width, len(block))
        if registry is not None:
            registry.histogram("repro_frontier_width").observe(len(block))
        level += 1
    if len(block):
        yield block


def iter_frontier_blocks(
    graph: CSRGraph,
    plan: CorePlan,
    *,
    start_vertices: Sequence[int] | None = None,
    max_rows: int = DEFAULT_MAX_FRONTIER_ROWS,
    stats: FrontierStats | None = None,
) -> Iterator[np.ndarray]:
    """Stream completed core embeddings as ``(rows, p)`` int64 blocks.

    Row-for-row equivalent to collecting :func:`repro.core.matcher.
    match_cores` (same symmetry reduction, same matching-order column
    layout), but produced level-synchronously: row ``i`` of a block maps
    matching position ``j`` to graph vertex ``block[i, j]``.
    ``start_vertices`` restricts position-0 roots — the same
    work-distribution unit the parallel layers slice. ``max_rows``
    bounds the candidate volume of any single expansion; larger
    frontiers are split and traversed block-by-block (depth-first), so
    peak memory is ``O(max_rows · p)`` regardless of graph density.
    """
    if max_rows < 1:
        raise ValueError("max_rows must be positive")
    degrees = graph.degrees
    if start_vertices is None:
        roots = np.nonzero(degrees >= plan.min_degree[0])[0].astype(np.int64)
    else:
        sv = np.asarray(list(start_vertices), dtype=np.int64)
        roots = sv[degrees[sv] >= plan.min_degree[0]] if len(sv) else sv
    if len(roots) == 0:
        return
    if stats is None:
        stats = FrontierStats()
    registry = obs.active_metrics()
    frontier = roots.reshape(-1, 1)
    stats.rows += len(frontier)
    stats.peak_width = max(stats.peak_width, len(frontier))
    if registry is not None:
        registry.histogram("repro_frontier_width").observe(len(frontier))
    yield from _blocks(graph, plan, frontier, 1, max_rows, stats, registry)


def frontier_match_matrix(
    graph: CSRGraph,
    plan: CorePlan,
    *,
    start_vertices: Sequence[int] | None = None,
    max_rows: int = DEFAULT_MAX_FRONTIER_ROWS,
) -> np.ndarray:
    """All symmetry-reduced core embeddings as one ``(matches, p)``
    matrix (testing/debug helper; production callers stream blocks)."""
    blocks = list(
        iter_frontier_blocks(
            graph, plan, start_vertices=start_vertices, max_rows=max_rows
        )
    )
    if not blocks:
        return np.empty((0, len(plan.order)), dtype=np.int64)
    return np.concatenate(blocks, axis=0)
