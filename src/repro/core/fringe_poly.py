"""Compiled fringe polynomial: a closed form equivalent to fc.

``fc`` (Listing 5) evaluates, per matched core, a nest of summations whose
*shape* depends only on the pattern. Expanding the nest symbolically shows
the fringe-set count is a fixed polynomial in the Venn entries:

```
F(venn) = Σ_D  W_D · Π_r C(venn[r], D_r)
```

where ``D`` ranges over the pattern's feasible *draw vectors* (how many
fringe vertices are taken from each Venn region in total) and the integer
weight collects the multinomial interleavings of fringe types within each
region:

```
W_D = Σ_{d_{t,r} : Σ_r d_{t,r} = k_t, Σ_t d_{t,r} = D_r, d_{t,r} = 0
        unless region r covers type t's anchor set}
      Π_r  D_r! / Π_t d_{t,r}!
```

Compiling ``(D, W_D)`` once per pattern turns per-match fringe counting
into a short dot product — and, crucially, one that vectorizes across
*batches* of matches with NumPy (the role the CUDA kernel's per-thread fc
loop plays on a GPU). Equivalence with ``fc_recursive`` is property-tested.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .binomial import nCk

__all__ = ["FringePolynomial", "compile_fringe_polynomial"]

_EXACT_LIMIT = float(1 << 52)

def _first_primes_below(limit: int, count: int) -> tuple[int, ...]:
    out: list[int] = []
    p = limit - 1 if limit % 2 == 0 else limit - 2
    while len(out) < count and p > 2:
        if all(p % d for d in range(3, int(p**0.5) + 1, 2)):
            out.append(p)
        p -= 2
    return tuple(out)


# 30-bit primes for the residue-number-system path: residue products stay
# below 2^60 in int64, and 24 primes give ~2^720 of exact range.
_RNS_PRIMES: tuple[int, ...] = _first_primes_below(1 << 30, 24)


def _crt(residues: list[int], primes: list[int]) -> int:
    """Chinese-remainder reconstruction (all moduli coprime)."""
    total, modulus = 0, 1
    for r, p in zip(residues, primes):
        # solve total' ≡ total (mod modulus), total' ≡ r (mod p)
        inv = pow(modulus % p, -1, p)
        t = ((r - total) * inv) % p
        total += modulus * t
        modulus *= p
    return total


def _compositions(total: int, parts: int):
    """All ways to write ``total`` as an ordered sum of ``parts`` >= 0."""
    if parts == 1:
        yield (total,)
        return
    for first in range(total + 1):
        for rest in _compositions(total - first, parts - 1):
            yield (first, *rest)


@dataclass(frozen=True)
class FringePolynomial:
    """``F(venn) = Σ_i weights[i] · Π_j C(venn[regions[j]], draws[i, j])``.

    ``regions`` lists the Venn indices that ever receive a draw;
    ``draws`` is an ``(n_terms, n_regions)`` int array; ``weights`` holds
    exact integer coefficients (kept as a list of Python ints — they can
    exceed 64 bits for very fringe-heavy patterns).
    """

    q: int
    regions: tuple[int, ...]
    draws: np.ndarray
    weights: tuple[int, ...]
    max_draw: tuple[int, ...]  # per region column, max draw over terms

    # ------------------------------------------------------------------
    def evaluate(self, venn: Sequence[int]) -> int:
        """Exact scalar evaluation (big ints)."""
        total = 0
        for w, row in zip(self.weights, self.draws.tolist()):
            term = w
            for j, r in enumerate(self.regions):
                d = row[j]
                if d:
                    term *= nCk(venn[r], d)
                    if term == 0:
                        break
            total += term
        return total

    def evaluate_batch(self, venn_matrix: np.ndarray) -> int:
        """Σ over rows of F(venn_row), vectorized and **exact**.

        ``venn_matrix`` is ``(n_matches, 2^q)``. A float64 pass computes
        every row; rows whose value (and hence every intermediate — all
        terms are non-negative) stays below 2^52 are exact and summed
        directly. The remaining rows are re-evaluated in a residue number
        system — vectorized int64 arithmetic modulo several 30-bit primes,
        recombined by CRT. This keeps fringe-heavy patterns (whose counts
        dwarf 2^64) both exact and data-parallel, exactly the multi-word
        strategy GPU big-integer kernels use.
        """
        if len(venn_matrix) == 0:
            return 0
        # Identical Venn rows are common on skewed graphs (low-degree
        # matches repeat the same small profiles); evaluating each
        # distinct row once and weighting by multiplicity shrinks both
        # the float and the RNS passes.
        venn_matrix, counts = np.unique(venn_matrix, axis=0, return_counts=True)
        n = len(venn_matrix)
        per_row = self._per_row_float(venn_matrix)
        # a row is exact iff its weighted value < 2^52: terms are
        # non-negative, so every partial sum and factor is bounded by it
        weight_ok = all(0 <= w < _EXACT_LIMIT for w in self.weights)
        if weight_ok:
            safe = per_row * counts < _EXACT_LIMIT
        else:
            safe = np.zeros(n, dtype=bool)
        total = int(
            (np.rint(per_row[safe]).astype(np.int64) * counts[safe]).sum(dtype=np.object_)
        )
        if np.all(safe):
            return total
        # Bucket the risky rows by estimated magnitude so small-but-risky
        # rows pay for 2 primes, not for the worst row's 6+: the float
        # pass already gives a log2 estimate wherever it stayed finite.
        risky_idx = np.nonzero(~safe)[0]
        est = per_row[risky_idx] * counts[risky_idx]
        finite = np.isfinite(est) & (est > 0)
        log2_est = np.full(len(risky_idx), np.inf)
        log2_est[finite] = np.log2(est[finite])
        buckets: dict[int, list[int]] = {}
        for j, le in enumerate(log2_est):
            if math.isinf(le):
                buckets.setdefault(-1, []).append(j)  # needs the hard bound
            else:
                # +8 bits of slack for float error in the estimate
                primes_needed = max(2, int((le + 8) // 29) + 1)
                buckets.setdefault(primes_needed, []).append(j)
        for n_primes, local in sorted(buckets.items()):
            rows = venn_matrix[risky_idx[local]]
            cnts = counts[risky_idx[local]]
            if n_primes == -1:
                bound = self._total_log2_bound(rows) + math.log2(float(cnts.max()))
            else:
                # per-row values < 2^(29 n); the bucket *sum* needs the
                # extra log2(len) headroom
                bound = n_primes * 29.0 + math.log2(len(local))
            total += self._evaluate_batch_rns(rows, bound, cnts)
        return total

    # -- Horner-factorized evaluation -----------------------------------
    def horner_plan(self) -> list[tuple[int, int]]:
        """Shared-prefix evaluation plan over the lex-sorted terms.

        Entry ``(lcp, weight_index)`` says: keep the first ``lcp`` columns
        of the running prefix product, extend with the remaining columns
        of term ``weight_index``, then add ``weight · prefix`` to the
        accumulator. Because terms are sorted, consecutive terms share
        long prefixes and each shared factor is multiplied once — the
        classic multivariate Horner scheme.
        """
        plan: list[tuple[int, int]] = []
        prev: list[int] | None = None
        for t, row in enumerate(self.draws.tolist()):
            if prev is None:
                lcp = 0
            else:
                lcp = 0
                while lcp < len(row) and row[lcp] == prev[lcp]:
                    lcp += 1
            plan.append((lcp, t))
            prev = row
        return plan

    def per_row_float_horner(self, venn_matrix: np.ndarray) -> np.ndarray:
        """Float64 per-row values via the shared-prefix plan.

        Semantically identical to the flat pass; does fewer vector
        multiplies when terms share prefixes (ablation A7 measures it).
        """
        n = len(venn_matrix)
        if not self.regions:
            return np.full(n, float(sum(self.weights)))
        tables = self._float_tables(venn_matrix)
        n_regions = len(self.regions)
        ones = np.ones(n)
        # prefix[j] = product of the first j+1 column factors of the
        # current term (with d = 0 factors skipped as multiplies by one)
        prefix: list[np.ndarray] = [ones] * n_regions
        per_row = np.zeros(n)
        rows = self.draws.tolist()
        with np.errstate(over="ignore", invalid="ignore"):
            for lcp, t in self.horner_plan():
                row = rows[t]
                running = prefix[lcp - 1] if lcp > 0 else ones
                for j in range(lcp, n_regions):
                    d = row[j]
                    if d:
                        running = running * tables[j][d]
                    prefix[j] = running
                per_row += float(self.weights[t]) * running
        return per_row

    def _float_tables(self, venn_matrix: np.ndarray) -> list[np.ndarray]:
        n = len(venn_matrix)
        tables: list[np.ndarray] = []
        with np.errstate(over="ignore", invalid="ignore"):
            for j, r in enumerate(self.regions):
                col = venn_matrix[:, r].astype(np.float64)
                tbl = np.empty((self.max_draw[j] + 1, n))
                tbl[0] = 1.0
                for d in range(1, self.max_draw[j] + 1):
                    tbl[d] = tbl[d - 1] * (col - (d - 1)) / d
                for d in range(1, self.max_draw[j] + 1):
                    tbl[d] = np.where(col >= d, np.rint(tbl[d]), 0.0)
                tables.append(tbl)
        return tables

    # -- float64 fast path ---------------------------------------------
    def _per_row_float(self, venn_matrix: np.ndarray) -> np.ndarray:
        n = len(venn_matrix)
        if not self.regions:  # no fringe types: F = Σ weights (= 1)
            return np.full(n, float(sum(self.weights)))
        tables = self._float_tables(venn_matrix)
        with np.errstate(over="ignore", invalid="ignore"):
            per_row = np.zeros(n)
            for w, row in zip(self.weights, self.draws.tolist()):
                term = None
                for j, d in enumerate(row):
                    if d:
                        term = tables[j][d] if term is None else term * tables[j][d]
                contrib = float(w) if term is None else float(w) * term
                per_row += contrib
        return per_row

    # -- residue-number-system exact path ------------------------------
    def _evaluate_batch_rns(
        self, venn_matrix: np.ndarray, bound_log2: float, counts: np.ndarray | None = None
    ) -> int:
        residues: list[int] = []
        primes: list[int] = []
        acc_log2 = 0.0
        for p in _RNS_PRIMES:
            primes.append(p)
            residues.append(self._total_mod(venn_matrix, p, counts))
            acc_log2 += math.log2(p)
            if acc_log2 > bound_log2 + 2.0:
                break
        else:  # pragma: no cover - 24 primes cover ~10^217
            raise OverflowError("count exceeds the RNS prime pool capacity")
        return _crt(residues, primes)

    def _total_mod(self, venn_matrix: np.ndarray, p: int, counts: np.ndarray | None = None) -> int:
        n = len(venn_matrix)
        if not self.regions:
            mult = int(counts.sum()) if counts is not None else n
            return (sum(self.weights) * mult) % p
        tables: list[np.ndarray] = []
        for j, r in enumerate(self.regions):
            col = venn_matrix[:, r].astype(np.int64)
            tbl = np.empty((self.max_draw[j] + 1, n), dtype=np.int64)
            tbl[0] = 1
            for d in range(1, self.max_draw[j] + 1):
                inv_d = pow(d, -1, p)
                tbl[d] = (tbl[d - 1] * ((col - (d - 1)) % p)) % p
                tbl[d] = (tbl[d] * inv_d) % p
            for d in range(1, self.max_draw[j] + 1):
                tbl[d] = np.where(col >= d, tbl[d], 0)
            tables.append(tbl)
        per_row = np.zeros(n, dtype=np.int64)
        flush = 0
        for w, row in zip(self.weights, self.draws.tolist()):
            term = None
            for j, d in enumerate(row):
                if d:
                    term = tables[j][d] if term is None else (term * tables[j][d]) % p
            wp = w % p
            per_row += wp if term is None else (term * wp) % p
            flush += 1
            if flush >= 8:  # residues < 2^31: 8 additions stay under 2^34
                per_row %= p
                flush = 0
        per_row %= p
        if counts is not None:
            per_row = (per_row * (counts % p)) % p
        return int(per_row.sum(dtype=np.object_)) % p

    def _total_log2_bound(self, venn_matrix: np.ndarray) -> float:
        """Cheap upper bound on log2 of the batch total."""
        from scipy.special import gammaln

        n = len(venn_matrix)
        log2e = math.log2(math.e)
        # per-region, per-draw max log2 C(v, d) over the batch
        max_logs: list[np.ndarray] = []
        for j, r in enumerate(self.regions):
            col = venn_matrix[:, r].astype(np.float64)
            vmax = float(col.max(initial=0.0))
            logs = np.zeros(self.max_draw[j] + 1)
            for d in range(1, self.max_draw[j] + 1):
                if vmax >= d:
                    logs[d] = log2e * float(
                        gammaln(vmax + 1) - gammaln(d + 1) - gammaln(vmax - d + 1)
                    )
            max_logs.append(logs)
        worst_term = 0.0
        for w, row in zip(self.weights, self.draws):
            t = math.log2(w) if w > 0 else 0.0
            for j in range(len(self.regions)):
                d = int(row[j])
                if d:
                    t += float(max_logs[j][d])
            worst_term = max(worst_term, t)
        return worst_term + math.log2(max(len(self.weights), 1)) + math.log2(max(n, 1))

    @property
    def num_terms(self) -> int:
        return len(self.weights)


def compile_fringe_polynomial(
    anch: Sequence[int], k: Sequence[int], q: int
) -> FringePolynomial:
    """Expand the fc nest for ``(anch, k, q)`` into (draws, weights).

    For each fringe type ``t``, its draws may come from any Venn region
    whose bitset is a superset of ``anch[t]``. Enumerate per-type
    compositions, merge region totals, and accumulate the multinomial
    weight ``Π_r D_r! / Π_t d_{t,r}!``.
    """
    s = len(anch)
    if s == 0:
        empty = np.zeros((1, 0), dtype=np.int64)
        return FringePolynomial(q=q, regions=(), draws=empty, weights=(1,), max_draw=())

    full = (1 << q) - 1
    covering: list[list[int]] = []
    for t in range(s):
        regs = [r for r in range(1, full + 1) if (r & anch[t]) == anch[t]]
        covering.append(regs)

    region_set = sorted({r for regs in covering for r in regs})
    col_of = {r: j for j, r in enumerate(region_set)}
    n_regions = len(region_set)

    # Convolve one fringe type at a time over the running draw-vector
    # table. Adding d items of a new type to a region already holding D
    # multiplies the interleaving weight by C(D + d, d); telescoping these
    # factors yields exactly Π_r D_r! / Π_t d_{t,r}! at the end, without
    # ever materializing the cartesian product of per-type compositions.
    acc: dict[tuple[int, ...], int] = {(0,) * n_regions: 1}
    for t in range(s):
        comps = list(_compositions(k[t], len(covering[t])))
        cols = [col_of[r] for r in covering[t]]
        new: dict[tuple[int, ...], int] = {}
        for totals, w in acc.items():
            for comp in comps:
                d2 = list(totals)
                w2 = w
                for j, d in zip(cols, comp):
                    if d:
                        w2 *= math.comb(d2[j] + d, d)
                        d2[j] += d
                key = tuple(d2)
                new[key] = new.get(key, 0) + w2
        acc = new

    keys = sorted(acc)
    draws = np.asarray(keys, dtype=np.int64).reshape(len(keys), n_regions)
    weights = tuple(acc[kk] for kk in keys)
    max_draw = tuple(int(draws[:, j].max(initial=0)) for j in range(n_regions))
    return FringePolynomial(
        q=q, regions=tuple(region_set), draws=draws, weights=weights, max_draw=max_draw
    )
