"""Venn-diagram computation for matched cores (paper §3.4, §3.6).

Given a matched core and the ``q`` core vertices that appear in at least
one anchor set, the engine needs the sizes of the ``2^q − 1`` *disjoint*
regions of the Venn diagram of their external-neighbour sets:
``venn[S] = #{x : x not a matched core vertex, and x is adjacent to
exactly the anchors in S}`` for every non-empty ``S ⊆ {0..q-1}``.

The array layout matches the paper: index ``S`` is a q-bit bitset, bit
``i`` meaning the i-th anchor vertex; element 0 is unused.

Three interchangeable *per-match* implementations (selected with
``EngineConfig.venn_impl``, dispatched through :data:`VENN_IMPLS`):

* :func:`venn_hash` — reference, Python dict of neighbour→bitmask;
* :func:`venn_sorted` — NumPy sort-reduce over the concatenated adjacency
  lists (the data-parallel formulation a GPU kernel would use);
* :func:`venn_merge` — the paper's §3.6 scheme: for each anchor, binary
  search the adjacency lists of anchors *later in the stack* only, then
  computationally correct the counts ("about twice as fast as always
  checking all adjacency lists").

Plus one *batched* formulation, :func:`venn_batch`: a ``(B, q)`` matrix
of anchor rows in, a ``(B, 2^q)`` matrix of region counts out, computed
with a single gather + sort-reduce pass across the whole batch. It is
not part of :data:`VENN_IMPLS` (which holds the per-match paths); the
batch and frontier backends call it directly and pair it with the
compiled fringe polynomial (``fc_impl="poly"``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["venn_hash", "venn_sorted", "venn_merge", "venn_batch", "VENN_IMPLS"]


def venn_hash(
    graph: CSRGraph, anchors: Sequence[int], core: Sequence[int]
) -> list[int]:
    """Reference implementation via a neighbour→bitmask dictionary."""
    q = len(anchors)
    core_set = set(int(c) for c in core)
    mask_of: dict[int, int] = {}
    for i, a in enumerate(anchors):
        bit = 1 << i
        for x in graph.neighbors(a):
            x = int(x)
            if x not in core_set:
                mask_of[x] = mask_of.get(x, 0) | bit
    venn = [0] * (1 << q)
    for mask in mask_of.values():
        venn[mask] += 1
    return venn


def venn_sorted(
    graph: CSRGraph, anchors: Sequence[int], core: Sequence[int]
) -> list[int]:
    """Sort-reduce formulation: concatenate the q adjacency lists with
    per-list bit weights, group by neighbour id, OR the bits, histogram.

    This maps directly onto GPU segmented-sort + reduce-by-key primitives
    and is the fastest CPU path for high-degree anchors.
    """
    q = len(anchors)
    lists = [graph.neighbors(a) for a in anchors]
    vals = np.concatenate(lists)
    bits = np.concatenate(
        [np.full(len(lst), 1 << i, dtype=np.int64) for i, lst in enumerate(lists)]
    )
    order = np.argsort(vals, kind="stable")
    vals, bits = vals[order], bits[order]
    # OR the bit weights of equal neighbour ids (they are adjacent after sort)
    boundaries = np.empty(len(vals), dtype=bool)
    if len(vals):
        boundaries[0] = True
        np.not_equal(vals[1:], vals[:-1], out=boundaries[1:])
    uniq_vals = vals[boundaries]
    group_ids = np.cumsum(boundaries) - 1
    masks = np.zeros(len(uniq_vals), dtype=np.int64)
    np.bitwise_or.at(masks, group_ids, bits)
    # drop matched core vertices (all of them, not just anchors — §3.6)
    core_arr = np.asarray(sorted(set(int(c) for c in core)), dtype=np.int64)
    keep = ~np.isin(uniq_vals, core_arr, assume_unique=True)
    venn = np.bincount(masks[keep], minlength=1 << q)
    return venn.tolist()


def venn_merge(
    graph: CSRGraph, anchors: Sequence[int], core: Sequence[int]
) -> list[int]:
    """The paper's GPU scheme (§3.6), serialized.

    For each anchor ``i`` (stack order), classify every entry ``x`` of its
    adjacency list by binary-searching only the adjacency lists of anchors
    ``j > i``. This assigns ``x`` the bitmask ``(1 << i) | later_bits`` and
    would count ``x`` once per anchor it neighbours; the correction step
    keeps only the occurrence at the *first* anchor (no earlier bit set),
    which is exactly what restricting the search to later anchors gives us
    for free: ``x`` is counted at anchor ``i`` iff ``i`` is its first
    anchor. Hence one pass, no duplicate counting — the "computational
    correction" is that anchors earlier in the stack never re-test ``x``.
    """
    q = len(anchors)
    core_set = set(int(c) for c in core)
    partial = [0] * (1 << q)
    lists = [graph.neighbors(a) for a in anchors]
    for i in range(q):
        adj = lists[i]
        if len(adj) == 0:
            continue
        mask = np.full(len(adj), 1 << i, dtype=np.int64)
        for j in range(i + 1, q):  # later stack entries only
            mask |= _member(lists[j], adj).astype(np.int64) << j
        for x, m in zip(adj.tolist(), mask.tolist()):
            if x not in core_set:
                partial[m] += 1
    return _correct_partial(partial, q)


def _correct_partial(partial: list[int], q: int) -> list[int]:
    """Undo the overcount from searching only later anchors.

    A neighbour with true mask ``M`` was tallied once per anchor ``i ∈ M``,
    each time under the partial mask ``M`` with bits below ``i`` cleared.
    Processing masks by increasing lowest-set-bit lets us peel the
    duplicates: ``venn[m] = partial[m] − Σ venn[m | B]`` over non-empty
    ``B`` inside the bits below ``lowbit(m)``.
    """
    venn = [0] * (1 << q)
    masks = sorted(range(1, 1 << q), key=lambda m: (m & -m))
    for m in masks:
        low = m & -m
        below = low - 1  # bits strictly under the lowest set bit of m
        total = partial[m]
        # iterate non-empty subsets B of `below` (all disjoint from m)
        b = below
        while b:
            total -= venn[m | b]
            b = (b - 1) & below
        venn[m] = total
    return venn


def _member(sorted_list: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Vectorized binary-search membership of ``queries`` in ``sorted_list``."""
    if len(sorted_list) == 0:
        return np.zeros(len(queries), dtype=bool)
    pos = np.searchsorted(sorted_list, queries)
    pos_clipped = np.minimum(pos, len(sorted_list) - 1)
    return sorted_list[pos_clipped] == queries


def venn_batch(
    graph: CSRGraph, anchor_matrix: np.ndarray, core_matrix: np.ndarray
) -> np.ndarray:
    """Venn diagrams for a whole batch of matches in one sort-reduce pass.

    ``anchor_matrix`` is ``(B, q)`` — the anchor vertices of B matched
    cores; ``core_matrix`` is ``(B, p)`` — all matched core vertices (to
    exclude). Returns ``(B, 2^q)`` region sizes.

    Keys combine (match index, neighbour id) so one global sort groups
    every match's external neighbourhood at once — the CPU analogue of the
    warp-cooperative Venn population in §3.6, processing thousands of
    matches per NumPy kernel launch instead of one per Python iteration.
    """
    b, q = anchor_matrix.shape
    if b == 0:
        return np.zeros((0, 1 << q), dtype=np.int64)
    n = graph.num_vertices
    rowptr, colidx = graph.rowptr, graph.colidx

    degs = rowptr[anchor_matrix + 1] - rowptr[anchor_matrix]  # (B, q)
    total = int(degs.sum())
    keys = np.empty(total, dtype=np.int64)
    bits = np.empty(total, dtype=np.int64)
    pos = 0
    # gather adjacency lists column by column (one anchor role at a time)
    for j in range(q):
        starts = rowptr[anchor_matrix[:, j]]
        lens = degs[:, j]
        m = int(lens.sum())
        if m == 0:
            continue
        # index vector: for each match, starts[i] .. starts[i]+lens[i]
        reps = np.repeat(np.arange(b), lens)
        offsets = np.arange(m) - np.repeat(np.cumsum(lens) - lens, lens)
        idx = starts[reps] + offsets
        keys[pos : pos + m] = reps * n + colidx[idx]
        bits[pos : pos + m] = 1 << j
        pos += m
    keys, bits = keys[:pos], bits[:pos]
    order = np.argsort(keys, kind="stable")
    keys, bits = keys[order], bits[order]
    boundaries = np.empty(len(keys), dtype=bool)
    if len(keys):
        boundaries[0] = True
        np.not_equal(keys[1:], keys[:-1], out=boundaries[1:])
    uniq = keys[boundaries]
    group_ids = np.cumsum(boundaries) - 1
    masks = np.zeros(len(uniq), dtype=np.int64)
    np.bitwise_or.at(masks, group_ids, bits)
    match_of = uniq // n
    # exclude matched core vertices: look their keys up among uniq
    excl_keys = (np.arange(b, dtype=np.int64)[:, None] * n + core_matrix).ravel()
    loc = np.searchsorted(uniq, excl_keys)
    loc_c = np.minimum(loc, max(len(uniq) - 1, 0))
    hit = (len(uniq) > 0) & (uniq[loc_c] == excl_keys)
    keep = np.ones(len(uniq), dtype=bool)
    keep[loc_c[hit]] = False
    flat = match_of[keep] * (1 << q) + masks[keep]
    venn = np.bincount(flat, minlength=b << q).reshape(b, 1 << q)
    return venn


VENN_IMPLS = {
    "hash": venn_hash,
    "sorted": venn_sorted,
    "merge": venn_merge,
}
