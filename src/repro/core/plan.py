"""The Plan layer: frozen, picklable pattern-compilation artifacts.

Fringe-SGC's performance model rests on a strict split between
*pattern-side* work (done once per pattern, amortized over every graph
and every call) and *graph-side* work (done per input). This module owns
the pattern side. :func:`compile_pattern` bundles everything the
execution backends need into one immutable :class:`CountingPlan`:

* the core/fringe :class:`~repro.patterns.decompose.Decomposition`;
* the matcher's :class:`~repro.core.matcher.CorePlan` (matching order,
  degree filters, symmetry restrictions, group order);
* the ``(anch, k)`` anchor bitsets and the compiled
  :class:`~repro.core.fringe_poly.FringePolynomial`;
* the specialized-engine dispatch decision (paper §3.4's dedicated code
  for 1-/2-/3-vertex cores);
* the structural normalizer ``inj(P, P) / Π k_t!``.

Plans are value objects: they hold no graph state, pickle cleanly (so
they cross process boundaries and can be persisted), and are keyed by a
deterministic :func:`plan_key` (canonical pattern form + config) — the
cache key the :class:`repro.runtime.Runtime` LRU uses.

Normalization — ``sigma * group_order / denominator`` with the
non-integrality assertion — lives *only* here (:func:`exact_divide` /
:meth:`CountingPlan.normalize`); every backend and engine shares it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from ..graph.csr import CSRGraph
from ..patterns.decompose import Decomposition, decompose
from ..patterns.pattern import Pattern
from .fringe_poly import FringePolynomial, compile_fringe_polynomial
from .matcher import CorePlan, build_plan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> plan)
    from .engine import EngineConfig

__all__ = ["CountingPlan", "compile_pattern", "plan_key", "exact_divide"]

# Specialized-engine kinds by core size (paper §3.4). The *decision* is a
# pure function of the decomposition; the engine object itself is built
# lazily (and cached on the plan) because its constructor performs the
# pattern-side precomputation.
_SPECIALIZED_KINDS = {1: "vertex-core", 2: "edge-core", 3: "3-core"}


def exact_divide(total: int, denominator: int, context: str = "count") -> int:
    """The one normalization code path shared by every engine and backend.

    Divides the raw ordered-embedding sum by the structural normalizer and
    asserts integrality — a non-zero remainder always indicates an engine
    bug (or, for partitioned runs, an insufficient halo).
    """
    value, rem = divmod(total, denominator)
    if rem:
        raise AssertionError(
            f"non-integral {context}: {total} / {denominator} — engine bug"
        )
    return value


def plan_key(pattern: Pattern, config: "EngineConfig") -> tuple:
    """Deterministic cache key: canonical pattern form + config.

    Small patterns (n <= 9) use the exact canonical certificate, so
    isomorphic patterns share one plan regardless of vertex labeling.
    Larger patterns fall back to their labeled edge set — still
    deterministic, merely label-sensitive (the brute-force canonical form
    is exponential in n).
    """
    if pattern.n <= 9:
        pat_key = pattern.canonical_key()
    else:
        pat_key = ("labeled", pattern.n, tuple(sorted(pattern.edges())))
    return (pat_key, config)


@dataclass(frozen=True, eq=False)  # identity semantics: poly holds arrays
class CountingPlan:
    """Everything pattern-side, compiled once and reused across inputs.

    For trivial patterns (n <= 2) only ``pattern``/``config`` are
    meaningful: ``decomp`` and ``core_plan`` are ``None`` and the
    denominator is 1 (the runtime counts vertices/edges directly).
    """

    pattern: Pattern
    config: "EngineConfig"
    key: tuple
    decomp: Decomposition | None
    core_plan: CorePlan | None
    anch: tuple[int, ...]
    k: tuple[int, ...]
    anchored_positions: tuple[int, ...]
    poly: FringePolynomial | None
    specialized_kind: str | None
    denominator: int
    # one-slot lazy cache for the constructed specialized engine; not part
    # of the plan's value (compare=False) and rebuilt after unpickling
    _specialized_cache: list = field(
        default=None, compare=False, repr=False, hash=False
    )

    # ------------------------------------------------------------------
    @property
    def is_trivial(self) -> bool:
        return self.pattern.n <= 2

    @property
    def q(self) -> int:
        return self.decomp.q if self.decomp is not None else 0

    @property
    def group_order(self) -> int:
        return self.core_plan.group_order if self.core_plan is not None else 1

    def normalize(self, sigma: int, *, context: str = "count") -> int:
        """``sigma * group_order / denominator`` — the single shared
        normalization (see :func:`exact_divide`)."""
        return exact_divide(sigma * self.group_order, self.denominator, context)

    def specialized_engine(self):
        """The dispatched closed-form engine, or None (built lazily)."""
        if self.specialized_kind is None:
            return None
        cache = self._specialized_cache
        if cache is None:
            cache = []
            object.__setattr__(self, "_specialized_cache", cache)
        if not cache:
            from . import specialized

            cache.append(specialized.dispatch(self.decomp))
        return cache[0]

    def __repr__(self) -> str:  # keep the (potentially huge) poly out
        return (
            f"CountingPlan(pattern={self.pattern!r}, "
            f"denominator={self.denominator}, "
            f"specialized={self.specialized_kind!r})"
        )


def compile_pattern(
    pattern: Pattern,
    config: "EngineConfig | None" = None,
    *,
    decomposition: Decomposition | None = None,
) -> CountingPlan:
    """Perform all pattern-side work and freeze it into a CountingPlan.

    ``decomposition`` overrides the paper's heuristic core choice (any
    valid core yields the same counts); plans built from an explicit
    decomposition are still valid cache values but the runtime never
    caches them, since the key cannot see the core choice.
    """
    from .engine import EngineConfig

    cfg = config or EngineConfig()
    if not pattern.is_connected:
        raise ValueError("Fringe-SGC counts connected patterns")
    key = plan_key(pattern, cfg)

    if pattern.n <= 2:
        return CountingPlan(
            pattern=pattern,
            config=cfg,
            key=key,
            decomp=None,
            core_plan=None,
            anch=(),
            k=(),
            anchored_positions=(),
            poly=None,
            specialized_kind=None,
            denominator=1,
        )

    decomp = decomposition if decomposition is not None else decompose(pattern)
    core_plan = build_plan(decomp, symmetry_breaking=cfg.symmetry_breaking)
    anch, k = decomp.anchor_bitsets()
    anchored_positions = tuple(decomp.matching_order.index(c) for c in decomp.anchored)
    # the polynomial is always compiled: it is the batch backend's kernel,
    # it feeds MultiPatternCounter, and it makes the plan self-contained
    # regardless of which fc_impl the caller later selects
    poly = compile_fringe_polynomial(anch, k, decomp.q)

    draft = CountingPlan(
        pattern=pattern,
        config=cfg,
        key=key,
        decomp=decomp,
        core_plan=core_plan,
        anch=anch,
        k=k,
        anchored_positions=anchored_positions,
        poly=poly,
        specialized_kind=_SPECIALIZED_KINDS.get(decomp.num_core),
        denominator=1,
    )
    # |Aut(P)| / Π k_t! — the fringe method run on the pattern itself
    # (DESIGN.md §1), evaluated through the same backend machinery that
    # will consume the plan.
    from .backends import BatchBackend

    pattern_graph = CSRGraph.from_edges(pattern.edges(), num_vertices=pattern.n)
    partial = BatchBackend().run(draft, pattern_graph)
    denominator = partial.sigma * core_plan.group_order
    if denominator <= 0:
        raise AssertionError("pattern must embed in itself")
    return replace(draft, denominator=denominator)
