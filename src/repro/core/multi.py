"""Counting many patterns in one pass over the graph.

Motif censuses and the paper's §6.2 sweeps count whole *families* of
patterns that differ only in their fringes. For a fixed core (and anchor
set family), the expensive work — core matching and Venn-diagram
population — is identical for every family member; only the final
fringe-polynomial differs. ``MultiPatternCounter`` exploits that: one
matcher pass, one batched Venn computation, and one polynomial evaluation
per pattern per batch.

This is the fringe-decomposition analogue of Dryadic/STMatch's merged
computation trees (related work §4), and it is what makes e.g. the whole
Fig. 13 series cost barely more than its largest member.

Patterns are grouped by (core pattern, matching order, anchored set); a
group shares a plan and Venn batches. Groups are processed sequentially.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from ..patterns.pattern import Pattern
from .engine import CountResult, EngineConfig, FringeCounter
from .plan import exact_divide
from .matcher import match_cores
from .venn import venn_batch

__all__ = ["MultiPatternCounter", "count_many"]


@dataclass
class _Member:
    name: str
    counter: FringeCounter
    poly: object  # FringePolynomial
    sigma: int = 0


class MultiPatternCounter:
    """Count a family of patterns, sharing core matching per group."""

    def __init__(self, patterns: dict[str, Pattern], *, config: EngineConfig | None = None):
        if not patterns:
            raise ValueError("need at least one pattern")
        cfg = config or EngineConfig()
        if cfg.fc_impl != "poly":
            cfg = EngineConfig(
                venn_impl=cfg.venn_impl,
                fc_impl="poly",
                symmetry_breaking=cfg.symmetry_breaking,
                specialized=cfg.specialized,
                batch_size=cfg.batch_size,
            )
        self.config = cfg
        self._trivial: dict[str, Pattern] = {}
        groups: dict[tuple, list[_Member]] = {}
        for name, pattern in patterns.items():
            if pattern.n <= 2:
                self._trivial[name] = pattern
                continue
            counter = FringeCounter(pattern, config=cfg)
            key = (
                counter.decomp.core_pattern,
                counter.decomp.matching_order,
                counter.decomp.anchored,
                counter.plan.group_order,
                tuple(counter.plan.less_than),
            )
            groups.setdefault(key, []).append(
                _Member(name=name, counter=counter, poly=counter._poly)
            )
        self.groups = groups

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @staticmethod
    def _shared_plan(members: list[_Member]):
        """The group's plan with the *weakest* per-position degree filter.

        Members carry different fringe loads, hence different full-pattern
        degree filters. A match pruned by a stricter member's filter still
        contributes 0 to that member's polynomial (not enough external
        neighbours to place its fringes), so enumerating with the
        elementwise minimum is both safe and complete for everyone.
        """
        import dataclasses

        plans = [m.counter.plan for m in members]
        min_degree = tuple(
            min(p.min_degree[i] for p in plans) for i in range(len(plans[0].min_degree))
        )
        return dataclasses.replace(plans[0], min_degree=min_degree)

    def count_all(self, graph: CSRGraph) -> dict[str, CountResult]:
        """Count every pattern; one shared pass per group."""
        out: dict[str, CountResult] = {}
        for name, pattern in self._trivial.items():
            out[name] = FringeCounter(pattern, config=self.config).count(graph)

        for members in self.groups.values():
            start = time.perf_counter()
            lead = members[0].counter
            plan = self._shared_plan(members)
            positions = list(lead._anchored_positions)
            bs = self.config.batch_size
            for m in members:
                m.sigma = 0
            matches = 0
            buf: list[tuple[int, ...]] = []

            def flush():
                core_matrix = np.asarray(buf, dtype=np.int64)
                anchor_matrix = core_matrix[:, positions]
                venns = venn_batch(graph, anchor_matrix, core_matrix)
                for m in members:
                    m.sigma += m.poly.evaluate_batch(venns)

            for match in match_cores(graph, plan):
                matches += 1
                buf.append(match)
                if len(buf) >= bs:
                    flush()
                    buf.clear()
            if buf:
                flush()
            elapsed = time.perf_counter() - start
            for m in members:
                total = m.sigma * m.counter.plan.group_order
                value = exact_divide(total, m.counter.denominator, f"count for {m.name}")
                out[m.name] = CountResult(
                    count=value,
                    pattern=m.counter.pattern,
                    core_matches=matches,
                    elapsed_s=elapsed / len(members),
                    engine="fringe-multi",
                    decomposition=m.counter.decomp,
                )
        return out


def count_many(
    graph: CSRGraph, patterns: dict[str, Pattern], *, config: EngineConfig | None = None
) -> dict[str, int]:
    """Convenience wrapper: name -> count for a family of patterns."""
    results = MultiPatternCounter(patterns, config=config).count_all(graph)
    return {name: res.count for name, res in results.items()}
