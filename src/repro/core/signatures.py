"""Per-vertex graphlet-degree signatures (vectorized local counting).

The biology applications the paper cites (graphlet degree signatures,
Milenković & Pržulj) need *per-vertex* counts: in how many wedges,
triangles, stars, paws, ... does each vertex participate? This module
computes those vectors for the 3-vertex motifs and the star/triangle
4-vertex families with NumPy-vectorized closed forms — no search — and a
:func:`signature_matrix` convenience for whole-graph embedding.

Counts are *participations* (vertex-level), so column sums relate to the
global counts by the motif's vertex count; tests pin those identities
against the counting engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.specialized import common_neighbor_counts
from ..graph.csr import CSRGraph

__all__ = ["VertexSignature", "vertex_signatures", "signature_matrix", "SIGNATURE_COLUMNS"]

SIGNATURE_COLUMNS = (
    "degree",
    "wedge_center",
    "wedge_end",
    "triangle",
    "star3_center",
    "star3_leaf",
    "paw_apex",
    "paw_tail",
)


@dataclass(frozen=True)
class VertexSignature:
    """Participation counts of one vertex in small motifs."""

    degree: int
    wedge_center: int  # centre of a wedge: C(d, 2)
    wedge_end: int  # endpoint of a wedge
    triangle: int  # triangles through the vertex
    star3_center: int  # centre of a 3-star: C(d, 3)
    star3_leaf: int  # leaf of a 3-star
    paw_apex: int  # the tailed-triangle vertex carrying the tail
    paw_tail: int  # the tail vertex of a tailed triangle

    def as_tuple(self) -> tuple[int, ...]:
        return (
            self.degree,
            self.wedge_center,
            self.wedge_end,
            self.triangle,
            self.star3_center,
            self.star3_leaf,
            self.paw_apex,
            self.paw_tail,
        )


def _per_vertex_arrays(graph: CSRGraph) -> dict[str, np.ndarray]:
    deg = graph.degrees.astype(np.int64)
    n = graph.num_vertices
    edges = graph.edge_array()
    t_e = common_neighbor_counts(graph, edges) if len(edges) else np.zeros(0, dtype=np.int64)

    # triangles through each vertex
    t_v = np.zeros(n, dtype=np.int64)
    if len(edges):
        np.add.at(t_v, edges[:, 0], t_e)
        np.add.at(t_v, edges[:, 1], t_e)
    t_v //= 2

    # wedge centre: C(d, 2); wedge end: Σ over neighbours (d_w - 1)
    wedge_center = deg * (deg - 1) // 2
    nbr_deg_sum = np.zeros(n, dtype=np.int64)
    if len(edges):
        np.add.at(nbr_deg_sum, edges[:, 0], deg[edges[:, 1]])
        np.add.at(nbr_deg_sum, edges[:, 1], deg[edges[:, 0]])
    wedge_end = nbr_deg_sum - deg  # Σ (d_w - 1)

    star3_center = deg * (deg - 1) * (deg - 2) // 6
    # leaf of a 3-star at neighbour w: C(d_w - 1, 2)
    leaf_term = (deg - 1) * (deg - 2) // 2
    star3_leaf = np.zeros(n, dtype=np.int64)
    if len(edges):
        np.add.at(star3_leaf, edges[:, 0], leaf_term[edges[:, 1]])
        np.add.at(star3_leaf, edges[:, 1], leaf_term[edges[:, 0]])

    # paw (tailed triangle): apex = vertex with the tail: t_v * (d - 2);
    # tail participation: Σ over neighbours w of t_w adjusted for shared
    # triangles: tails hang off w's triangles that do NOT involve v
    paw_apex = t_v * (deg - 2)
    paw_tail = np.zeros(n, dtype=np.int64)
    if len(edges):
        # for edge (v, w): v is a tail of t_w - t_e(v,w) triangles at w
        contrib_u = t_v[edges[:, 1]] - t_e
        contrib_v = t_v[edges[:, 0]] - t_e
        np.add.at(paw_tail, edges[:, 0], contrib_u)
        np.add.at(paw_tail, edges[:, 1], contrib_v)

    return {
        "degree": deg,
        "wedge_center": wedge_center,
        "wedge_end": wedge_end,
        "triangle": t_v,
        "star3_center": star3_center,
        "star3_leaf": star3_leaf,
        "paw_apex": paw_apex,
        "paw_tail": paw_tail,
    }


def vertex_signatures(graph: CSRGraph) -> list[VertexSignature]:
    """One :class:`VertexSignature` per vertex."""
    arrays = _per_vertex_arrays(graph)
    return [
        VertexSignature(*(int(arrays[c][v]) for c in SIGNATURE_COLUMNS))
        for v in range(graph.num_vertices)
    ]


def signature_matrix(graph: CSRGraph) -> np.ndarray:
    """``(n, len(SIGNATURE_COLUMNS))`` int64 matrix (rows = vertices)."""
    arrays = _per_vertex_arrays(graph)
    return np.column_stack([arrays[c] for c in SIGNATURE_COLUMNS])
