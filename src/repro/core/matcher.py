"""Stack-based DFS matcher for the pattern core (paper §3.5–3.6).

The matcher enumerates *ordered core embeddings*: injective maps from the
core pattern into the graph that preserve core edges. It follows the
matching order computed by the decomposition (most constrained first),
filters candidates by full-pattern degree, checks adjacency against all
earlier matched positions with binary search, and — optionally — applies
min-ID symmetry-breaking restrictions so each ``Aut_dec`` orbit is visited
once (the caller multiplies by the group order).

Like STMatch, memory use is fixed: one stack of candidate iterators per
search, never a worklist of partial embeddings. ``match_cores`` is a
generator, so the engine streams matches into the Venn/fc stage without
materializing anything.

:mod:`repro.core.frontier` is this matcher's vectorized sibling: it
enumerates the *same* symmetry-reduced embedding set (same plan, same
constraints) but level-synchronously over a 2-D frontier array instead
of one tuple at a time — trading the fixed memory bound for bulk NumPy
throughput, with ``max_rows`` restoring a configurable bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..graph.csr import CSRGraph
from ..patterns.decompose import Decomposition

__all__ = ["CorePlan", "build_plan", "match_cores", "count_core_matches"]


@dataclass(frozen=True)
class CorePlan:
    """Pattern-side precomputation for the matcher (done once per pattern).

    All arrays are indexed by matching-order *position*:

    * ``min_degree[i]`` — full-pattern degree of the core vertex at
      position ``i`` (candidates must have at least this graph degree);
    * ``back_edges[i]`` — earlier positions the vertex must be adjacent to;
    * ``pivot[i]`` — which back edge supplies the candidate list (the
      matcher scans the pivot's adjacency and binary-searches the rest);
    * ``less_than[i]`` — earlier positions whose match must be *greater*
      than position i's match (symmetry breaking: match[j] < match[i]
      for each j in less_than[i]).
    """

    decomp: Decomposition
    order: tuple[int, ...]
    min_degree: tuple[int, ...]
    back_edges: tuple[tuple[int, ...], ...]
    pivot: tuple[int, ...]
    less_than: tuple[tuple[int, ...], ...]
    group_order: int


def build_plan(decomp: Decomposition, *, symmetry_breaking: bool = True) -> CorePlan:
    from ..patterns.automorphisms import symmetry_restrictions

    order = decomp.matching_order
    core_pat = decomp.core_pattern
    pattern = decomp.pattern
    pos_of = {c: i for i, c in enumerate(order)}
    p = len(order)
    min_degree = tuple(pattern.degree(decomp.core_vertices[c]) for c in order)
    back_edges = tuple(
        tuple(sorted(pos_of[w] for w in core_pat.adj[order[i]] if pos_of[w] < i))
        for i in range(p)
    )
    # pivot: the earliest back edge; position 0 has none (scan all vertices)
    pivot = tuple(be[0] if be else -1 for be in back_edges)

    if symmetry_breaking:
        restrictions, group_order = symmetry_restrictions(decomp)
    else:
        restrictions, group_order = [], 1
    lt: list[list[int]] = [[] for _ in range(p)]
    for i, j in restrictions:  # require match[i] < match[j]
        lt[j].append(i)
    less_than = tuple(tuple(sorted(v)) for v in lt)
    return CorePlan(
        decomp=decomp,
        order=order,
        min_degree=min_degree,
        back_edges=back_edges,
        pivot=pivot,
        less_than=less_than,
        group_order=group_order,
    )


def match_cores(
    graph: CSRGraph,
    plan: CorePlan,
    *,
    start_vertices: Sequence[int] | None = None,
) -> Iterator[tuple[int, ...]]:
    """Yield every (symmetry-reduced) ordered core embedding.

    The yielded tuple is indexed by matching-order position: entry ``i``
    is the graph vertex matched to core vertex ``plan.order[i]``.
    ``start_vertices`` restricts position-0 candidates — the unit of work
    distribution for the parallel layers (each worker takes a slice).
    """
    p = len(plan.order)
    rowptr, colidx = graph.rowptr, graph.colidx
    degrees = graph.degrees

    if start_vertices is None:
        roots = np.nonzero(degrees >= plan.min_degree[0])[0]
    else:
        roots = np.asarray(
            [v for v in start_vertices if degrees[v] >= plan.min_degree[0]],
            dtype=np.int64,
        )

    if p == 1:
        for v in roots.tolist():
            yield (v,)
        return

    match = [0] * p
    min_degree = plan.min_degree
    back_edges = plan.back_edges
    pivot = plan.pivot
    less_than = plan.less_than

    def adjacency(v: int) -> np.ndarray:
        return colidx[rowptr[v] : rowptr[v + 1]]

    def has_edge(u: int, w: int) -> bool:
        adj = adjacency(u)
        j = int(np.searchsorted(adj, w))
        return j < len(adj) and adj[j] == w

    # Explicit DFS over matching positions, one candidate iterator per level.
    iters: list[Iterator[int] | None] = [None] * p

    def candidates(i: int) -> Iterator[int]:
        cand = adjacency(match[pivot[i]])
        md = min_degree[i]
        rest = [b for b in back_edges[i] if b != pivot[i]]
        lts = less_than[i]
        earlier = match[:i]
        for v in cand.tolist():
            if degrees[v] < md:
                continue
            if v in earlier:
                continue
            ok = True
            for j in lts:
                if match[j] >= v:
                    ok = False
                    break
            if ok:
                for b in rest:
                    if not has_edge(match[b], v):
                        ok = False
                        break
            if ok:
                yield v

    for root in roots.tolist():
        if less_than[0]:  # cannot happen (position 0 has no earlier), safety
            raise AssertionError("restriction on position 0")
        match[0] = int(root)
        level = 1
        iters[1] = candidates(1)
        while level >= 1:
            nxt = next(iters[level], None)
            if nxt is None:
                level -= 1
                continue
            match[level] = nxt
            if level == p - 1:
                yield tuple(match)
            else:
                level += 1
                iters[level] = candidates(level)
    return


def count_core_matches(graph: CSRGraph, plan: CorePlan) -> int:
    """Number of symmetry-reduced core embeddings (for stats/ablations)."""
    return sum(1 for _ in match_cores(graph, plan))
