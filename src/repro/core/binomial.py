"""Binomial coefficients for the fringe formula.

The fc function evaluates ``nCk`` in its innermost loop, so we precompute a
Pascal triangle once and index it; entries above the table fall back to
:func:`math.comb` (exact big ints — counts overflow 64 bits quickly: the
paper's 2-tailed-triangle count alone is 2.1e7 on a 194k-edge graph, and
Fig. 4-scale patterns produce far larger values).

A vectorized variant serves the NumPy specialized engines. It returns
``float64`` (exact up to 2^53) or ``object`` arrays on demand.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["PascalTable", "nCk", "nck_array", "DEFAULT_TABLE_SIZE"]

DEFAULT_TABLE_SIZE = 64


class PascalTable:
    """Dense (n+1, k+1) table of binomial coefficients.

    ``table[n][k] == C(n, k)``; lookups outside the table use math.comb.
    """

    __slots__ = ("rows", "size")

    def __init__(self, size: int = DEFAULT_TABLE_SIZE):
        rows: list[list[int]] = [[1]]
        for n in range(1, size):
            prev = rows[-1]
            row = [1] + [prev[k - 1] + prev[k] for k in range(1, n)] + [1]
            rows.append(row)
        self.rows = rows
        self.size = size

    def nck(self, n: int, k: int) -> int:
        if k < 0 or k > n:
            return 0
        if n < self.size:
            return self.rows[n][k]
        return math.comb(n, k)


_SHARED = PascalTable()


def nCk(n: int, k: int) -> int:
    """Exact ``C(n, k)``; 0 for k < 0 or k > n (the fc convention)."""
    return _SHARED.nck(n, k)


def nck_array(n: np.ndarray, k: int) -> np.ndarray:
    """Vectorized exact ``C(n[i], k)`` as float64.

    Exact for results below 2^53, which covers every per-vertex/per-edge
    term in the specialized engines (n is a vertex degree; k <= ~10).
    Aggregation into final counts is done in Python ints by the callers.
    """
    n = np.asarray(n, dtype=np.float64)
    if k < 0:
        return np.zeros_like(n)
    out = np.ones_like(n)
    for i in range(k):
        out *= n - i
        out /= i + 1
    return np.where(n >= k, np.rint(out), 0.0)
