"""The Fringe-SGC counting engine (public API).

The counting identity (DESIGN.md §1): for a pattern ``P`` with a core/
fringe decomposition, the number of injective edge-preserving maps is

```
inj(P, G) = Σ_{ordered core embeddings φ} F_sets(venn(φ)) · Π_t k_t!
```

and the subgraph count is ``inj(P, G) / |Aut(P)|``. Running the *same*
sum with ``G = P`` yields ``inj(P, P) = |Aut(P)|``, so

```
count(P, G) = core_sum(P, G) / core_sum(P, P)
```

where ``core_sum`` is the Σ above without the factorials (they cancel).
This bootstraps automorphism handling from the engine itself — no group
enumeration ever happens, which matters because fringe-heavy patterns have
astronomically large automorphism groups (``Π k_t!`` alone).

Use :func:`count_subgraphs` for one-off counts or :class:`FringeCounter`
to amortize pattern-side preprocessing over many graphs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from ..graph.csr import CSRGraph
from ..patterns.decompose import Decomposition, decompose
from ..patterns.pattern import Pattern
from .fringe_count import fc_iterative, fc_recursive
from .matcher import CorePlan, build_plan, match_cores
from .venn import VENN_IMPLS

__all__ = ["EngineConfig", "CountResult", "FringeCounter", "count_subgraphs", "injective_core_sum"]


@dataclass(frozen=True)
class EngineConfig:
    """Knobs for the general engine (defaults match the paper's choices).

    ``fc_impl="poly"`` selects the compiled fringe polynomial evaluated
    over *batches* of core matches with one vectorized Venn pass per batch
    (:func:`repro.core.venn.venn_batch`) — the data-parallel formulation
    and the default for benchmarks. ``"recursive"``/``"iterative"`` are
    the per-match Listing 5 ports.
    """

    venn_impl: str = "sorted"  # "hash" | "sorted" | "merge" (per-match paths)
    fc_impl: str = "poly"  # "poly" | "recursive" | "iterative"
    symmetry_breaking: bool = True
    specialized: bool = True  # use closed-form engines for small cores
    batch_size: int = 4096  # matches per vectorized batch (poly mode)

    def __post_init__(self):
        if self.venn_impl not in VENN_IMPLS:
            raise ValueError(f"unknown venn_impl {self.venn_impl!r}")
        if self.fc_impl not in ("recursive", "iterative", "poly"):
            raise ValueError(f"unknown fc_impl {self.fc_impl!r}")
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")


@dataclass(frozen=True)
class CountResult:
    """A count plus the run statistics the paper reports."""

    count: int
    pattern: Pattern
    core_matches: int  # symmetry-reduced core embeddings visited
    elapsed_s: float
    engine: str
    decomposition: Decomposition | None = None

    def throughput(self, graph_edges: int) -> float:
        """Edges per second — the paper's normalized metric (§6)."""
        return graph_edges / self.elapsed_s if self.elapsed_s > 0 else float("inf")


class FringeCounter:
    """Pattern-compiled Fringe-SGC counter.

    Performs all pattern-side work once (decomposition, matching order,
    symmetry restrictions, anchor bitsets, and the ``inj(P, P)``
    denominator) and can then count the pattern in any number of graphs.
    """

    def __init__(
        self,
        pattern: Pattern,
        *,
        decomposition: Decomposition | None = None,
        config: EngineConfig | None = None,
    ):
        if not pattern.is_connected:
            raise ValueError("Fringe-SGC counts connected patterns")
        self.pattern = pattern
        self.config = config or EngineConfig()
        if pattern.n <= 2:
            self.decomp = None
            self.plan = None
            self._denominator = 1
            return
        self.decomp = decomposition if decomposition is not None else decompose(pattern)
        self.plan = build_plan(self.decomp, symmetry_breaking=self.config.symmetry_breaking)
        self._anch, self._k = self.decomp.anchor_bitsets()
        self._anchored_positions = tuple(
            self.decomp.matching_order.index(c) for c in self.decomp.anchored
        )
        self._poly = None
        if self.config.fc_impl == "poly":
            from .fringe_poly import compile_fringe_polynomial

            self._poly = compile_fringe_polynomial(self._anch, self._k, self.decomp.q)
        # |Aut(P)| / Π k_t!  — the fringe method run on the pattern itself
        pattern_as_graph = CSRGraph.from_edges(pattern.edges(), num_vertices=pattern.n)
        self._denominator = self._core_sum(pattern_as_graph)
        if self._denominator <= 0:
            raise AssertionError("pattern must embed in itself")

    # ------------------------------------------------------------------
    @property
    def denominator(self) -> int:
        """``inj(P, P) / Π k_t!`` — the normalization constant."""
        return self._denominator

    def aut_size(self) -> int:
        """|Aut(P)| computed structurally (never by enumeration)."""
        if self.pattern.n == 1:
            return 1
        if self.pattern.n == 2:
            return 2
        return self._denominator * self.decomp.fringe_permutation_factor()

    def count(self, graph: CSRGraph, *, start_vertices: Sequence[int] | None = None) -> CountResult:
        start = time.perf_counter()
        if self.pattern.n == 1:
            value, matches = graph.num_vertices, graph.num_vertices
        elif self.pattern.n == 2:
            value, matches = graph.num_edges, graph.num_edges
        else:
            sigma, matches = self._core_sum_with_stats(graph, start_vertices)
            total = sigma * self.plan.group_order
            value, rem = divmod(total, self._denominator)
            if rem:
                raise AssertionError(
                    f"non-integral count: {total} / {self._denominator} — engine bug"
                )
        elapsed = time.perf_counter() - start
        return CountResult(
            count=value,
            pattern=self.pattern,
            core_matches=matches,
            elapsed_s=elapsed,
            engine=f"fringe-general({self.config.venn_impl},{self.config.fc_impl})",
            decomposition=self.decomp,
        )

    def core_sum(self, graph: CSRGraph) -> int:
        """Σ over *all* ordered core embeddings of the fringe-set count."""
        if self.plan is None:
            raise ValueError("core_sum is only defined for patterns with n >= 3")
        return self._core_sum(graph)

    # ------------------------------------------------------------------
    def _core_sum(self, graph: CSRGraph) -> int:
        sigma, _ = self._core_sum_with_stats(graph, None)
        return sigma * self.plan.group_order

    def _core_sum_with_stats(
        self, graph: CSRGraph, start_vertices: Sequence[int] | None
    ) -> tuple[int, int]:
        """(Σ F_sets over symmetry-reduced core embeddings, #embeddings)."""
        anch, k, q = self._anch, self._k, self.decomp.q
        anchored_positions = self._anchored_positions
        total = 0
        matches = 0
        if q == 0:
            # no fringes at all: every core embedding contributes 1
            for _ in match_cores(graph, self.plan, start_vertices=start_vertices):
                matches += 1
            return matches, matches

        if self._poly is not None:
            from .venn import venn_batch
            import numpy as np

            bs = self.config.batch_size
            buf: list[tuple[int, ...]] = []
            for match in match_cores(graph, self.plan, start_vertices=start_vertices):
                matches += 1
                buf.append(match)
                if len(buf) >= bs:
                    total += self._flush_batch(graph, buf)
                    buf.clear()
            if buf:
                total += self._flush_batch(graph, buf)
            return total, matches

        venn_fn = VENN_IMPLS[self.config.venn_impl]
        fc = fc_recursive if self.config.fc_impl == "recursive" else fc_iterative
        for match in match_cores(graph, self.plan, start_vertices=start_vertices):
            matches += 1
            anchors = [match[i] for i in anchored_positions]
            venn = venn_fn(graph, anchors, match)
            total += fc(venn, anch, k, q)
        return total, matches

    def _flush_batch(self, graph: CSRGraph, buf: list[tuple[int, ...]]) -> int:
        from .venn import venn_batch
        import numpy as np

        core_matrix = np.asarray(buf, dtype=np.int64)
        anchor_matrix = core_matrix[:, list(self._anchored_positions)]
        venns = venn_batch(graph, anchor_matrix, core_matrix)
        return self._poly.evaluate_batch(venns)


def injective_core_sum(graph: CSRGraph, decomp: Decomposition, *, config: EngineConfig | None = None) -> int:
    """Σ over all ordered core embeddings of F_sets (module-level helper).

    Multiplied by ``Π k_t!`` this equals ``inj(P, G)``. Used by tests and
    by :func:`repro.patterns.automorphisms.aut_size_structural`.
    """
    counter = FringeCounter(decomp.pattern, decomposition=decomp, config=config)
    return counter._core_sum(graph)


def count_subgraphs(
    graph: CSRGraph,
    pattern: Pattern,
    *,
    engine: str = "auto",
    decomposition: Decomposition | None = None,
    config: EngineConfig | None = None,
) -> CountResult:
    """Count edge-induced embeddings of ``pattern`` in ``graph``.

    ``engine``:

    * ``"auto"`` — specialized closed-form engines for 1-/2-vertex cores
      (paper §3.4 "specialized code for patterns with small cores"), the
      general engine otherwise;
    * ``"general"`` — always the general matcher + Venn + fc pipeline;
    * ``"specialized"`` — require a specialized engine (raises if none).
    """
    cfg = config or EngineConfig()
    if engine not in ("auto", "general", "specialized"):
        raise ValueError(f"unknown engine {engine!r}")

    if pattern.n <= 2 or engine == "general":
        return FringeCounter(pattern, decomposition=decomposition, config=cfg).count(graph)

    from . import specialized

    decomp = decomposition if decomposition is not None else decompose(pattern)
    if cfg.specialized or engine == "specialized":
        special = specialized.dispatch(decomp)
        if special is not None:
            return special(graph)
        if engine == "specialized":
            raise ValueError(
                f"no specialized engine for a {decomp.num_core}-vertex core"
            )
    return FringeCounter(pattern, decomposition=decomp, config=cfg).count(graph)
