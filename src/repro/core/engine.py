"""The Fringe-SGC counting engine (public API).

The counting identity (DESIGN.md §1): for a pattern ``P`` with a core/
fringe decomposition, the number of injective edge-preserving maps is

```
inj(P, G) = Σ_{ordered core embeddings φ} F_sets(venn(φ)) · Π_t k_t!
```

and the subgraph count is ``inj(P, G) / |Aut(P)|``. Running the *same*
sum with ``G = P`` yields ``inj(P, P) = |Aut(P)|``, so

```
count(P, G) = core_sum(P, G) / core_sum(P, P)
```

where ``core_sum`` is the Σ above without the factorials (they cancel).
This bootstraps automorphism handling from the engine itself — no group
enumeration ever happens, which matters because fringe-heavy patterns have
astronomically large automorphism groups (``Π k_t!`` alone).

The implementation is layered (DESIGN.md §7): :mod:`repro.core.plan`
compiles patterns into frozen :class:`~repro.core.plan.CountingPlan`
artifacts, :mod:`repro.core.backends` executes plans over graphs, and
:class:`repro.runtime.Runtime` fronts both with an LRU plan cache.

Use :func:`count_subgraphs` for one-off counts (it routes through the
process-wide runtime, so repeated patterns hit the plan cache) or
:class:`FringeCounter` to hold one compiled pattern explicitly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from ..graph.csr import CSRGraph
from ..patterns.decompose import Decomposition
from ..patterns.pattern import Pattern
from .backends import select_backend
from .plan import CountingPlan, compile_pattern
from .venn import VENN_IMPLS

__all__ = [
    "EngineConfig",
    "CountResult",
    "ExecutionStats",
    "FringeCounter",
    "count_subgraphs",
    "injective_core_sum",
]


@dataclass(frozen=True)
class EngineConfig:
    """Knobs for the general engine (defaults match the paper's choices).

    ``fc_impl="poly"`` selects the compiled fringe polynomial evaluated
    over *batches* of core matches with one vectorized Venn pass per batch
    (:func:`repro.core.venn.venn_batch`) — the data-parallel formulation
    and the default for benchmarks. ``"recursive"``/``"iterative"`` are
    the per-match Listing 5 ports.

    ``max_frontier_rows`` only affects the frontier backend
    (``engine="frontier"``): it caps the candidate volume of one
    frontier-expansion step; wider frontiers are split into blocks that
    are traversed depth-first, bounding peak memory on dense graphs.
    """

    venn_impl: str = "sorted"  # "hash" | "sorted" | "merge" (per-match paths)
    fc_impl: str = "poly"  # "poly" | "recursive" | "iterative"
    symmetry_breaking: bool = True
    specialized: bool = True  # use closed-form engines for small cores
    batch_size: int = 4096  # matches per vectorized batch (poly mode)
    max_frontier_rows: int = 1 << 20  # frontier-backend expansion cap (rows)

    def __post_init__(self):
        if self.venn_impl not in VENN_IMPLS:
            raise ValueError(f"unknown venn_impl {self.venn_impl!r}")
        if self.fc_impl not in ("recursive", "iterative", "poly"):
            raise ValueError(f"unknown fc_impl {self.fc_impl!r}")
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.max_frontier_rows < 1:
            raise ValueError("max_frontier_rows must be positive")


@dataclass(frozen=True)
class ExecutionStats:
    """Per-call breakdown of where a count's time went.

    ``compile_s`` is pattern-compilation time (zero on a plan-cache hit);
    ``execute_s`` is graph-side execution; ``venn_fc_s`` is the share of
    execution spent in Venn/fringe-count evaluation and ``match_s`` the
    core-matching remainder. ``cache_hits``/``cache_misses`` snapshot the
    serving runtime's cumulative plan-cache counters (both zero when the
    count did not go through a runtime). ``workers`` is the number of
    distinct fork-pool worker processes that contributed (zero when the
    count ran in-process).
    """

    backend: str = ""
    plan_cache_hit: bool = False
    compile_s: float = 0.0
    execute_s: float = 0.0
    match_s: float = 0.0
    venn_fc_s: float = 0.0
    batches_flushed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    workers: int = 0


@dataclass(frozen=True)
class CountResult:
    """A count plus the run statistics the paper reports."""

    count: int
    pattern: Pattern
    core_matches: int  # symmetry-reduced core embeddings visited
    elapsed_s: float
    engine: str
    decomposition: Decomposition | None = None
    stats: ExecutionStats | None = None

    def throughput(self, graph_edges: int) -> float:
        """Edges per second — the paper's normalized metric (§6)."""
        return graph_edges / self.elapsed_s if self.elapsed_s > 0 else float("inf")


class FringeCounter:
    """Pattern-compiled Fringe-SGC counter.

    Thin stateful wrapper over a :class:`~repro.core.plan.CountingPlan`:
    all pattern-side work happens once (at construction or in the plan
    passed in) and is reused for any number of graphs. The historical
    attribute surface (``decomp``, ``plan``, ``denominator``, ...) is
    preserved for the listing/multi/gpusim layers built on top of it.
    """

    def __init__(
        self,
        pattern: Pattern,
        *,
        decomposition: Decomposition | None = None,
        config: EngineConfig | None = None,
        plan: CountingPlan | None = None,
    ):
        if plan is None:
            plan = compile_pattern(pattern, config or EngineConfig(), decomposition=decomposition)
        self.counting_plan = plan
        self.pattern = plan.pattern
        self.config = plan.config
        self.decomp = plan.decomp
        self.plan = plan.core_plan
        self._denominator = plan.denominator
        if plan.decomp is not None:
            self._anch, self._k = plan.anch, plan.k
            self._anchored_positions = plan.anchored_positions
            self._poly = plan.poly

    # ------------------------------------------------------------------
    @property
    def denominator(self) -> int:
        """``inj(P, P) / Π k_t!`` — the normalization constant."""
        return self._denominator

    def aut_size(self) -> int:
        """|Aut(P)| computed structurally (never by enumeration)."""
        if self.pattern.n == 1:
            return 1
        if self.pattern.n == 2:
            return 2
        return self._denominator * self.decomp.fringe_permutation_factor()

    def count(self, graph: CSRGraph, *, start_vertices: Sequence[int] | None = None) -> CountResult:
        start = time.perf_counter()
        cplan = self.counting_plan
        backend = None
        partial = None
        if self.pattern.n == 1:
            value, matches = graph.num_vertices, graph.num_vertices
        elif self.pattern.n == 2:
            value, matches = graph.num_edges, graph.num_edges
        else:
            backend = select_backend(self.config)
            partial = backend.run(cplan, graph, start_vertices=start_vertices)
            value = cplan.normalize(partial.sigma)
            matches = partial.matches
        elapsed = time.perf_counter() - start
        venn_fc_s = partial.venn_fc_s if partial else 0.0
        stats = ExecutionStats(
            backend=backend.name if backend else "trivial",
            execute_s=elapsed,
            match_s=max(0.0, elapsed - venn_fc_s),
            venn_fc_s=venn_fc_s,
            batches_flushed=partial.batches if partial else 0,
        )
        return CountResult(
            count=value,
            pattern=self.pattern,
            core_matches=matches,
            elapsed_s=elapsed,
            engine=f"fringe-general({self.config.venn_impl},{self.config.fc_impl})",
            decomposition=self.decomp,
            stats=stats,
        )

    def core_sum(self, graph: CSRGraph) -> int:
        """Σ over *all* ordered core embeddings of the fringe-set count."""
        if self.plan is None:
            raise ValueError("core_sum is only defined for patterns with n >= 3")
        return self._core_sum(graph)

    # ------------------------------------------------------------------
    # compatibility delegates (pre-layering internal API)
    # ------------------------------------------------------------------
    def _core_sum(self, graph: CSRGraph) -> int:
        sigma, _ = self._core_sum_with_stats(graph, None)
        return sigma * self.plan.group_order

    def _core_sum_with_stats(
        self, graph: CSRGraph, start_vertices: Sequence[int] | None
    ) -> tuple[int, int]:
        """(Σ F_sets over symmetry-reduced core embeddings, #embeddings)."""
        partial = select_backend(self.config).run(
            self.counting_plan, graph, start_vertices=start_vertices
        )
        return partial.sigma, partial.matches


def injective_core_sum(
    graph: CSRGraph, decomp: Decomposition, *, config: EngineConfig | None = None
) -> int:
    """Σ over all ordered core embeddings of F_sets (module-level helper).

    Multiplied by ``Π k_t!`` this equals ``inj(P, G)``. Used by tests and
    by :func:`repro.patterns.automorphisms.aut_size_structural`.
    """
    counter = FringeCounter(decomp.pattern, decomposition=decomp, config=config)
    return counter._core_sum(graph)


def count_subgraphs(
    graph: CSRGraph,
    pattern: Pattern,
    *,
    engine: str = "auto",
    decomposition: Decomposition | None = None,
    config: EngineConfig | None = None,
) -> CountResult:
    """Count edge-induced embeddings of ``pattern`` in ``graph``.

    Routes through the process-wide :class:`repro.runtime.Runtime`, so
    counting the same pattern again reuses its compiled plan.

    ``engine``:

    * ``"auto"`` — specialized closed-form engines for 1-/2-vertex cores
      (paper §3.4 "specialized code for patterns with small cores"), the
      general engine otherwise;
    * ``"general"`` — always the general matcher + Venn + fc pipeline;
    * ``"specialized"`` — require a specialized engine (raises if none);
    * ``"frontier"`` — the vectorized frontier-at-a-time backend
      (:mod:`repro.core.frontier`): whole blocks of core embeddings per
      NumPy pass instead of one per Python iteration.
    """
    from ..runtime import get_runtime

    return get_runtime().count(
        graph, pattern, engine=engine, decomposition=decomposition, config=config
    )
