"""Subgraph *matching* mode: list core locations and per-core counts.

Paper §2: "by adding a simple print statement, we can change Fringe-SGC
to not only count the pattern but also list all identified core locations
and the number of patterns that surround each core. Doing so basically
changes the code into a subgraph matching application."

This module is that mode, minus the print statement: a streaming iterator
over :class:`CoreMatch` records (matched core vertices + the number of
pattern embeddings around them), plus two aggregations the applications
in the paper's introduction need:

* :func:`per_vertex_counts` — for every graph vertex, the number of
  pattern copies whose core contains it (a graphlet-degree-style,
  orbit-blind signature used in biology and fraud scoring);
* :func:`top_cores` — the k core locations with the most surrounding
  copies (hotspot mining).

Caveat on semantics: per-core numbers are *ordered-embedding* masses
normalized by the same structural constant as the global count, so they
sum exactly to ``count(P, G)``; a copy whose automorphisms map it onto
several core placements contributes fractionally to each (we expose the
exact fraction as a :class:`fractions.Fraction` to keep everything
exact).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator

from ..graph.csr import CSRGraph
from ..patterns.decompose import Decomposition
from ..patterns.pattern import Pattern
from .engine import EngineConfig, FringeCounter
from .fringe_count import fc_recursive
from .matcher import match_cores
from .venn import VENN_IMPLS

__all__ = ["CoreMatch", "iter_core_matches", "per_vertex_counts", "top_cores"]


@dataclass(frozen=True)
class CoreMatch:
    """One matched core and the pattern mass around it.

    ``vertices`` are the matched graph vertices in matching order;
    ``embeddings`` is the exact share of pattern copies centred on this
    placement (a Fraction; sums to the global count over all matches).
    ``raw_choices`` is the unnormalized fringe-set count F(venn).
    """

    vertices: tuple[int, ...]
    embeddings: Fraction
    raw_choices: int


class _ListingCounter(FringeCounter):
    """FringeCounter variant that streams per-match results."""

    def iter_matches(self, graph: CSRGraph) -> Iterator[CoreMatch]:
        if self.pattern.n <= 2:
            raise ValueError("listing mode needs a pattern with >= 3 vertices")
        venn_fn = VENN_IMPLS[self.config.venn_impl]
        anch, k, q = self._anch, self._k, self.decomp.q
        positions = self._anchored_positions
        scale = Fraction(self.plan.group_order, self.denominator)
        for match in match_cores(graph, self.plan):
            if q == 0:
                raw = 1
            else:
                anchors = [match[i] for i in positions]
                venn = venn_fn(graph, anchors, match)
                raw = fc_recursive(venn, anch, k, q)
            if raw:
                yield CoreMatch(
                    vertices=match, embeddings=raw * scale, raw_choices=raw
                )


def iter_core_matches(
    graph: CSRGraph,
    pattern: Pattern,
    *,
    decomposition: Decomposition | None = None,
    config: EngineConfig | None = None,
) -> Iterator[CoreMatch]:
    """Stream every productive core match (raw fringe count > 0).

    Memory use is constant — matches are produced by the same
    fixed-memory stack matcher the counting engine uses (§3.5).
    """
    cfg = config or EngineConfig(fc_impl="recursive")
    if cfg.fc_impl == "poly":
        # per-match listing needs the scalar path; swap the default
        cfg = EngineConfig(
            venn_impl=cfg.venn_impl,
            fc_impl="recursive",
            symmetry_breaking=cfg.symmetry_breaking,
            specialized=cfg.specialized,
        )
    counter = _ListingCounter(pattern, decomposition=decomposition, config=cfg)
    return counter.iter_matches(graph)


def per_vertex_counts(
    graph: CSRGraph,
    pattern: Pattern,
    *,
    decomposition: Decomposition | None = None,
) -> list[Fraction]:
    """For each vertex, the pattern mass of cores containing it.

    Summing over all vertices gives ``p · count(P, G)`` (each copy's core
    has ``p`` vertices).
    """
    out = [Fraction(0)] * graph.num_vertices
    for m in iter_core_matches(graph, pattern, decomposition=decomposition):
        for v in m.vertices:
            out[v] += m.embeddings
    return out


def top_cores(
    graph: CSRGraph,
    pattern: Pattern,
    k: int = 10,
    *,
    decomposition: Decomposition | None = None,
) -> list[CoreMatch]:
    """The k core placements with the largest surrounding pattern mass."""
    heap: list[tuple[Fraction, int, CoreMatch]] = []
    for i, m in enumerate(iter_core_matches(graph, pattern, decomposition=decomposition)):
        item = (m.embeddings, i, m)
        if len(heap) < k:
            heapq.heappush(heap, item)
        elif item[0] > heap[0][0]:
            heapq.heapreplace(heap, item)
    return [m for _, _, m in sorted(heap, key=lambda t: (-t[0], t[1]))]
