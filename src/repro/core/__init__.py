"""The Fringe-SGC core: binomials, Venn diagrams, fc, matcher, engines."""

from .binomial import PascalTable, nCk, nck_array
from .engine import CountResult, EngineConfig, FringeCounter, count_subgraphs, injective_core_sum
from .listing import CoreMatch, iter_core_matches, per_vertex_counts, top_cores
from .multi import MultiPatternCounter, count_many
from .fringe_count import count_fringe_choices, fc_iterative, fc_recursive
from .matcher import CorePlan, build_plan, count_core_matches, match_cores
from .venn import VENN_IMPLS, venn_hash, venn_merge, venn_sorted

__all__ = [
    "PascalTable",
    "CoreMatch",
    "iter_core_matches",
    "per_vertex_counts",
    "top_cores",
    "MultiPatternCounter",
    "count_many",
    "nCk",
    "nck_array",
    "CountResult",
    "EngineConfig",
    "FringeCounter",
    "count_subgraphs",
    "injective_core_sum",
    "count_fringe_choices",
    "fc_iterative",
    "fc_recursive",
    "CorePlan",
    "build_plan",
    "count_core_matches",
    "match_cores",
    "VENN_IMPLS",
    "venn_hash",
    "venn_merge",
    "venn_sorted",
]
