"""The Fringe-SGC core: binomials, Venn diagrams, fc, matcher, engines.

Layered architecture (DESIGN.md §7): :mod:`repro.core.plan` compiles
patterns into frozen plans, :mod:`repro.core.backends` executes plans
over graphs, and :class:`repro.runtime.Runtime` fronts both with an LRU
plan cache.
"""

from .backends import (
    Backend,
    BatchBackend,
    FrontierBackend,
    MultiprocessBackend,
    PartialSum,
    PoolBackend,
    SerialBackend,
    record_worker_metrics,
    select_backend,
)
from .frontier import (
    FrontierStats,
    frontier_match_matrix,
    has_edges_bulk,
    iter_frontier_blocks,
)
from .binomial import PascalTable, nCk, nck_array
from .engine import (
    CountResult,
    EngineConfig,
    ExecutionStats,
    FringeCounter,
    count_subgraphs,
    injective_core_sum,
)
from .plan import CountingPlan, compile_pattern, exact_divide, plan_key
from .listing import CoreMatch, iter_core_matches, per_vertex_counts, top_cores
from .multi import MultiPatternCounter, count_many
from .fringe_count import count_fringe_choices, fc_iterative, fc_recursive
from .matcher import CorePlan, build_plan, count_core_matches, match_cores
from .venn import VENN_IMPLS, venn_hash, venn_merge, venn_sorted

__all__ = [
    "Backend",
    "BatchBackend",
    "FrontierBackend",
    "FrontierStats",
    "frontier_match_matrix",
    "has_edges_bulk",
    "iter_frontier_blocks",
    "MultiprocessBackend",
    "PartialSum",
    "PoolBackend",
    "SerialBackend",
    "record_worker_metrics",
    "select_backend",
    "CountingPlan",
    "compile_pattern",
    "exact_divide",
    "plan_key",
    "ExecutionStats",
    "PascalTable",
    "CoreMatch",
    "iter_core_matches",
    "per_vertex_counts",
    "top_cores",
    "MultiPatternCounter",
    "count_many",
    "nCk",
    "nck_array",
    "CountResult",
    "EngineConfig",
    "FringeCounter",
    "count_subgraphs",
    "injective_core_sum",
    "count_fringe_choices",
    "fc_iterative",
    "fc_recursive",
    "CorePlan",
    "build_plan",
    "count_core_matches",
    "match_cores",
    "VENN_IMPLS",
    "venn_hash",
    "venn_merge",
    "venn_sorted",
]
