"""The two search-kernel formulations the paper contrasts (§3.6).

Both kernels count edge-core instances (the matched (v0, v1) pairs of a
triangle-family pattern, i.e. v1 ∈ adj(v0), optionally with a common-
neighbour stage) over a warp's worth of work, expressed as per-lane
:class:`~repro.gpusim.warp.LaneOp` traces:

* :func:`naive_lane_program` — Listing 6: each lane takes its own root
  vertex and walks its own nested loops. Lanes diverge at the first
  degree difference and the warp serializes.
* :func:`ballot_warp_programs` — Listing 7: the whole warp cooperates on
  one root; lanes stride the adjacency list together, ballot for
  candidates, then process each surviving candidate with all 32 lanes.
  All lanes execute the same pc sequence, so SIMT efficiency stays high.

A third kernel models the §3.6 warp-cooperative Venn population: every
lane binary-searches a sorted adjacency list for one element of another
sorted list — the coalescing the paper observes ("many of the logarithmic
steps ... yield coalesced memory accesses") emerges from address locality
of sorted inputs, which the simulator's segment model captures.

Program-counter layout (shared by both formulations so costs compare):
pc 1x = level-1 scan, pc 2x = level-2 scan, pc 3x = intersection work.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..graph.csr import CSRGraph
from .warp import WARP_SIZE, LaneOp, WarpStats, ballot, run_warp

__all__ = [
    "naive_lane_program",
    "ballot_warp_programs",
    "run_naive_warp",
    "run_ballot_warp",
    "venn_binary_search_programs",
]


def _adj_span(graph: CSRGraph, v: int) -> tuple[int, int]:
    return int(graph.rowptr[v]), int(graph.rowptr[v + 1])


def naive_lane_program(
    graph: CSRGraph, root: int, min_degree: int
) -> Iterator[LaneOp]:
    """Listing 6: one lane explores its own root's neighbourhood.

    Two nested levels: v1 over adj(root) (with a degree filter), then v2
    over adj(v1) counting v2 > v1 forward edges — the shape of a
    triangle-core search. Each loop iteration is one op touching the
    adjacency word it reads.
    """
    base = int(graph.rowptr[root])  # colidx offset; address space = word index
    start, end = _adj_span(graph, root)
    for i1 in range(start, end):
        yield LaneOp(pc=10, addresses=(i1,))  # load v1
        v1 = int(graph.colidx[i1])
        if graph.degree(v1) < min_degree:
            continue
        s2, e2 = _adj_span(graph, v1)
        for i2 in range(s2, e2):
            yield LaneOp(pc=20, addresses=(i2,))  # load v2
    del base


def run_naive_warp(graph: CSRGraph, roots: Sequence[int], min_degree: int = 2) -> WarpStats:
    """Run up to 32 roots, one per lane, under the divergence model."""
    programs = [naive_lane_program(graph, int(r), min_degree) for r in roots[:WARP_SIZE]]
    return run_warp(programs)


def ballot_warp_programs(
    graph: CSRGraph, roots: Sequence[int], min_degree: int = 2
) -> list[Iterator[LaneOp]]:
    """Listing 7: the warp processes each root cooperatively.

    For every root: lanes stride adj(root) 32 at a time (one coalesced
    step), ballot on the degree filter, and for each surviving candidate
    all 32 lanes stride adj(v1) together. Every lane emits the identical
    pc sequence — the simulator then reports full SIMT efficiency.
    """
    # Build the *shared* schedule once, then replay it per lane.
    schedule: list[tuple[int, int]] = []  # (pc, base_index) per warp step
    for root in roots:
        start, end = _adj_span(graph, int(root))
        for chunk in range(start, end, WARP_SIZE):
            hi = min(chunk + WARP_SIZE, end)
            schedule.append((10, chunk))  # strided cooperative load
            candidates = [
                int(v)
                for v in graph.colidx[chunk:hi]
                if graph.degree(int(v)) >= min_degree
            ]
            bal = ballot([True] * len(candidates))
            while bal:
                bal &= bal - 1  # one candidate processed per ballot round
                v1 = candidates.pop(0)
                s2, e2 = _adj_span(graph, v1)
                for c2 in range(s2, e2, WARP_SIZE):
                    schedule.append((20, c2))

    def lane(lane_id: int) -> Iterator[LaneOp]:
        for pc, base in schedule:
            yield LaneOp(pc=pc, addresses=(base + lane_id,))

    return [lane(i) for i in range(WARP_SIZE)]


def run_ballot_warp(graph: CSRGraph, roots: Sequence[int], min_degree: int = 2) -> WarpStats:
    return run_warp(ballot_warp_programs(graph, roots, min_degree))


def venn_binary_search_programs(
    graph: CSRGraph, anchor: int, others: Sequence[int]
) -> list[Iterator[LaneOp]]:
    """§3.6 Venn population: the warp classifies adj(anchor) entries.

    Lane ``i`` takes adjacency entries ``i, i+32, ...`` of the anchor and
    binary-searches each later anchor's sorted list for them. Because the
    queried values come from a sorted chunk, the early binary-search
    probes of the 32 lanes land in the same segments — the coalescing the
    paper exploits. The simulator's transaction counter shows it.
    """
    start, end = _adj_span(graph, int(anchor))
    spans = [_adj_span(graph, int(o)) for o in others]

    def lane(lane_id: int) -> Iterator[LaneOp]:
        for base in range(start + lane_id, end, WARP_SIZE):
            yield LaneOp(pc=30, addresses=(base,))  # load own entry
            x = int(graph.colidx[base])
            for (s, e) in spans:
                lo, hi = s, e
                step = 0
                while lo < hi:
                    mid = (lo + hi) // 2
                    yield LaneOp(pc=40 + step, addresses=(mid,))
                    if int(graph.colidx[mid]) < x:
                        lo = mid + 1
                    else:
                        hi = mid
                    step += 1

    return [lane(i) for i in range(WARP_SIZE)]
