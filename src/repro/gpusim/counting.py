"""A complete Fringe-SGC warp kernel on the simulator: costs *and* counts.

The kernels in :mod:`repro.gpusim.kernels` reproduce the cost behaviour of
Listing 6 vs Listing 7. This module closes the loop: a warp-level
edge-core Fringe-SGC kernel that runs on the SIMT simulator and returns
the *actual pattern count*, validated against the CPU engine in the test
suite. It executes, per warp-owned root vertex:

1. cooperative scan of adj(root) with a degree-filter ballot (Listing 7);
2. for each surviving neighbour v1 (with v1 > root as the edge-core
   symmetry restriction), warp-cooperative Venn population for the pair
   (root, v1): every lane classifies a stripe of adj(root) by binary
   search in adj(v1) (§3.6);
3. each lane evaluates the §3.1 closed form for its matched pair — the
   per-thread fc stage.

The returned :class:`KernelResult` carries both the exact count and the
warp statistics, so a single launch answers "is it right?" and "does the
strategy keep lanes busy?" at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..graph.csr import CSRGraph
from ..patterns.decompose import decompose
from ..patterns.pattern import Pattern
from .warp import WARP_SIZE, LaneOp, WarpStats, run_warp

__all__ = ["KernelResult", "EdgeCoreKernel"]


@dataclass
class KernelResult:
    count: int
    stats: WarpStats
    raw: int = 0  # unnormalized ordered-embedding mass (partition-friendly)


class EdgeCoreKernel:
    """Warp-level Fringe-SGC for 2-vertex-core patterns.

    ``a``/``b`` tails on the two core vertices and ``m`` wedge fringes,
    read from the pattern's decomposition exactly like the CPU engine.
    """

    def __init__(self, pattern: Pattern):
        decomp = decompose(pattern)
        if decomp.num_core != 2:
            raise ValueError("EdgeCoreKernel handles 2-vertex cores")
        deco = decomp.decoration()
        self.a = deco.get(frozenset({0}), 0)
        self.b = deco.get(frozenset({1}), 0)
        self.m = deco.get(frozenset({0, 1}), 0)
        self.decomp = decomp
        self.pattern = pattern
        # normalizer: same structural constant as the CPU engine
        from ..core.specialized import EdgeCoreEngine

        self._engine = EdgeCoreEngine(decomp)
        self.denominator = self._engine.denominator

    # ------------------------------------------------------------------
    def launch(
        self,
        graph: CSRGraph,
        roots: Sequence[int] | None = None,
        *,
        normalize: bool = True,
    ) -> KernelResult:
        """Run warp by warp over the root space; exact count + stats.

        With ``normalize=False`` the result's ``count`` is 0 and ``raw``
        carries the unnormalized sum — use this for partial launches over
        root subsets (the multi-GPU decomposition), then divide the
        recombined raws by :attr:`denominator` once.
        """
        if roots is None:
            roots = range(graph.num_vertices)
        total_raw = 0
        stats = WarpStats()
        chunk: list[int] = []
        for r in roots:
            chunk.append(int(r))
            if len(chunk) == WARP_SIZE:
                raw, s = self._run_warp(graph, chunk)
                total_raw += raw
                stats.merge(s)
                chunk = []
        if chunk:
            raw, s = self._run_warp(graph, chunk)
            total_raw += raw
            stats.merge(s)
        if not normalize:
            return KernelResult(count=0, stats=stats, raw=total_raw)
        count, rem = divmod(total_raw, self.denominator)
        if rem:
            raise AssertionError("non-integral kernel count")
        return KernelResult(count=count, stats=stats, raw=total_raw)

    # ------------------------------------------------------------------
    def _run_warp(self, graph: CSRGraph, roots: list[int]) -> tuple[int, WarpStats]:
        """One warp: cooperative processing of up to 32 roots.

        The warp handles each root in turn (Listing 7: all lanes work on
        the same root). The returned raw value is Σ over matched ordered
        pairs of F(n_u, n_v, c) for both orientations.
        """
        rowptr, colidx = graph.rowptr, graph.colidx
        total = 0
        schedule: list[tuple[int, int]] = []  # shared (pc, base) steps

        for root in roots:
            s0, e0 = int(rowptr[root]), int(rowptr[root + 1])
            deg_root = e0 - s0
            for base in range(s0, e0, WARP_SIZE):
                schedule.append((10, base))  # cooperative candidate load
                hi = min(base + WARP_SIZE, e0)
                for idx in range(base, hi):
                    v1 = int(colidx[idx])
                    if v1 <= root:
                        continue  # min-ID restriction on the edge core
                    s1, e1 = int(rowptr[v1]), int(rowptr[v1 + 1])
                    # warp-cooperative venn for (root, v1): lanes stripe
                    # adj(root), binary searching adj(v1)
                    c = 0
                    for stripe in range(s0, e0, WARP_SIZE):
                        schedule.append((20, stripe))
                        lo = min(stripe + WARP_SIZE, e0)
                        block = colidx[stripe:lo]
                        pos = np.searchsorted(colidx[s1:e1], block)
                        pos = np.minimum(pos, max(e1 - s1 - 1, 0))
                        if e1 > s1:
                            c += int(np.count_nonzero(colidx[s1:e1][pos] == block))
                    # remove the core vertices themselves from the venn
                    c -= 0  # root/v1 are never their own neighbours
                    n_u = deg_root - 1 - c
                    n_v = (e1 - s1) - 1 - c
                    schedule.append((30, idx))  # per-lane fc evaluation
                    total += self._f(n_u, n_v, c) + self._f(n_v, n_u, c)

        # replay the shared schedule as 32 identical lane traces to get
        # the SIMT cost account (full convergence by construction)
        def lane(lane_id: int) -> Iterator[LaneOp]:
            for pc, base in schedule:
                yield LaneOp(pc=pc, addresses=(base + lane_id,))

        stats = run_warp([lane(i) for i in range(WARP_SIZE)])
        # 2x for the symmetry restriction (u < v enumerates each edge once,
        # but the ordered-embedding sum needs both orientations — the _f
        # calls above already add both)
        return total, stats

    def _f(self, n_u: int, n_v: int, c: int) -> int:
        """§3.1 closed form (same maths as EdgeCoreEngine._f_exact)."""
        return self._engine._f_exact(n_u, n_v, c)
