"""SIMT warp model: lanes, ballots, divergence, and memory coalescing.

The paper's §3.6 contribution is a *parallelization strategy*: the nested
conditional search of Listing 6 collapses warp parallelism, and the
ballot-based rewrite of Listing 7 restores it. Wall-clock Python cannot
exhibit that effect, so this module provides a small discrete simulator
with the three quantities that matter on real hardware:

* **warp steps** — one per issued instruction;
* **divergence** — lanes at different program points serialize. We model
  reconvergence with min-PC scheduling (each step executes every active
  lane that sits at the minimum program counter, the policy real SIMT
  hardware approximates via its reconvergence stack);
* **memory transactions** — the addresses touched in one step cost one
  transaction per distinct aligned segment (coalesced accesses are free
  beyond the first).

Kernels are written as per-lane Python generators yielding
:class:`LaneOp` records; :func:`run_warp` merges 32 of them under the
divergence model and returns :class:`WarpStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = [
    "WARP_SIZE",
    "SEGMENT_BYTES",
    "WORD_BYTES",
    "LaneOp",
    "WarpStats",
    "run_warp",
    "ballot",
    "ffs",
]

WARP_SIZE = 32
SEGMENT_BYTES = 128  # coalescing granularity of current NVIDIA GPUs
WORD_BYTES = 8  # the CSR arrays are int64 in this reproduction


@dataclass(frozen=True)
class LaneOp:
    """One dynamic instruction of one lane.

    ``pc`` is an abstract program counter (stable across lanes for the
    same static instruction); ``addresses`` lists global-memory words the
    lane reads/writes at this step (empty for pure ALU work).
    """

    pc: int
    addresses: tuple[int, ...] = ()


@dataclass
class WarpStats:
    """Cost account for one warp execution."""

    steps: int = 0  # issued warp instructions
    lane_ops: int = 0  # executed lane-instructions (work)
    mem_transactions: int = 0
    active_lane_sum: int = 0  # Σ active lanes per step (for SIMT efficiency)

    @property
    def simt_efficiency(self) -> float:
        """Mean fraction of the warp active per issued instruction."""
        if self.steps == 0:
            return 1.0
        return self.active_lane_sum / (self.steps * WARP_SIZE)

    def merge(self, other: "WarpStats") -> None:
        self.steps += other.steps
        self.lane_ops += other.lane_ops
        self.mem_transactions += other.mem_transactions
        self.active_lane_sum += other.active_lane_sum


def _transactions(addresses: Sequence[int]) -> int:
    """Distinct aligned segments touched by the addresses (in words)."""
    if not addresses:
        return 0
    words_per_segment = SEGMENT_BYTES // WORD_BYTES
    return len({a // words_per_segment for a in addresses})


def run_warp(lane_programs: Sequence[Iterator[LaneOp]]) -> WarpStats:
    """Execute up to 32 lane generators under min-PC reconvergence.

    Each step: find the minimum pending ``pc`` among live lanes, execute
    every lane sitting at it (they advance to their next op), charge one
    warp step, and one memory transaction per distinct segment touched.
    Lanes at other pcs stall — that is the divergence penalty.
    """
    if len(lane_programs) > WARP_SIZE:
        raise ValueError(f"a warp has at most {WARP_SIZE} lanes")
    stats = WarpStats()
    pending: list[LaneOp | None] = []
    programs = list(lane_programs)
    for prog in programs:
        pending.append(next(prog, None))
    while True:
        live = [op for op in pending if op is not None]
        if not live:
            return stats
        pc_min = min(op.pc for op in live)
        active = [i for i, op in enumerate(pending) if op is not None and op.pc == pc_min]
        addresses: list[int] = []
        for i in active:
            addresses.extend(pending[i].addresses)
            pending[i] = next(programs[i], None)
        stats.steps += 1
        stats.lane_ops += len(active)
        stats.active_lane_sum += len(active)
        stats.mem_transactions += _transactions(addresses)


# ----------------------------------------------------------------------
# warp-level primitives used by the ballot kernels
# ----------------------------------------------------------------------
def ballot(predicates: Sequence[bool]) -> int:
    """``__ballot_sync``: bit i set iff lane i's predicate holds."""
    word = 0
    for i, p in enumerate(predicates):
        if p:
            word |= 1 << i
    return word


def ffs(word: int) -> int:
    """``__ffs``: 1-based index of the least-significant set bit; 0 if none."""
    if word == 0:
        return 0
    return (word & -word).bit_length()
