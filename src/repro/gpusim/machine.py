"""Whole-GPU execution model: SMs, resident warps, dynamic scheduling.

Mirrors the paper's evaluation platform at the block diagram level: an
RTX 3080 Ti has 80 multiprocessors; Fringe-SGC distributes work with a
dynamic schedule "to balance the load between the threads" (§3.6). The
machine model here assigns work *chunks* (consecutive root vertices) to
warps through either a static round-robin or a dynamic atomic-counter
schedule, runs each chunk through a warp-level kernel, and reports the
makespan — the maximum per-SM cycle total — plus aggregate SIMT metrics.

The ablation benchmarks use this to reproduce two paper claims:

* Listing 7's ballot strategy beats Listing 6's nested conditionals;
* dynamic scheduling beats static on skewed-degree inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .. import obs
from ..graph.csr import CSRGraph
from .warp import WARP_SIZE, WarpStats

__all__ = ["MachineConfig", "MachineReport", "GPUMachine"]


@dataclass(frozen=True)
class MachineConfig:
    """RTX 3080 Ti-shaped defaults (80 SMs; 1 resident warp modeled per
    SM keeps the simulator fast — occupancy scales both strategies
    equally, so comparisons are unaffected)."""

    num_sms: int = 80
    warps_per_sm: int = 1
    chunk_size: int = WARP_SIZE
    schedule: str = "dynamic"  # or "static"

    def __post_init__(self):
        if self.schedule not in ("dynamic", "static"):
            raise ValueError(f"unknown schedule {self.schedule!r}")
        if self.num_sms < 1 or self.warps_per_sm < 1 or self.chunk_size < 1:
            raise ValueError("machine dimensions must be positive")


@dataclass
class MachineReport:
    """Aggregate of one simulated kernel launch."""

    makespan_steps: int = 0  # max per-warp-slot cycle total (the bottleneck)
    total_steps: int = 0
    total_lane_ops: int = 0
    total_mem_transactions: int = 0
    active_lane_sum: int = 0
    chunks: int = 0

    @property
    def simt_efficiency(self) -> float:
        if self.total_steps == 0:
            return 1.0
        return self.active_lane_sum / (self.total_steps * WARP_SIZE)

    @property
    def load_imbalance(self) -> float:
        """makespan / ideal (total work evenly spread over warp slots)."""
        if self.makespan_steps == 0:
            return 1.0
        ideal = self.total_steps / max(self._slots, 1)
        return self.makespan_steps / max(ideal, 1e-12)

    _slots: int = 1


class GPUMachine:
    """Executes a warp kernel over a root-vertex space."""

    def __init__(self, config: MachineConfig | None = None):
        self.config = config or MachineConfig()

    def launch(
        self,
        graph: CSRGraph,
        kernel: Callable[[CSRGraph, Sequence[int]], WarpStats],
        *,
        roots: Sequence[int] | None = None,
    ) -> MachineReport:
        """Run ``kernel`` over every chunk of roots; return the report.

        ``kernel(graph, chunk_roots)`` must return a :class:`WarpStats`.
        """
        cfg = self.config
        if roots is None:
            roots = np.arange(graph.num_vertices, dtype=np.int64)
        chunks = [
            roots[i : i + cfg.chunk_size] for i in range(0, len(roots), cfg.chunk_size)
        ]
        slots = cfg.num_sms * cfg.warps_per_sm
        slot_cycles = [0] * slots
        report = MachineReport()
        report._slots = slots
        report.chunks = len(chunks)

        if cfg.schedule == "static":
            assignment = [(i % slots) for i in range(len(chunks))]
        else:
            assignment = None  # dynamic: least-loaded slot takes the next chunk

        with obs.span("gpusim.launch", schedule=cfg.schedule, chunks=len(chunks)):
            for i, chunk in enumerate(chunks):
                stats = kernel(graph, list(chunk))
                if assignment is not None:
                    slot = assignment[i]
                else:
                    # atomic work counter: the first warp slot to finish grabs
                    # the next chunk — equivalent to always loading the
                    # currently least-loaded slot
                    slot = min(range(slots), key=slot_cycles.__getitem__)
                slot_cycles[slot] += stats.steps
                report.total_steps += stats.steps
                report.total_lane_ops += stats.lane_ops
                report.total_mem_transactions += stats.mem_transactions
                report.active_lane_sum += stats.active_lane_sum
        report.makespan_steps = max(slot_cycles, default=0)
        self._record_metrics(report, slots)
        return report

    @staticmethod
    def _record_metrics(report: MachineReport, slots: int) -> None:
        """Surface the launch's SIMT report as metrics (§3.6 quantities)."""
        registry = obs.active_metrics()
        if registry is None:
            return
        registry.gauge("gpusim_simt_efficiency").set(report.simt_efficiency)
        registry.gauge("gpusim_load_imbalance").set(report.load_imbalance)
        registry.gauge("gpusim_warp_occupancy").set(
            min(1.0, report.chunks / slots) if slots else 0.0
        )
        registry.counter("gpusim_warp_steps_total").inc(report.total_steps)
        registry.counter("gpusim_lane_ops_total").inc(report.total_lane_ops)
        registry.counter("gpusim_mem_transactions_total").inc(report.total_mem_transactions)
        registry.counter("gpusim_launches_total").inc()
