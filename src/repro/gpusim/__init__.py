"""SIMT warp-execution simulator for the paper's parallelization study."""

from .warp import WARP_SIZE, LaneOp, WarpStats, ballot, ffs, run_warp
from .machine import GPUMachine, MachineConfig, MachineReport
from .counting import EdgeCoreKernel, KernelResult
from .kernels import (
    ballot_warp_programs,
    naive_lane_program,
    run_ballot_warp,
    run_naive_warp,
    venn_binary_search_programs,
)

__all__ = [
    "WARP_SIZE",
    "EdgeCoreKernel",
    "KernelResult",
    "LaneOp",
    "WarpStats",
    "ballot",
    "ffs",
    "run_warp",
    "GPUMachine",
    "MachineConfig",
    "MachineReport",
    "ballot_warp_programs",
    "naive_lane_program",
    "run_ballot_warp",
    "run_naive_warp",
    "venn_binary_search_programs",
]
