"""Per-figure workload definitions (graphs, patterns, systems, budgets).

One entry per evaluation artifact of the paper. Scales are chosen so the
full ``pytest benchmarks/ --benchmark-only`` run finishes on a laptop
while preserving each figure's qualitative shape (who wins, the trend as
fringes are added, where DNFs appear).
"""

from __future__ import annotations

from ..graph import datasets
from ..graph import generators as gen
from ..graph.csr import CSRGraph
from ..patterns import catalog
from ..patterns.pattern import Pattern

__all__ = [
    "ten_inputs",
    "fig08_patterns",
    "fig09_patterns",
    "fig10_patterns",
    "fig11_patterns",
    "fig12_series",
    "fig13_series",
    "fig14_series",
    "fig15_patterns",
    "kron_input",
    "internet_input",
    "frontier_patterns",
    "frontier_inputs",
    "pool_patterns",
    "pool_inputs",
    "ALL_SYSTEMS",
    "FRINGE_ONLY",
    "FRONTIER_VS_SERIAL",
    "POOL_SYSTEMS",
]

ALL_SYSTEMS = ("fringe-sgc", "graphset-like", "tdfs-like", "stmatch-like")
FRINGE_ONLY = ("fringe-sgc",)
FRONTIER_VS_SERIAL = ("fringe-frontier", "fringe-serial")
# serial reference first so every cell is cross-checked against it
POOL_SYSTEMS = ("fringe-serial", "fringe-fork", "fringe-pool")


def ten_inputs(scale: str = "tiny") -> dict[str, CSRGraph]:
    """The Table 1 inputs (synthetic stand-ins) for geomean figures."""
    return {name: datasets.make(name, scale) for name in datasets.dataset_names()}


def kron_input(scale: str = "tiny") -> dict[str, CSRGraph]:
    """The per-input study graph (Fig. 15 uses kron_g500-logn20)."""
    return {"kron_g500-logn20": datasets.make("kron_g500-logn20", scale)}


def internet_input(scale: str = "small") -> dict[str, CSRGraph]:
    """The Fig. 3 counting-explosion graph."""
    return {"internet": datasets.make("internet", scale)}


def small_fig4_graph() -> dict[str, CSRGraph]:
    """A reduced Kronecker input for the §6.2 fringe-scaling series (the
    patterns are heavy enough that the tiny standard input suffices)."""
    return {"kron-small": gen.kronecker(7, 8, seed=16)}


# ----------------------------------------------------------------------
# §6.1 figures
# ----------------------------------------------------------------------
def fig08_patterns() -> dict[str, Pattern]:
    """1-vertex core: k-stars, k = 2..6."""
    return catalog.vertex_core_family(6)


def fig09_patterns() -> dict[str, Pattern]:
    """2-vertex (edge) core, growing fringe counts up to 7 vertices."""
    return catalog.edge_core_family()


def fig10_patterns() -> dict[str, Pattern]:
    """triangle core."""
    return catalog.triangle_core_family()


def fig11_patterns() -> dict[str, Pattern]:
    """wedge core."""
    return catalog.wedge_core_family()


# ----------------------------------------------------------------------
# §6.2 systematic fringe addition (fringe-sgc only; others cannot run)
# ----------------------------------------------------------------------
def _fig4_series(anchors: tuple[int, ...], upto: int) -> dict[str, Pattern]:
    base = catalog.fig4_pattern()
    out: dict[str, Pattern] = {"fig4+0": base}
    for extra in range(2, upto + 1, 2):
        out[f"fig4+{extra}"] = base.with_fringe(anchors, extra)
    return out


def fig12_series(upto: int = 10) -> dict[str, Pattern]:
    """Fig. 12: adding tail fringes to the Fig. 4 pattern."""
    return _fig4_series((0,), upto)


def fig13_series(upto: int = 10) -> dict[str, Pattern]:
    """Fig. 13: adding wedge fringes."""
    return _fig4_series((0, 1), upto)


def fig14_series(upto: int = 10) -> dict[str, Pattern]:
    """Fig. 14: adding tri-fringes."""
    return _fig4_series((0, 1, 2), upto)


# ----------------------------------------------------------------------
# frontier-vs-serial: patterns with >= 3 core vertices, where the
# vectorized frontier matcher does the heavy lifting (the 1-/2-core
# families bottleneck on venn/fc, which both systems share).
# ----------------------------------------------------------------------
def frontier_patterns() -> dict[str, Pattern]:
    return {
        "triangle": catalog.triangle(),
        "4-cycle": catalog.four_cycle(),
        "diamond": catalog.diamond(),
        "4-clique": catalog.four_clique(),
        "tailed 4-clique": catalog.tailed_four_clique(1),
        "3-tailed 4-clique": catalog.tailed_four_clique(3),
    }


def frontier_inputs(scale: str = "tiny") -> dict[str, CSRGraph]:
    """One Kronecker + two dataset stand-ins (BENCH_frontier.json cells)."""
    return {
        name: datasets.make(name, scale)
        for name in ("kron_g500-logn20", "amazon0601", "internet")
    }


# ----------------------------------------------------------------------
# fork-pool vs persistent-pool (BENCH_pool.json): small inputs where the
# per-call fork spin-up dominates — exactly the latency the resident
# pool amortizes away.
# ----------------------------------------------------------------------
def pool_patterns() -> dict[str, Pattern]:
    return {
        "wedge": catalog.wedge(),
        "3-star": catalog.star(3),
        "diamond": catalog.diamond(),
        "4-star": catalog.star(4),
    }


def pool_inputs(scale: str = "tiny") -> dict[str, CSRGraph]:
    return {
        name: datasets.make(name, scale)
        for name in ("kron_g500-logn20", "amazon0601")
    }


# ----------------------------------------------------------------------
# Fig. 15 per-input study
# ----------------------------------------------------------------------
def fig15_patterns() -> dict[str, Pattern]:
    """Vertex, edge, and triangle cores combined (the Fig. 15 x-axis)."""
    out: dict[str, Pattern] = {}
    out.update({k: v for k, v in catalog.vertex_core_family(4).items()})
    out["triangle"] = catalog.triangle()
    out["tailed triangle"] = catalog.tailed_triangle()
    out["diamond"] = catalog.diamond()
    out["4-clique"] = catalog.four_clique()
    out["tailed 4-clique"] = catalog.tailed_four_clique(1)
    return out
