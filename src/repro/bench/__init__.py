"""Benchmark harness: figure runners, workloads, reporting."""

from .harness import FigureResult, Measurement, SYSTEMS, geomean, run_cell, run_figure
from .plotting import ascii_chart, figure_chart
from .reporting import load_figure, render_figure, render_speedups, save_figure
from . import workloads

__all__ = [
    "FigureResult",
    "Measurement",
    "SYSTEMS",
    "geomean",
    "run_cell",
    "run_figure",
    "ascii_chart",
    "figure_chart",
    "load_figure",
    "render_figure",
    "render_speedups",
    "save_figure",
    "workloads",
]
