"""Benchmark harness: run (system × pattern × graph) cells like the paper.

The paper's §6 methodology: run each SGC system on each input graph with a
per-run time budget (half an hour there; configurable and much smaller
here), report throughput = graph edges / seconds (higher is better),
aggregate across the ten inputs with the geometric mean, and mark systems
that exceed the budget as "did not finish" — those cells are excluded the
way the paper drops codes "where more than one input times out".

Every cell also cross-checks the returned count against the fringe
engine's, so a benchmark run doubles as an end-to-end correctness test.

Runs leave a trajectory: with ``record_dir=`` (or the ``REPRO_BENCH_DIR``
environment variable) set, :func:`run_figure` appends one JSONL record
per (system × pattern × graph) cell to ``BENCH_<figure>.json`` in that
directory, as each cell completes — so even interrupted sweeps are
recorded, and successive benchmark runs populate the ``BENCH_*.json``
trajectory going forward.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from .. import obs
from ..baselines import (
    BaselineTimeout,
    IEPCounter,
    StackEnumerator,
    TDFSCounter,
)
from ..core.engine import EngineConfig
from ..graph.csr import CSRGraph
from ..patterns.pattern import Pattern
from ..runtime import Runtime

__all__ = [
    "Measurement",
    "CellResult",
    "SYSTEMS",
    "run_cell",
    "run_figure",
    "geomean",
    "FigureResult",
    "measurement_record",
    "RecordAppender",
]


class RecordAppender:
    """Append JSONL records with one atomic ``write()`` each.

    Concurrent benchmark runs append to the same ``BENCH_<figure>.json``;
    buffered ``file.write`` calls from separate processes can interleave
    mid-line. Opening with ``O_APPEND`` and emitting each record as a
    single ``os.write`` makes every line land contiguously (POSIX appends
    are atomic seek+write), so the file stays parseable no matter how
    many runs share it.
    """

    def __init__(self, path: str | Path):
        self._fd = os.open(str(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)

    def append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        os.write(self._fd, line.encode("utf-8"))

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "RecordAppender":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass(frozen=True)
class Measurement:
    system: str
    pattern: str
    graph: str
    status: str  # "ok" | "dnf" | "unsupported"
    count: int | None
    seconds: float | None
    edges: int

    @property
    def throughput(self) -> float | None:
        """Edges per second (the paper's normalized §6 metric)."""
        if self.status != "ok" or not self.seconds:
            return None
        return self.edges / self.seconds


# ----------------------------------------------------------------------
# systems under test
# ----------------------------------------------------------------------
# Dedicated runtime for benchmark runs: the plan cache amortizes pattern
# compilation across the inputs of a figure without polluting (or being
# skewed by) the process-wide serving runtime.
_BENCH_RUNTIME = Runtime()


def _fringe_runner(
    pattern: Pattern,
    engine: str = "auto",
    config: EngineConfig | None = None,
    parallel=None,
):
    def run(graph: CSRGraph, timeout_s: float) -> int | None:
        return _BENCH_RUNTIME.count(
            graph, pattern, engine=engine, config=config, parallel=parallel
        ).count

    return run


def _parallel_config(pool: str):
    # small chunks so two workers genuinely split the tiny bench inputs
    # (the pool backends bypass themselves when one chunk covers the graph)
    from ..parallel.pool import ParallelConfig

    return ParallelConfig(num_workers=2, chunk_size=64, pool=pool)


# The frontier-vs-serial comparison pins both sides to general (non-
# specialized) execution: "fringe-serial" is the per-match stack matcher
# with scalar venn + iterative fc, "fringe-frontier" the vectorized
# frontier-at-a-time backend. Same plans, same counts — the cell records
# isolate the matching/evaluation substrate.
_SERIAL_CONFIG = EngineConfig(fc_impl="iterative", specialized=False)


def _baseline_runner(cls):
    def make(pattern: Pattern):
        try:
            counter = cls(pattern)
        except ValueError:
            return None  # pattern unsupported (size limit)

        def run(graph: CSRGraph, timeout_s: float) -> int | None:
            return counter.count(graph, timeout_s=timeout_s).count

        return run

    return make


SYSTEMS: dict[str, Callable[[Pattern], Callable | None]] = {
    "fringe-sgc": lambda pat: _fringe_runner(pat),
    "fringe-frontier": lambda pat: _fringe_runner(pat, engine="frontier"),
    "fringe-serial": lambda pat: _fringe_runner(pat, engine="general", config=_SERIAL_CONFIG),
    "graphset-like": _baseline_runner(IEPCounter),
    "tdfs-like": _baseline_runner(TDFSCounter),
    "stmatch-like": _baseline_runner(StackEnumerator),
    # the pool comparison (BENCH_pool.json): per-call fork pool vs the
    # persistent spawn pool, both 2 workers over the general engine
    "fringe-fork": lambda pat: _fringe_runner(
        pat, engine="general", parallel=_parallel_config("fork")
    ),
    "fringe-pool": lambda pat: _fringe_runner(
        pat, engine="general", parallel=_parallel_config("persistent")
    ),
}


def run_cell(
    system: str,
    pattern: Pattern,
    pattern_name: str,
    graph: CSRGraph,
    graph_name: str,
    *,
    timeout_s: float = 10.0,
) -> Measurement:
    """One (system, pattern, graph) measurement with DNF semantics."""
    runner = SYSTEMS[system](pattern)
    if runner is None:
        return Measurement(system, pattern_name, graph_name, "unsupported", None, None, graph.num_edges)
    with obs.span("bench.cell", system=system, pattern=pattern_name, graph=graph_name):
        start = time.perf_counter()
        try:
            count = runner(graph, timeout_s)
        except BaselineTimeout:
            return Measurement(system, pattern_name, graph_name, "dnf", None, None, graph.num_edges)
        elapsed = time.perf_counter() - start
    if elapsed > timeout_s:
        # the fringe engine has no cooperative deadline; censor post hoc
        return Measurement(system, pattern_name, graph_name, "dnf", None, None, graph.num_edges)
    return Measurement(system, pattern_name, graph_name, "ok", count, elapsed, graph.num_edges)


def geomean(values: Sequence[float]) -> float:
    vals = [v for v in values if v is not None and v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


@dataclass
class FigureResult:
    """All measurements of one figure plus derived summary rows."""

    figure: str
    measurements: list[Measurement] = field(default_factory=list)

    def geomean_throughput(self, system: str, pattern_name: str) -> float | None:
        cells = [
            m
            for m in self.measurements
            if m.system == system and m.pattern == pattern_name
        ]
        if not cells:
            return None
        # paper: drop a system from a pattern when >1 input times out
        dnf = sum(1 for m in cells if m.status != "ok")
        if dnf > 1:
            return None
        tps = [m.throughput for m in cells if m.throughput]
        return geomean(tps) if tps else None

    def speedup(self, pattern_name: str, over: str, of: str = "fringe-sgc") -> float | None:
        a = self.geomean_throughput(of, pattern_name)
        b = self.geomean_throughput(over, pattern_name)
        if a is None or b is None or b == 0:
            return None
        return a / b

    def systems(self) -> list[str]:
        return sorted({m.system for m in self.measurements})

    def patterns(self) -> list[str]:
        seen: list[str] = []
        for m in self.measurements:
            if m.pattern not in seen:
                seen.append(m.pattern)
        return seen

    def verify_counts_agree(self) -> None:
        """Every ok cell of one (pattern, graph) must report one count."""
        by_key: dict[tuple[str, str], set[int]] = {}
        for m in self.measurements:
            if m.status == "ok":
                by_key.setdefault((m.pattern, m.graph), set()).add(m.count)
        for key, counts in by_key.items():
            if len(counts) != 1:
                raise AssertionError(f"count disagreement on {key}: {sorted(counts)}")


def measurement_record(figure: str, m: Measurement) -> dict:
    """One cell as a plain JSON-serializable record (the BENCH_*.json row)."""
    return {
        "figure": figure,
        "system": m.system,
        "pattern": m.pattern,
        "graph": m.graph,
        "status": m.status,
        "count": None if m.count is None else str(m.count),  # counts overflow JSON readers
        "seconds": m.seconds,
        "edges": m.edges,
        "throughput_eps": m.throughput,
        "unix_time": time.time(),
    }


def _bench_record_path(figure: str, record_dir) -> Path | None:
    if record_dir is None:
        record_dir = os.environ.get("REPRO_BENCH_DIR") or None
    if record_dir is None:
        return None
    directory = Path(record_dir)
    directory.mkdir(parents=True, exist_ok=True)
    return directory / f"BENCH_{figure}.json"


def run_figure(
    figure: str,
    patterns: dict[str, Pattern],
    graphs: dict[str, CSRGraph],
    systems: Sequence[str],
    *,
    timeout_s: float = 10.0,
    record_dir: str | Path | None = None,
) -> FigureResult:
    """Full sweep for one figure; counts are cross-checked.

    Mirrors the paper's reporting rule while saving wall clock: once a
    (system, pattern) series has two DNF inputs it is dropped from the
    figure anyway, so its remaining cells are marked DNF without running.

    ``record_dir`` (default: the ``REPRO_BENCH_DIR`` environment
    variable) selects a directory to append per-cell JSONL records to,
    one line per cell into ``BENCH_<figure>.json`` as cells complete.
    """
    record_path = _bench_record_path(figure, record_dir)
    result = FigureResult(figure=figure)
    record_fh = RecordAppender(record_path) if record_path else None
    try:
        with obs.span("bench.figure", figure=figure):
            for pattern_name, pattern in patterns.items():
                dnf_count = {system: 0 for system in systems}
                for graph_name, graph in graphs.items():
                    for system in systems:
                        if dnf_count[system] > 1:
                            cell = Measurement(
                                system, pattern_name, graph_name, "dnf", None, None, graph.num_edges
                            )
                        else:
                            cell = run_cell(
                                system, pattern, pattern_name, graph, graph_name,
                                timeout_s=timeout_s,
                            )
                            if cell.status == "dnf":
                                dnf_count[system] += 1
                        result.measurements.append(cell)
                        if record_fh is not None:
                            record_fh.append(measurement_record(figure, cell))
    finally:
        if record_fh is not None:
            record_fh.close()
    result.verify_counts_agree()
    return result
