"""ASCII plots of benchmark figures (no plotting dependencies).

The paper's Figures 8–15 are log-scale line charts: patterns on the
x-axis, one series per system, throughput on the y-axis. This module
renders the same series as a terminal chart so `python -m repro.bench.report`
can show figure *shapes*, not just tables.
"""

from __future__ import annotations

import math

from .harness import FigureResult

__all__ = ["ascii_chart", "figure_chart"]

_MARKERS = "o*x+#@%&"


def ascii_chart(
    series: dict[str, list[float | None]],
    labels: list[str],
    *,
    height: int = 12,
    title: str = "",
    log: bool = True,
) -> str:
    """Render named series over shared x labels as a text chart.

    ``None`` values (DNF) leave gaps. The y-axis is log10 by default,
    matching the paper's figures.
    """
    if not series or not labels:
        return "(no data)"
    values = [v for vs in series.values() for v in vs if v is not None and v > 0]
    if not values:
        return "(all DNF)"

    def transform(v: float) -> float:
        return math.log10(v) if log else v

    lo = min(transform(v) for v in values)
    hi = max(transform(v) for v in values)
    if hi - lo < 1e-9:
        hi = lo + 1.0
    col_width = max(max((len(x) for x in labels), default=4) + 1, 7)
    width = col_width * len(labels)

    grid = [[" "] * width for _ in range(height)]
    for si, (name, vs) in enumerate(sorted(series.items())):
        marker = _MARKERS[si % len(_MARKERS)]
        for xi, v in enumerate(vs):
            if v is None or v <= 0:
                continue
            frac = (transform(v) - lo) / (hi - lo)
            row = height - 1 - int(round(frac * (height - 1)))
            col = xi * col_width + col_width // 2
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        frac = 1.0 - r / (height - 1)
        y_val = lo + frac * (hi - lo)
        y_label = f"1e{y_val:5.1f}" if log else f"{y_val:8.2g}"
        lines.append(f"{y_label} |" + "".join(row))
    lines.append(" " * 8 + "+" + "-" * width)
    x_axis = " " * 9
    for lab in labels:
        x_axis += lab[: col_width - 1].ljust(col_width)
    lines.append(x_axis)
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(sorted(series))
    )
    lines.append(" " * 9 + legend)
    return "\n".join(lines)


def figure_chart(result: FigureResult, *, height: int = 12) -> str:
    """Chart a :class:`FigureResult` like the paper's figures."""
    labels = result.patterns()
    series = {
        system: [result.geomean_throughput(system, p) for p in labels]
        for system in result.systems()
    }
    return ascii_chart(
        series, labels, height=height, title=f"{result.figure} — edges/s (log scale)"
    )
