"""Rendering and persistence for benchmark results.

Emits the same row/series shapes the paper's figures plot: patterns along
the x-axis, one line per system, geometric-mean throughput on a log-scale
y-axis. The ASCII renderer prints exactly those series; the JSON writer
feeds EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from pathlib import Path

from .harness import FigureResult

__all__ = ["render_figure", "save_figure", "load_figure", "render_speedups"]


def _fmt_tp(value: float | None) -> str:
    if value is None:
        return "DNF"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k"
    return f"{value:.1f}"


def render_figure(result: FigureResult, *, metric: str = "edges/s (geomean)") -> str:
    """ASCII table: one row per system, one column per pattern."""
    patterns = result.patterns()
    systems = result.systems()
    width = max([len(s) for s in systems] + [12])
    col = max([len(p) for p in patterns] + [10]) + 1
    lines = [f"== {result.figure} — {metric} =="]
    header = " " * width + "".join(p.rjust(col) for p in patterns)
    lines.append(header)
    for system in systems:
        cells = [
            _fmt_tp(result.geomean_throughput(system, p)).rjust(col) for p in patterns
        ]
        lines.append(system.ljust(width) + "".join(cells))
    return "\n".join(lines)


def render_speedups(result: FigureResult, over: str, of: str = "fringe-sgc") -> str:
    """Speedup of ``of`` over one baseline, per pattern (paper §6.1)."""
    rows = []
    for p in result.patterns():
        s = result.speedup(p, over=over, of=of)
        rows.append(f"  {p:<24} {s:.2f}x" if s is not None else f"  {p:<24} n/a")
    return f"speedup of {of} over {over}:\n" + "\n".join(rows)


def save_figure(result: FigureResult, path: str | Path) -> None:
    payload = {
        "figure": result.figure,
        "measurements": [
            {
                "system": m.system,
                "pattern": m.pattern,
                "graph": m.graph,
                "status": m.status,
                "count": None if m.count is None else str(m.count),
                "seconds": m.seconds,
                "edges": m.edges,
            }
            for m in result.measurements
        ],
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1))


def load_figure(path: str | Path) -> FigureResult:
    from .harness import Measurement

    data = json.loads(Path(path).read_text())
    result = FigureResult(figure=data["figure"])
    for m in data["measurements"]:
        result.measurements.append(
            Measurement(
                system=m["system"],
                pattern=m["pattern"],
                graph=m["graph"],
                status=m["status"],
                count=None if m["count"] is None else int(m["count"]),
                seconds=m["seconds"],
                edges=m["edges"],
            )
        )
    return result
