"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``count``
    Count a pattern in a graph::

        python -m repro count --graph web.el --pattern "triangle + 2x0"
        python -m repro count --dataset kron_g500-logn20 --pattern 4-star
        python -m repro count --dataset internet --pattern fig4 --engine general

    Engine knobs and the parallel path are reachable without writing
    Python: ``--workers N --schedule strided`` selects the fork-pool
    backend, ``--venn-impl/--fc-impl/--batch-size`` tune the general
    engine, and ``--stats`` prints the runtime's per-stage breakdown
    (compile vs. match vs. venn/fc time, plan-cache hits/misses)::

        python -m repro count --dataset internet --pattern diamond \
            --workers 8 --schedule dynamic --stats

    Observability (``repro.obs``): ``--trace FILE`` writes a JSONL span
    trace of the run (compile → execute → per-batch venn/fc),
    ``--metrics`` prints the collected metrics table, and ``--prom FILE``
    dumps them in Prometheus text format::

        python -m repro count --dataset internet --pattern diamond \
            --engine general --trace trace.jsonl --metrics --prom metrics.prom

``decompose``
    Show a pattern's core/fringe decomposition and matching order::

        python -m repro decompose --pattern "edge + 3x0&1 + 2x0"

``list-cores``
    Subgraph-matching mode (§2): stream core locations with their
    surrounding pattern mass::

        python -m repro list-cores --dataset internet --pattern diamond --top 10

``signatures``
    Per-vertex graphlet-degree signatures, printed or as CSV::

        python -m repro signatures --dataset internet --out sig.csv

``serve``
    Boot the asyncio counting service (``repro.serve``) over named
    graphs — dynamic batching, request coalescing, result caching,
    admission control::

        python -m repro serve --dataset internet --dataset amazon0601 --port 8765
        python -m repro serve --graph web.el --max-queue 256 --cache-ttl 600

``query``
    Query a running server with the blocking client::

        python -m repro query --graph-name internet --pattern triangle
        python -m repro query --graph-name internet --pattern diamond --timeout 5 --json

``datasets``
    List the built-in Table 1 dataset stand-ins.
"""

from __future__ import annotations

import argparse
import time

from .core.engine import EngineConfig
from .core.venn import VENN_IMPLS
from .graph import datasets
from .graph.io import load_graph
from .parallel.pool import POOLS
from .parallel.schedule import SCHEDULES
from .patterns.decompose import decompose
from .patterns.dsl import parse_pattern, pattern_names

__all__ = ["main"]


def _load_graph(args):
    if args.graph and args.dataset:
        raise SystemExit("give either --graph FILE or --dataset NAME, not both")
    if args.graph:
        graph, name = load_graph(args.graph), args.graph
    elif args.dataset:
        graph, name = datasets.make(args.dataset, args.scale), args.dataset
    else:
        raise SystemExit("a graph is required: --graph FILE or --dataset NAME")
    if getattr(args, "relabel_degree", False):
        graph = graph.relabel_by_degree()
    return graph, name


def _add_graph_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--graph", help="graph file (.el/.txt/.mtx/.gr/.npz)")
    p.add_argument("--dataset", help="built-in dataset name (see `datasets`)")
    p.add_argument("--scale", default="small", choices=["tiny", "small", "large"])
    p.add_argument("--relabel-degree", action="store_true",
                   help="renumber vertices by descending degree before counting "
                        "(counts are invariant; improves chunk load balance)")


def _cmd_count(args) -> int:
    from contextlib import nullcontext

    from . import obs
    from .parallel.pool import ParallelConfig
    from .runtime import get_runtime

    graph, gname = _load_graph(args)
    pattern = parse_pattern(args.pattern)
    cfg = EngineConfig(
        venn_impl=args.venn_impl,
        fc_impl=args.fc_impl,
        batch_size=args.batch_size,
        max_frontier_rows=args.max_frontier_rows,
    )
    parallel = (
        ParallelConfig(num_workers=args.workers, schedule=args.schedule, pool=args.pool)
        if args.workers > 1 or args.pool == "persistent"
        else None
    )
    observer = (
        obs.Observer(trace=bool(args.trace), metrics=bool(args.metrics or args.prom))
        if (args.trace or args.metrics or args.prom)
        else None
    )
    runtime = get_runtime()

    def run_count():
        with observer if observer is not None else nullcontext():
            return runtime.count(
                graph, pattern, engine=args.engine, config=cfg, parallel=parallel
            )

    t0 = time.perf_counter()
    if args.timeout is not None:
        # The same Deadline machinery the serve pipeline uses. Counting is
        # not cooperatively cancellable, so the count runs on a daemon
        # thread and an expired deadline abandons it for a clean exit.
        import sys
        import threading

        from .serve.protocol import DEADLINE_EXCEEDED, Deadline

        if args.timeout <= 0:
            raise SystemExit("--timeout must be positive")
        deadline = Deadline.after(args.timeout)
        box: dict = {}

        def work():
            try:
                box["res"] = run_count()
            except BaseException as exc:  # re-raised on the main thread
                box["err"] = exc

        worker = threading.Thread(target=work, daemon=True)
        worker.start()
        worker.join(deadline.remaining())
        if worker.is_alive():
            print(
                f"error: {DEADLINE_EXCEEDED}: count did not finish within "
                f"{args.timeout:g} s",
                file=sys.stderr,
            )
            return 124
        if "err" in box:
            raise box["err"]
        res = box["res"]
    else:
        res = run_count()
    dt = time.perf_counter() - t0
    print(f"graph    : {gname} ({graph.num_vertices:,} vertices, {graph.num_edges:,} edges)")
    print(f"pattern  : {args.pattern} ({pattern.n} vertices, {pattern.num_edges} edges)")
    print(f"count    : {res.count:,}")
    print(f"engine   : {res.engine}")
    print(f"time     : {dt:.3f} s  ({graph.num_edges / dt:,.0f} edges/s)")
    if args.stats and res.stats is not None:
        s = res.stats
        print(f"backend  : {s.backend}")
        print(f"plan     : {'cache hit' if s.plan_cache_hit else 'compiled'} "
              f"(compile {s.compile_s*1e3:.2f} ms; runtime cache "
              f"{s.cache_hits} hits / {s.cache_misses} misses)")
        print(f"execute  : {s.execute_s*1e3:.2f} ms  "
              f"(match {s.match_s*1e3:.2f} ms, venn/fc {s.venn_fc_s*1e3:.2f} ms, "
              f"{s.batches_flushed} batches)")
        if s.workers:
            print(f"workers  : {s.workers} processes")
    if observer is not None:
        if args.trace:
            n = obs.write_trace_jsonl(observer.tracer, args.trace)
            print(f"trace    : {n} spans -> {args.trace}")
        if args.prom:
            from pathlib import Path

            Path(args.prom).write_text(
                obs.prometheus_text(observer.metrics), encoding="utf-8"
            )
            print(f"prom     : metrics -> {args.prom}")
        if args.metrics:
            print("metrics  :")
            for line in obs.metrics_table(observer.metrics).splitlines():
                print(f"  {line}")
    return 0


def _cmd_decompose(args) -> int:
    pattern = parse_pattern(args.pattern)
    d = decompose(pattern)
    print(f"pattern      : {pattern.n} vertices, {pattern.num_edges} edges")
    print(f"core         : {list(d.core_vertices)} ({d.core_pattern.num_edges} core edges)")
    print(f"matching ord.: {list(d.matching_order)} (core-local ids)")
    kinds = {1: "tail", 2: "wedge", 3: "tri-fringe"}
    for ft in d.fringe_types:
        kind = kinds.get(ft.arity, f"{ft.arity}-anchor")
        print(f"fringe type  : {ft.count} x {kind} anchored at {sorted(ft.anchors)}")
    print(f"q (anchored) : {d.q}")
    return 0


def _cmd_list_cores(args) -> int:
    from .core.listing import top_cores

    graph, gname = _load_graph(args)
    pattern = parse_pattern(args.pattern)
    print(f"top {args.top} core placements of {args.pattern!r} in {gname}:")
    for m in top_cores(graph, pattern, args.top):
        frac = float(m.embeddings)
        print(f"  core={list(m.vertices)}  embeddings≈{frac:,.1f}  (raw choices {m.raw_choices:,})")
    return 0


def _cmd_signatures(args) -> int:
    from .core.signatures import SIGNATURE_COLUMNS, signature_matrix

    graph, gname = _load_graph(args)
    mat = signature_matrix(graph)
    if args.out:
        import csv

        with open(args.out, "w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            writer.writerow(("vertex",) + SIGNATURE_COLUMNS)
            for v in range(graph.num_vertices):
                writer.writerow([v] + [int(x) for x in mat[v]])
        print(f"wrote {graph.num_vertices} signatures to {args.out}")
        return 0
    header = f"{'vertex':>8}" + "".join(f"{c:>14}" for c in SIGNATURE_COLUMNS)
    print(header)
    order = mat[:, 0].argsort()[::-1][: args.top]
    for v in order.tolist():
        print(f"{v:>8}" + "".join(f"{int(x):>14,}" for x in mat[v]))
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .serve import CountingService, GraphRegistry, ServiceConfig
    from .serve.http import serve_forever

    if not args.dataset and not args.graph:
        raise SystemExit("register at least one graph: --dataset NAME and/or --graph FILE")
    registry = GraphRegistry()

    def loaded(entry):
        if args.relabel_degree:
            entry = registry.register(
                entry.name,
                entry.graph.relabel_by_degree(),
                source=f"{entry.source}:relabel-degree",
            )
        print(f"loaded  : {entry.name} ({entry.graph.num_vertices:,} vertices, "
              f"{entry.graph.num_edges:,} edges) from {entry.source}")

    for name in args.dataset or []:
        loaded(registry.load_dataset(name, args.scale))
    for path in args.graph or []:
        loaded(registry.load_file(path))
    config = ServiceConfig(
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        batch_window_s=args.batch_window,
        executor_workers=args.executor_workers,
        executor="pool" if args.pool == "persistent" else "thread",
        pool_workers=args.pool_workers,
        result_cache_size=args.cache_size,
        result_cache_ttl_s=args.cache_ttl,
        default_timeout_s=args.default_timeout,
    )
    service = CountingService(registry, config=config)

    def on_bound(addr):
        print(f"serving : http://{addr[0]}:{addr[1]}  "
              f"(POST /v1/count, GET /v1/healthz, GET /v1/metrics)")

    try:
        asyncio.run(serve_forever(service, args.host, args.port, on_bound=on_bound))
    except KeyboardInterrupt:
        print("\nshutting down")
    return 0


def _cmd_query(args) -> int:
    import json as _json
    import sys

    from .serve.client import CountClient, ServeClientError

    client = CountClient(args.host, args.port, timeout=args.client_timeout)
    try:
        res = client.count(
            args.graph_name,
            args.pattern,
            engine=args.engine,
            timeout_s=args.timeout,
            use_cache=not args.no_cache,
        )
    except ServeClientError as exc:
        print(f"error: {exc.code}: {exc.message}", file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(res.to_json(), sort_keys=True))
        return 0
    print(f"graph    : {res.graph} (fingerprint {res.fingerprint[:12]})")
    print(f"pattern  : {res.pattern}")
    print(f"count    : {res.count:,}")
    print(f"engine   : {res.engine}")
    served = "result cache" if res.cached else (
        "coalesced with an in-flight query" if res.coalesced else
        f"executed (batch of {res.batch_size})"
    )
    print(f"served   : {served}")
    print(f"time     : {res.elapsed_s:.3f} s server-side")
    return 0


def _cmd_datasets(_args) -> int:
    print(f"{'name':<20}{'type':<24}{'source':<8}{'paper |V|':>12}{'paper |E|':>14}")
    for spec in datasets.DATASETS.values():
        print(
            f"{spec.name:<20}{spec.kind:<24}{spec.source:<8}"
            f"{spec.paper_vertices:>12,}{spec.paper_edges:>14,}"
        )
    print("\npattern names:", ", ".join(pattern_names()))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description="Fringe-SGC subgraph counting")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("count", help="count a pattern in a graph")
    _add_graph_args(p)
    p.add_argument("--pattern", required=True, help="pattern expression (DSL)")
    p.add_argument("--engine", default="auto",
                   choices=["auto", "general", "specialized", "frontier"])
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (>1 enables the parallel backend)")
    p.add_argument("--schedule", default="dynamic", choices=list(SCHEDULES),
                   help="work-distribution strategy for --workers > 1")
    p.add_argument("--pool", default="fork", choices=list(POOLS),
                   help="parallel substrate: per-call fork pool or the "
                        "persistent shared-memory worker pool")
    p.add_argument("--venn-impl", default="sorted", choices=sorted(VENN_IMPLS),
                   help="per-match Venn implementation")
    p.add_argument("--fc-impl", default="poly", choices=["poly", "recursive", "iterative"],
                   help="fringe-count implementation (poly = vectorized batches)")
    p.add_argument("--batch-size", type=int, default=4096,
                   help="matches per vectorized batch (poly mode)")
    p.add_argument("--max-frontier-rows", type=int, default=1 << 20,
                   help="frontier-engine expansion cap; wider frontiers split "
                        "into blocks (bounds memory on dense graphs)")
    p.add_argument("--timeout", type=float, metavar="SECONDS",
                   help="deadline for the count; on expiry exit 124 instead of hanging")
    p.add_argument("--stats", action="store_true",
                   help="print runtime stats (compile/match/venn-fc time, plan cache)")
    p.add_argument("--trace", metavar="FILE",
                   help="write a JSONL span trace (compile -> execute -> venn/fc)")
    p.add_argument("--metrics", action="store_true",
                   help="collect metrics and print the table after the count")
    p.add_argument("--prom", metavar="FILE",
                   help="write collected metrics in Prometheus text format")
    p.set_defaults(fn=_cmd_count)

    p = sub.add_parser("decompose", help="show a pattern's core/fringe split")
    p.add_argument("--pattern", required=True)
    p.set_defaults(fn=_cmd_decompose)

    p = sub.add_parser("list-cores", help="subgraph matching mode: top core placements")
    _add_graph_args(p)
    p.add_argument("--pattern", required=True)
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(fn=_cmd_list_cores)

    p = sub.add_parser("signatures", help="per-vertex graphlet-degree signatures")
    _add_graph_args(p)
    p.add_argument("--out", help="write all signatures to this CSV file")
    p.add_argument("--top", type=int, default=10, help="print the top-k by degree")
    p.set_defaults(fn=_cmd_signatures)

    p = sub.add_parser("serve", help="run the asyncio counting service (repro.serve)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.add_argument("--dataset", action="append", metavar="NAME",
                   help="register a built-in dataset (repeatable)")
    p.add_argument("--graph", action="append", metavar="FILE",
                   help="register a graph file (repeatable; named by file stem)")
    p.add_argument("--scale", default="small", choices=["tiny", "small", "large"],
                   help="scale for --dataset graphs")
    p.add_argument("--max-queue", type=int, default=128,
                   help="admission queue bound; excess requests get 'overloaded'")
    p.add_argument("--max-batch", type=int, default=16,
                   help="max requests per micro-batch")
    p.add_argument("--batch-window", type=float, default=0.0, metavar="SECONDS",
                   help="linger this long after the first dequeue to fill a batch")
    p.add_argument("--executor-workers", type=int, default=2,
                   help="thread-pool workers executing batches")
    p.add_argument("--pool", default="thread", choices=["thread", "persistent"],
                   help="where counts execute: service threads (GIL-bound) or "
                        "the persistent shared-memory worker pool")
    p.add_argument("--pool-workers", type=int, default=None, metavar="N",
                   help="worker processes for --pool persistent")
    p.add_argument("--relabel-degree", action="store_true",
                   help="renumber each registered graph by descending degree "
                        "(counts are invariant; improves chunk load balance)")
    p.add_argument("--cache-size", type=int, default=1024,
                   help="result-cache entries (0 disables)")
    p.add_argument("--cache-ttl", type=float, default=300.0, metavar="SECONDS",
                   help="result-cache time-to-live")
    p.add_argument("--default-timeout", type=float, default=30.0, metavar="SECONDS",
                   help="deadline for requests that carry none")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("query", help="query a running counting server")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.add_argument("--graph-name", required=True, help="registry name of the graph")
    p.add_argument("--pattern", required=True, help="pattern expression (DSL)")
    p.add_argument("--engine", default="auto",
                   choices=["auto", "general", "specialized", "frontier"])
    p.add_argument("--timeout", type=float, metavar="SECONDS",
                   help="server-side deadline for this query")
    p.add_argument("--client-timeout", type=float, default=60.0,
                   help="socket timeout for the HTTP call")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the server's result cache")
    p.add_argument("--json", action="store_true", help="print the raw JSON response")
    p.set_defaults(fn=_cmd_query)

    p = sub.add_parser("datasets", help="list built-in datasets")
    p.set_defaults(fn=_cmd_datasets)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
