"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``count``
    Count a pattern in a graph::

        python -m repro count --graph web.el --pattern "triangle + 2x0"
        python -m repro count --dataset kron_g500-logn20 --pattern 4-star
        python -m repro count --dataset internet --pattern fig4 --engine general

    Engine knobs and the parallel path are reachable without writing
    Python: ``--workers N --schedule strided`` selects the fork-pool
    backend, ``--venn-impl/--fc-impl/--batch-size`` tune the general
    engine, and ``--stats`` prints the runtime's per-stage breakdown
    (compile vs. match vs. venn/fc time, plan-cache hits/misses)::

        python -m repro count --dataset internet --pattern diamond \
            --workers 8 --schedule dynamic --stats

    Observability (``repro.obs``): ``--trace FILE`` writes a JSONL span
    trace of the run (compile → execute → per-batch venn/fc),
    ``--metrics`` prints the collected metrics table, and ``--prom FILE``
    dumps them in Prometheus text format::

        python -m repro count --dataset internet --pattern diamond \
            --engine general --trace trace.jsonl --metrics --prom metrics.prom

``decompose``
    Show a pattern's core/fringe decomposition and matching order::

        python -m repro decompose --pattern "edge + 3x0&1 + 2x0"

``list-cores``
    Subgraph-matching mode (§2): stream core locations with their
    surrounding pattern mass::

        python -m repro list-cores --dataset internet --pattern diamond --top 10

``signatures``
    Per-vertex graphlet-degree signatures, printed or as CSV::

        python -m repro signatures --dataset internet --out sig.csv

``datasets``
    List the built-in Table 1 dataset stand-ins.
"""

from __future__ import annotations

import argparse
import time

from .core.engine import EngineConfig
from .core.venn import VENN_IMPLS
from .graph import datasets
from .graph.io import load_graph
from .parallel.schedule import SCHEDULES
from .patterns.decompose import decompose
from .patterns.dsl import parse_pattern, pattern_names

__all__ = ["main"]


def _load_graph(args):
    if args.graph and args.dataset:
        raise SystemExit("give either --graph FILE or --dataset NAME, not both")
    if args.graph:
        return load_graph(args.graph), args.graph
    if args.dataset:
        return datasets.make(args.dataset, args.scale), args.dataset
    raise SystemExit("a graph is required: --graph FILE or --dataset NAME")


def _add_graph_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--graph", help="graph file (.el/.txt/.mtx/.gr/.npz)")
    p.add_argument("--dataset", help="built-in dataset name (see `datasets`)")
    p.add_argument("--scale", default="small", choices=["tiny", "small", "large"])


def _cmd_count(args) -> int:
    from contextlib import nullcontext

    from . import obs
    from .parallel.pool import ParallelConfig
    from .runtime import get_runtime

    graph, gname = _load_graph(args)
    pattern = parse_pattern(args.pattern)
    cfg = EngineConfig(
        venn_impl=args.venn_impl,
        fc_impl=args.fc_impl,
        batch_size=args.batch_size,
    )
    parallel = (
        ParallelConfig(num_workers=args.workers, schedule=args.schedule)
        if args.workers > 1
        else None
    )
    observer = (
        obs.Observer(trace=bool(args.trace), metrics=bool(args.metrics or args.prom))
        if (args.trace or args.metrics or args.prom)
        else None
    )
    runtime = get_runtime()
    t0 = time.perf_counter()
    with observer if observer is not None else nullcontext():
        res = runtime.count(graph, pattern, engine=args.engine, config=cfg, parallel=parallel)
    dt = time.perf_counter() - t0
    print(f"graph    : {gname} ({graph.num_vertices:,} vertices, {graph.num_edges:,} edges)")
    print(f"pattern  : {args.pattern} ({pattern.n} vertices, {pattern.num_edges} edges)")
    print(f"count    : {res.count:,}")
    print(f"engine   : {res.engine}")
    print(f"time     : {dt:.3f} s  ({graph.num_edges / dt:,.0f} edges/s)")
    if args.stats and res.stats is not None:
        s = res.stats
        print(f"backend  : {s.backend}")
        print(f"plan     : {'cache hit' if s.plan_cache_hit else 'compiled'} "
              f"(compile {s.compile_s*1e3:.2f} ms; runtime cache "
              f"{s.cache_hits} hits / {s.cache_misses} misses)")
        print(f"execute  : {s.execute_s*1e3:.2f} ms  "
              f"(match {s.match_s*1e3:.2f} ms, venn/fc {s.venn_fc_s*1e3:.2f} ms, "
              f"{s.batches_flushed} batches)")
        if s.workers:
            print(f"workers  : {s.workers} processes")
    if observer is not None:
        if args.trace:
            n = obs.write_trace_jsonl(observer.tracer, args.trace)
            print(f"trace    : {n} spans -> {args.trace}")
        if args.prom:
            from pathlib import Path

            Path(args.prom).write_text(
                obs.prometheus_text(observer.metrics), encoding="utf-8"
            )
            print(f"prom     : metrics -> {args.prom}")
        if args.metrics:
            print("metrics  :")
            for line in obs.metrics_table(observer.metrics).splitlines():
                print(f"  {line}")
    return 0


def _cmd_decompose(args) -> int:
    pattern = parse_pattern(args.pattern)
    d = decompose(pattern)
    print(f"pattern      : {pattern.n} vertices, {pattern.num_edges} edges")
    print(f"core         : {list(d.core_vertices)} ({d.core_pattern.num_edges} core edges)")
    print(f"matching ord.: {list(d.matching_order)} (core-local ids)")
    kinds = {1: "tail", 2: "wedge", 3: "tri-fringe"}
    for ft in d.fringe_types:
        kind = kinds.get(ft.arity, f"{ft.arity}-anchor")
        print(f"fringe type  : {ft.count} x {kind} anchored at {sorted(ft.anchors)}")
    print(f"q (anchored) : {d.q}")
    return 0


def _cmd_list_cores(args) -> int:
    from .core.listing import top_cores

    graph, gname = _load_graph(args)
    pattern = parse_pattern(args.pattern)
    print(f"top {args.top} core placements of {args.pattern!r} in {gname}:")
    for m in top_cores(graph, pattern, args.top):
        frac = float(m.embeddings)
        print(f"  core={list(m.vertices)}  embeddings≈{frac:,.1f}  (raw choices {m.raw_choices:,})")
    return 0


def _cmd_signatures(args) -> int:
    from .core.signatures import SIGNATURE_COLUMNS, signature_matrix

    graph, gname = _load_graph(args)
    mat = signature_matrix(graph)
    if args.out:
        import csv

        with open(args.out, "w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            writer.writerow(("vertex",) + SIGNATURE_COLUMNS)
            for v in range(graph.num_vertices):
                writer.writerow([v] + [int(x) for x in mat[v]])
        print(f"wrote {graph.num_vertices} signatures to {args.out}")
        return 0
    header = f"{'vertex':>8}" + "".join(f"{c:>14}" for c in SIGNATURE_COLUMNS)
    print(header)
    order = mat[:, 0].argsort()[::-1][: args.top]
    for v in order.tolist():
        print(f"{v:>8}" + "".join(f"{int(x):>14,}" for x in mat[v]))
    return 0


def _cmd_datasets(_args) -> int:
    print(f"{'name':<20}{'type':<24}{'source':<8}{'paper |V|':>12}{'paper |E|':>14}")
    for spec in datasets.DATASETS.values():
        print(
            f"{spec.name:<20}{spec.kind:<24}{spec.source:<8}"
            f"{spec.paper_vertices:>12,}{spec.paper_edges:>14,}"
        )
    print("\npattern names:", ", ".join(pattern_names()))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description="Fringe-SGC subgraph counting")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("count", help="count a pattern in a graph")
    _add_graph_args(p)
    p.add_argument("--pattern", required=True, help="pattern expression (DSL)")
    p.add_argument("--engine", default="auto", choices=["auto", "general", "specialized"])
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (>1 enables the fork-pool backend)")
    p.add_argument("--schedule", default="dynamic", choices=list(SCHEDULES),
                   help="work-distribution strategy for --workers > 1")
    p.add_argument("--venn-impl", default="sorted", choices=sorted(VENN_IMPLS),
                   help="per-match Venn implementation")
    p.add_argument("--fc-impl", default="poly", choices=["poly", "recursive", "iterative"],
                   help="fringe-count implementation (poly = vectorized batches)")
    p.add_argument("--batch-size", type=int, default=4096,
                   help="matches per vectorized batch (poly mode)")
    p.add_argument("--stats", action="store_true",
                   help="print runtime stats (compile/match/venn-fc time, plan cache)")
    p.add_argument("--trace", metavar="FILE",
                   help="write a JSONL span trace (compile -> execute -> venn/fc)")
    p.add_argument("--metrics", action="store_true",
                   help="collect metrics and print the table after the count")
    p.add_argument("--prom", metavar="FILE",
                   help="write collected metrics in Prometheus text format")
    p.set_defaults(fn=_cmd_count)

    p = sub.add_parser("decompose", help="show a pattern's core/fringe split")
    p.add_argument("--pattern", required=True)
    p.set_defaults(fn=_cmd_decompose)

    p = sub.add_parser("list-cores", help="subgraph matching mode: top core placements")
    _add_graph_args(p)
    p.add_argument("--pattern", required=True)
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(fn=_cmd_list_cores)

    p = sub.add_parser("signatures", help="per-vertex graphlet-degree signatures")
    _add_graph_args(p)
    p.add_argument("--out", help="write all signatures to this CSV file")
    p.add_argument("--top", type=int, default=10, help="print the top-k by degree")
    p.set_defaults(fn=_cmd_signatures)

    p = sub.add_parser("datasets", help="list built-in datasets")
    p.set_defaults(fn=_cmd_datasets)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
