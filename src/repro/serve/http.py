"""A stdlib-only HTTP/1.1 shell over :class:`CountingService`.

Built directly on ``asyncio.start_server`` — no third-party web
framework — because the surface is three routes:

* ``POST /v1/count``   — body: :class:`~repro.serve.protocol.CountRequest`
  JSON; response: a count or a typed error (status mapped from the code);
* ``GET  /v1/healthz`` — liveness + registered graphs + uptime;
* ``GET  /v1/metrics`` — the service registry in Prometheus text format
  (``repro.obs.export.prometheus_text``), scrape-ready.

Connections are one-request (``Connection: close``): the workload is a
counting query per connection, and closing keeps the parser a
straight-line read. :func:`start_in_thread` runs a whole server on a
background thread — the blocking client, the tests, and the CI smoke
job all use it.
"""

from __future__ import annotations

import asyncio
import json
import threading

from ..obs.export import prometheus_text
from .protocol import BAD_REQUEST, PROTOCOL_VERSION, CountRequest, ErrorResponse, ServeError
from .service import CountingService

__all__ = ["serve_forever", "start_server", "start_in_thread", "ServerHandle"]

_MAX_BODY = 4 * 1024 * 1024  # a pattern expression has no business being larger

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _http_response(status: int, body: bytes, content_type: str = "application/json") -> bytes:
    reason = _STATUS_TEXT.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


def _json_response(status: int, obj: dict) -> bytes:
    return _http_response(status, json.dumps(obj, sort_keys=True).encode("utf-8"))


def _error_response(error: ErrorResponse) -> bytes:
    return _json_response(error.http_status, error.to_json())


async def _read_request(reader: asyncio.StreamReader):
    """Parse one request: (method, path, body) or None on EOF/garbage."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        return None
    method, path = parts[0].upper(), parts[1]
    content_length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                return None
    if content_length < 0 or content_length > _MAX_BODY:
        return None
    body = await reader.readexactly(content_length) if content_length else b""
    return method, path, body


async def _handle_count(service: CountingService, body: bytes) -> bytes:
    try:
        payload = json.loads(body.decode("utf-8")) if body else None
    except (ValueError, UnicodeDecodeError):
        return _error_response(ErrorResponse(BAD_REQUEST, "body is not valid JSON"))
    try:
        request = CountRequest.from_json(payload)
    except ServeError as exc:
        return _error_response(exc.response())
    response = await service.submit(request)
    if isinstance(response, ErrorResponse):
        return _error_response(response)
    return _json_response(200, response.to_json())


def _handle_healthz(service: CountingService) -> bytes:
    import time

    return _json_response(
        200,
        {
            "v": PROTOCOL_VERSION,
            "ok": True,
            "uptime_s": time.time() - service.started_at,
            "graphs": service.registry.describe(),
        },
    )


def _handle_metrics(service: CountingService) -> bytes:
    text = prometheus_text(service.metrics)
    return _http_response(200, text.encode("utf-8"), content_type="text/plain; version=0.0.4")


def make_handler(service: CountingService):
    """The ``asyncio.start_server`` connection callback for ``service``."""

    async def handler(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            parsed = await _read_request(reader)
            if parsed is None:
                writer.close()
                return
            method, path, body = parsed
            if path == "/v1/count" and method == "POST":
                out = await _handle_count(service, body)
            elif path == "/v1/healthz" and method == "GET":
                out = _handle_healthz(service)
            elif path == "/v1/metrics" and method == "GET":
                out = _handle_metrics(service)
            elif path in ("/v1/count", "/v1/healthz", "/v1/metrics"):
                out = _json_response(405, {"ok": False, "error": {"code": "bad_request",
                                                                  "message": "method not allowed"}})
            else:
                out = _json_response(404, {"ok": False, "error": {"code": "bad_request",
                                                                  "message": f"no route {path}"}})
            writer.write(out)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    return handler


async def start_server(
    service: CountingService, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Start the service (if needed) and an HTTP server bound to host:port."""
    if service._batcher is None:
        service.start()
    return await asyncio.start_server(make_handler(service), host, port)


async def serve_forever(
    service: CountingService,
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    ready: "threading.Event | None" = None,
    on_bound=None,
) -> None:
    """Run until cancelled (the CLI entry point)."""
    server = await start_server(service, host, port)
    bound = server.sockets[0].getsockname()
    if on_bound is not None:
        on_bound(bound)
    if ready is not None:
        ready.set()
    try:
        async with server:
            await server.serve_forever()
    finally:
        await service.stop()


class ServerHandle:
    """A running server on a background thread: ``.port``, ``.stop()``."""

    def __init__(self, thread: threading.Thread, loop: asyncio.AbstractEventLoop,
                 host: str, port: int):
        self._thread = thread
        self._loop = loop
        self.host = host
        self.port = port

    def stop(self, timeout: float = 10.0) -> None:
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout)

    # _stop_event is attached by start_in_thread (it must be created on
    # the server's own loop).
    _stop_event: asyncio.Event


def start_in_thread(
    service: CountingService, host: str = "127.0.0.1", port: int = 0
) -> ServerHandle:
    """Boot service + HTTP server on a fresh event loop in a daemon thread.

    Returns once the socket is bound (so ``.port`` is final even for
    ``port=0``). Tests, the demo example, and the CI smoke job use this
    to get a real server without managing asyncio themselves.
    """
    ready = threading.Event()
    box: dict = {}

    async def main() -> None:
        stop_event = asyncio.Event()
        box["loop"] = asyncio.get_running_loop()
        box["stop_event"] = stop_event
        server = await start_server(service, host, port)
        box["port"] = server.sockets[0].getsockname()[1]
        ready.set()
        try:
            async with server:
                await stop_event.wait()
        finally:
            await service.stop()

    def run() -> None:
        try:
            asyncio.run(main())
        except Exception as exc:  # surface boot failures to the caller
            box["error"] = exc
            ready.set()

    thread = threading.Thread(target=run, name="repro-serve-http", daemon=True)
    thread.start()
    ready.wait(timeout=30.0)
    if "error" in box:
        raise RuntimeError(f"server failed to start: {box['error']}") from box["error"]
    if "port" not in box:
        raise RuntimeError("server did not come up within 30 s")
    handle = ServerHandle(thread, box["loop"], host, box["port"])
    handle._stop_event = box["stop_event"]
    return handle
