"""Shared graph registry: load named graphs once, serve them to everyone.

The serving model is many queries over few graphs — exactly the paper's
amortization profile, where all pattern-side work is reused across
inputs. The registry is the graph-side counterpart: each named graph is
loaded (from a built-in dataset or a file via :mod:`repro.graph.io`)
exactly once, fingerprinted, and shared read-only across every request.

Replacing or evicting a name fires subscribed listeners, which is how
the service's result cache learns to drop entries for the old content
(the cache is also keyed by content fingerprint, so stale hits are
impossible even between the event and the drop — the listener reclaims
memory and keeps hit-ratio metrics honest).

When the persistent worker pool is in play, the registry also owns the
graph's shared-memory residency: ``register`` pre-exports the CSR arrays
into named segments (so the first count on a freshly loaded graph pays
no export cost) and ``evict``/replace releases the old content's
reference, letting :mod:`repro.parallel.shm` unlink the segments once
nobody else holds them.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ..graph import datasets
from ..graph.csr import CSRGraph
from ..graph.io import load_graph
from .protocol import UNKNOWN_GRAPH, ServeError

__all__ = ["GraphEntry", "GraphRegistry"]


@dataclass(frozen=True)
class GraphEntry:
    """One registered graph plus the metadata the service reports."""

    name: str
    graph: CSRGraph
    fingerprint: str
    source: str
    loaded_at: float  # unix time
    load_s: float  # wall-clock spent loading/fingerprinting

    def describe(self) -> dict:
        return {
            "name": self.name,
            "vertices": self.graph.num_vertices,
            "edges": self.graph.num_edges,
            "fingerprint": self.fingerprint,
            "source": self.source,
            "loaded_at": self.loaded_at,
            "load_s": self.load_s,
        }


# listener(name, old_entry, new_entry): new_entry is None on eviction.
Listener = Callable[[str, GraphEntry | None, GraphEntry | None], None]


class GraphRegistry:
    """Thread-safe name → :class:`GraphEntry` map with a load lifecycle.

    ``export_shm=True`` (the default where the platform supports it)
    additionally keeps every registered graph exported in named shared
    memory for the persistent worker pool; the reference is released on
    evict/replace.
    """

    def __init__(self, *, export_shm: bool | None = None):
        self._lock = threading.Lock()
        self._entries: dict[str, GraphEntry] = {}
        self._listeners: list[Listener] = []
        if export_shm is None:
            from ..parallel.shm import shm_available

            export_shm = shm_available()
        self._export_shm = bool(export_shm)

    def _shm_export(self, graph: CSRGraph) -> None:
        if self._export_shm:
            from ..parallel.shm import default_manager

            default_manager().export(graph)

    def _shm_release(self, fingerprint: str) -> None:
        if self._export_shm:
            from ..parallel.shm import default_manager

            default_manager().release(fingerprint)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        graph: CSRGraph,
        *,
        source: str = "memory",
        load_s: float | None = None,
    ) -> GraphEntry:
        """Register (or replace) ``name``; fires listeners on replacement."""
        if not name:
            raise ValueError("graph name must be non-empty")
        t0 = time.perf_counter()
        fingerprint = graph.fingerprint()  # outside the lock: O(n + m) hash
        entry = GraphEntry(
            name=name,
            graph=graph,
            fingerprint=fingerprint,
            source=source,
            loaded_at=time.time(),
            load_s=load_s if load_s is not None else time.perf_counter() - t0,
        )
        self._shm_export(graph)
        with self._lock:
            old = self._entries.get(name)
            self._entries[name] = entry
            listeners = list(self._listeners)
        if old is not None:
            self._shm_release(old.fingerprint)
        for listener in listeners:
            listener(name, old, entry)
        return entry

    def load_dataset(self, name: str, scale: str = "small", *, alias: str | None = None) -> GraphEntry:
        """Load a built-in dataset stand-in (memoized by the datasets module)."""
        t0 = time.perf_counter()
        try:
            graph = datasets.make(name, scale)
        except KeyError as exc:
            raise ServeError(UNKNOWN_GRAPH, str(exc)) from exc
        return self.register(
            alias or name,
            graph,
            source=f"dataset:{name}:{scale}",
            load_s=time.perf_counter() - t0,
        )

    def load_file(self, path: str | Path, *, alias: str | None = None) -> GraphEntry:
        """Load a graph file (format by extension, see :mod:`repro.graph.io`)."""
        path = Path(path)
        t0 = time.perf_counter()
        graph = load_graph(path)
        return self.register(
            alias or path.stem, graph, source=str(path), load_s=time.perf_counter() - t0
        )

    def evict(self, name: str) -> GraphEntry:
        """Remove ``name``; fires listeners; raises ``unknown_graph`` if absent."""
        with self._lock:
            entry = self._entries.pop(name, None)
            listeners = list(self._listeners)
        if entry is None:
            raise ServeError(UNKNOWN_GRAPH, f"no graph named {name!r}")
        self._shm_release(entry.fingerprint)
        for listener in listeners:
            listener(name, entry, None)
        return entry

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, name: str) -> GraphEntry:
        with self._lock:
            entry = self._entries.get(name)
            known = sorted(self._entries) if entry is None else ()
        if entry is None:
            raise ServeError(
                UNKNOWN_GRAPH, f"no graph named {name!r} (registered: {list(known)})"
            )
        return entry

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def describe(self) -> list[dict]:
        with self._lock:
            entries = sorted(self._entries.values(), key=lambda e: e.name)
        return [e.describe() for e in entries]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    # ------------------------------------------------------------------
    def subscribe(self, listener: Listener) -> None:
        """Register a replace/evict listener (service cache invalidation)."""
        with self._lock:
            self._listeners.append(listener)
