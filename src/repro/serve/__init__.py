"""``repro.serve`` — the online counting service (stdlib asyncio only).

The paper amortizes all pattern-side work ahead of time and reuses it
across inputs; this package turns that profile into an actual service:
load graphs once (:class:`GraphRegistry`), accept queries over HTTP
(:mod:`repro.serve.http`), and run them through an admission-controlled,
coalescing, micro-batching pipeline (:class:`CountingService`) on the
shared :class:`~repro.runtime.Runtime`.

Quick tour::

    from repro.serve import GraphRegistry, CountingService, ServiceConfig
    from repro.serve.http import start_in_thread
    from repro.serve.client import CountClient

    registry = GraphRegistry()
    registry.load_dataset("internet", "tiny")
    service = CountingService(registry, config=ServiceConfig(max_queue=64))
    handle = start_in_thread(service)           # real HTTP on a daemon thread
    client = CountClient(port=handle.port)
    client.count_value("internet", "triangle")  # -> exact count
    handle.stop()
"""

from .protocol import (
    ERROR_CODES,
    PROTOCOL_VERSION,
    CountRequest,
    CountResponse,
    Deadline,
    ErrorResponse,
    ServeError,
)
from .registry import GraphEntry, GraphRegistry
from .service import CountingService, ServiceConfig

__all__ = [
    "GraphRegistry",
    "GraphEntry",
    "CountingService",
    "ServiceConfig",
    "CountRequest",
    "CountResponse",
    "ErrorResponse",
    "ServeError",
    "Deadline",
    "ERROR_CODES",
    "PROTOCOL_VERSION",
]
