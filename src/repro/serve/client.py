"""A small blocking client for the counting service.

``http.client`` only — callers that want asyncio can speak the JSON
protocol themselves (it is three routes); this client covers the CLI
``repro query`` command, scripts, and tests. One connection per call
matches the server's ``Connection: close`` policy.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Mapping

from .protocol import CountRequest, CountResponse, ErrorResponse, response_from_json

__all__ = ["ServeClientError", "CountClient"]


class ServeClientError(RuntimeError):
    """A typed error response (or transport failure) from the service."""

    def __init__(self, code: str, message: str, status: int | None = None):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.status = status


class CountClient:
    """Blocking client: ``CountClient(port=...).count("internet", "triangle")``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765, *, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, body: bytes | None = None):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            return resp.status, resp.read()
        except OSError as exc:
            raise ServeClientError("transport", f"{type(exc).__name__}: {exc}") from exc
        finally:
            conn.close()

    def _json(self, method: str, path: str, payload: dict | None = None) -> tuple[int, Any]:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        status, raw = self._request(method, path, body)
        try:
            return status, json.loads(raw.decode("utf-8"))
        except ValueError as exc:
            raise ServeClientError(
                "transport", f"non-JSON response (HTTP {status}): {raw[:200]!r}", status
            ) from exc

    # ------------------------------------------------------------------
    def count(
        self,
        graph: str,
        pattern: str,
        *,
        engine: str = "auto",
        timeout_s: float | None = None,
        use_cache: bool = True,
        config: Mapping[str, Any] | None = None,
    ) -> CountResponse:
        """POST /v1/count; returns the typed response or raises
        :class:`ServeClientError` carrying the service's error code."""
        request = CountRequest(
            graph=graph,
            pattern=pattern,
            engine=engine,
            timeout_s=timeout_s,
            use_cache=use_cache,
            config=config,
        )
        status, obj = self._json("POST", "/v1/count", request.to_json())
        response = response_from_json(obj)
        if isinstance(response, ErrorResponse):
            raise ServeClientError(response.code, response.message, status)
        return response

    def count_value(self, graph: str, pattern: str, **kwargs) -> int:
        return self.count(graph, pattern, **kwargs).count

    def healthz(self) -> dict:
        status, obj = self._json("GET", "/v1/healthz")
        if status != 200:
            raise ServeClientError("transport", f"healthz returned HTTP {status}", status)
        return obj

    def metrics(self) -> str:
        status, raw = self._request("GET", "/v1/metrics")
        if status != 200:
            raise ServeClientError("transport", f"metrics returned HTTP {status}", status)
        return raw.decode("utf-8")
