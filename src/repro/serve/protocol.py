"""Versioned JSON wire schema for the counting service.

One request shape (``CountRequest``), two response shapes
(``CountResponse`` / ``ErrorResponse``), and the typed error codes every
layer agrees on. The schema is versioned through the ``"v"`` field so a
future revision can evolve the wire format without breaking deployed
clients; v1 clients talking to a v1 server never need to sniff fields.

Counts are serialized as *strings*: subgraph counts routinely exceed
2^53 and would silently lose precision in JSON readers that parse
numbers as doubles (the benchmark records made the same choice).

:class:`Deadline` is the shared deadline machinery — the service's
admission queue, the per-request waiters, and the CLI ``--timeout`` flag
all measure remaining budget through it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "PROTOCOL_VERSION",
    "ERROR_CODES",
    "ERROR_HTTP_STATUS",
    "ServeError",
    "Deadline",
    "CountRequest",
    "CountResponse",
    "ErrorResponse",
    "response_from_json",
]

PROTOCOL_VERSION = 1

# Typed error codes. The HTTP layer maps them onto status codes; direct
# (in-process) callers branch on the code string itself.
OVERLOADED = "overloaded"
DEADLINE_EXCEEDED = "deadline_exceeded"
UNKNOWN_GRAPH = "unknown_graph"
BAD_PATTERN = "bad_pattern"
BAD_REQUEST = "bad_request"
INTERNAL = "internal"

ERROR_CODES = frozenset(
    {OVERLOADED, DEADLINE_EXCEEDED, UNKNOWN_GRAPH, BAD_PATTERN, BAD_REQUEST, INTERNAL}
)

ERROR_HTTP_STATUS = {
    OVERLOADED: 503,
    DEADLINE_EXCEEDED: 504,
    UNKNOWN_GRAPH: 404,
    BAD_PATTERN: 400,
    BAD_REQUEST: 400,
    INTERNAL: 500,
}


class ServeError(Exception):
    """A typed service error: ``code`` is one of :data:`ERROR_CODES`."""

    def __init__(self, code: str, message: str):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message

    def response(self) -> "ErrorResponse":
        return ErrorResponse(code=self.code, message=self.message)


class Deadline:
    """A monotonic-clock deadline with ``remaining()`` semantics.

    ``Deadline.after(seconds)`` starts the budget now; ``after(None)``
    never expires. The service checks ``expired`` before spending
    execution time on a request and waiters bound their ``await`` with
    ``remaining()``; the CLI ``--timeout`` flag reuses the same object so
    client- and server-side budgets mean the same thing.
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float | None):
        self.expires_at = expires_at

    @classmethod
    def after(cls, seconds: float | None) -> "Deadline":
        if seconds is None:
            return cls(None)
        return cls(time.monotonic() + seconds)

    @classmethod
    def never(cls) -> "Deadline":
        return cls(None)

    def remaining(self) -> float | None:
        """Seconds left (may be <= 0), or None for a never-expiring deadline."""
        if self.expires_at is None:
            return None
        return self.expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        return self.expires_at is not None and time.monotonic() >= self.expires_at

    def extend_to(self, other: "Deadline") -> None:
        """Relax this deadline to cover ``other`` (used when coalescing)."""
        if self.expires_at is None or other.expires_at is None:
            self.expires_at = None
        else:
            self.expires_at = max(self.expires_at, other.expires_at)


# ----------------------------------------------------------------------
# requests
# ----------------------------------------------------------------------
_ENGINES = ("auto", "general", "specialized", "frontier")


@dataclass(frozen=True)
class CountRequest:
    """One counting query: which graph, which pattern, how to run it.

    ``graph`` names a registry entry; ``pattern`` is a DSL expression
    (:func:`repro.patterns.dsl.parse_pattern`). ``timeout_s`` becomes the
    request deadline (``None`` = the service default); ``use_cache=False``
    bypasses the result cache on both read and write (the request still
    coalesces with identical in-flight work — that execution is fresh by
    definition).
    """

    graph: str
    pattern: str
    engine: str = "auto"
    timeout_s: float | None = None
    use_cache: bool = True
    config: Mapping[str, Any] | None = None  # EngineConfig overrides

    def __post_init__(self):
        if self.engine not in _ENGINES:
            raise ServeError(BAD_REQUEST, f"unknown engine {self.engine!r}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ServeError(BAD_REQUEST, "timeout_s must be positive")

    @classmethod
    def from_json(cls, obj: Any) -> "CountRequest":
        if not isinstance(obj, dict):
            raise ServeError(BAD_REQUEST, "request body must be a JSON object")
        version = obj.get("v", PROTOCOL_VERSION)
        if version != PROTOCOL_VERSION:
            raise ServeError(BAD_REQUEST, f"unsupported protocol version {version!r}")
        for key in ("graph", "pattern"):
            if not isinstance(obj.get(key), str) or not obj[key]:
                raise ServeError(BAD_REQUEST, f"{key!r} must be a non-empty string")
        timeout_s = obj.get("timeout_s")
        if timeout_s is not None and not isinstance(timeout_s, (int, float)):
            raise ServeError(BAD_REQUEST, "timeout_s must be a number")
        config = obj.get("config")
        if config is not None and not isinstance(config, dict):
            raise ServeError(BAD_REQUEST, "config must be an object")
        return cls(
            graph=obj["graph"],
            pattern=obj["pattern"],
            engine=obj.get("engine", "auto"),
            timeout_s=timeout_s,
            use_cache=bool(obj.get("use_cache", True)),
            config=config,
        )

    def to_json(self) -> dict:
        body: dict = {"v": PROTOCOL_VERSION, "graph": self.graph, "pattern": self.pattern}
        if self.engine != "auto":
            body["engine"] = self.engine
        if self.timeout_s is not None:
            body["timeout_s"] = self.timeout_s
        if not self.use_cache:
            body["use_cache"] = False
        if self.config:
            body["config"] = dict(self.config)
        return body

    def engine_config(self):
        """Materialize the EngineConfig (raises ``bad_request`` on bad knobs)."""
        from ..core.engine import EngineConfig

        overrides = dict(self.config or {})
        allowed = {
            "venn_impl",
            "fc_impl",
            "batch_size",
            "symmetry_breaking",
            "specialized",
            "max_frontier_rows",
        }
        unknown = set(overrides) - allowed
        if unknown:
            raise ServeError(BAD_REQUEST, f"unknown config keys: {sorted(unknown)}")
        try:
            return EngineConfig(**overrides)
        except (TypeError, ValueError) as exc:
            raise ServeError(BAD_REQUEST, f"bad engine config: {exc}") from exc


# ----------------------------------------------------------------------
# responses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CountResponse:
    """A successful count, plus how it was produced.

    ``cached`` — served from the result cache without execution;
    ``coalesced`` — this waiter shared another request's execution;
    ``batch_size`` — how many requests the executing micro-batch held.
    """

    graph: str
    pattern: str
    count: int
    fingerprint: str
    engine: str
    elapsed_s: float
    cached: bool = False
    coalesced: bool = False
    batch_size: int = 1

    ok = True

    def to_json(self) -> dict:
        return {
            "v": PROTOCOL_VERSION,
            "ok": True,
            "graph": self.graph,
            "pattern": self.pattern,
            "count": str(self.count),  # big counts overflow double-based readers
            "fingerprint": self.fingerprint,
            "engine": self.engine,
            "elapsed_s": self.elapsed_s,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "batch_size": self.batch_size,
        }


@dataclass(frozen=True)
class ErrorResponse:
    """A typed failure; ``code`` is one of :data:`ERROR_CODES`."""

    code: str
    message: str
    details: Mapping[str, Any] = field(default_factory=dict)

    ok = False

    @property
    def http_status(self) -> int:
        return ERROR_HTTP_STATUS.get(self.code, 500)

    def to_json(self) -> dict:
        err: dict = {"code": self.code, "message": self.message}
        if self.details:
            err["details"] = dict(self.details)
        return {"v": PROTOCOL_VERSION, "ok": False, "error": err}


def response_from_json(obj: Any) -> CountResponse | ErrorResponse:
    """Parse a response body back into the typed form (client side)."""
    if not isinstance(obj, dict) or "ok" not in obj:
        raise ValueError("malformed response body")
    if obj["ok"]:
        return CountResponse(
            graph=obj["graph"],
            pattern=obj["pattern"],
            count=int(obj["count"]),
            fingerprint=obj["fingerprint"],
            engine=obj["engine"],
            elapsed_s=float(obj["elapsed_s"]),
            cached=bool(obj.get("cached", False)),
            coalesced=bool(obj.get("coalesced", False)),
            batch_size=int(obj.get("batch_size", 1)),
        )
    err = obj.get("error") or {}
    return ErrorResponse(
        code=err.get("code", INTERNAL),
        message=err.get("message", "unknown error"),
        details=err.get("details") or {},
    )
