"""The request pipeline: admit → coalesce/batch → execute → respond.

:class:`CountingService` is the asyncio core of ``repro.serve``. Its
lifecycle for one request:

1. **admit** — resolve the graph (``unknown_graph``), parse the pattern
   (``bad_pattern``), build the canonical result key
   (:meth:`repro.runtime.Runtime.result_cache_key`). A full admission
   queue rejects immediately with ``overloaded`` — bounded memory and
   bounded tail latency beat an unbounded backlog.
2. **coalesce** — if an identical query (same graph fingerprint, same
   plan key, same engine) is already in flight, the request attaches to
   it: N concurrent clients asking the same question cost one execution.
   Otherwise check the LRU+TTL result cache, then enqueue.
3. **batch** — a single batcher task drains the queue, groups compatible
   requests *per graph*, and dispatches each group to the shared
   :class:`~repro.runtime.Runtime` on a thread-pool executor
   (:meth:`~repro.runtime.Runtime.count_batch`), so the event loop never
   blocks on a count. In-flight executor jobs are bounded by the worker
   count; when they are all busy the queue backs up and admission
   control takes over.
4. **respond** — each waiter's future resolves with a typed response;
   waiters whose deadline lapses first get ``deadline_exceeded`` without
   cancelling the shared execution (late coalesced arrivals still
   benefit, and the result still populates the cache).

Every stage is observable: spans (``serve.admit`` → ``serve.batch`` →
``serve.execute`` → ``serve.respond``) when tracing is on, and metrics
for queue depth, batch sizes, coalesced/rejected/expired counts, result
cache hit ratio, and end-to-end latency always.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, replace

from .. import obs
from ..patterns.dsl import parse_pattern
from ..runtime import Runtime
from .protocol import (
    BAD_PATTERN,
    DEADLINE_EXCEEDED,
    INTERNAL,
    OVERLOADED,
    CountRequest,
    CountResponse,
    Deadline,
    ErrorResponse,
    ServeError,
)
from .registry import GraphEntry, GraphRegistry

__all__ = ["ServiceConfig", "CountingService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Operational knobs for one :class:`CountingService`.

    ``max_queue`` is the admission bound (requests beyond it are rejected
    ``overloaded``); ``max_batch`` caps one micro-batch;
    ``batch_window_s`` lets the batcher linger that long after the first
    dequeue to gather a fuller batch (0 = drain opportunistically only);
    ``executor_workers`` bounds concurrently executing batches;
    ``executor`` picks where the CPU-bound count itself runs —
    ``"thread"`` keeps it on the service's thread pool (GIL-bound),
    ``"pool"`` dispatches through the persistent shared-memory
    :class:`~repro.parallel.workerpool.WorkerPool` with ``pool_workers``
    processes (None = the parallel layer's default);
    ``result_cache_size``/``result_cache_ttl_s`` shape the LRU+TTL result
    cache (size 0 disables it); ``default_timeout_s`` is the deadline for
    requests that do not carry their own (None = no deadline).
    """

    max_queue: int = 128
    max_batch: int = 16
    batch_window_s: float = 0.0
    executor_workers: int = 2
    executor: str = "thread"
    pool_workers: int | None = None
    result_cache_size: int = 1024
    result_cache_ttl_s: float = 300.0
    default_timeout_s: float | None = 30.0

    def __post_init__(self):
        if self.max_queue < 1:
            raise ValueError("max_queue must be positive")
        if self.max_batch < 1:
            raise ValueError("max_batch must be positive")
        if self.executor_workers < 1:
            raise ValueError("executor_workers must be positive")
        if self.executor not in ("thread", "pool"):
            raise ValueError(f"executor must be 'thread' or 'pool', got {self.executor!r}")
        if self.pool_workers is not None and self.pool_workers < 1:
            raise ValueError("pool_workers must be positive")
        if self.result_cache_size < 0:
            raise ValueError("result_cache_size must be >= 0")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")


class _Inflight:
    """One unique (graph, plan, engine) execution and all its waiters."""

    __slots__ = ("key", "request", "gentry", "pattern", "config", "deadline",
                 "future", "waiters", "enqueued_at")

    def __init__(self, key, request, gentry, pattern, config, deadline, future):
        self.key = key
        self.request = request
        self.gentry: GraphEntry = gentry
        self.pattern = pattern
        self.config = config
        self.deadline: Deadline = deadline
        self.future: asyncio.Future = future
        self.waiters = 1
        self.enqueued_at = time.perf_counter()


class CountingService:
    """Asyncio counting service over a :class:`GraphRegistry`.

    Create it, ``start()`` it inside a running event loop, ``await
    submit(request)`` as many times as you like (from any number of
    tasks), then ``await stop()``. The HTTP layer in
    :mod:`repro.serve.http` is a thin shell over this class; tests drive
    it directly with asyncio tasks and no sockets.
    """

    def __init__(
        self,
        registry: GraphRegistry,
        *,
        config: ServiceConfig | None = None,
        runtime: Runtime | None = None,
        observer: "obs.Observer | None" = None,
    ):
        self.registry = registry
        self.config = config or ServiceConfig()
        self.observer = observer or obs.Observer(trace=False, metrics=True)
        self.metrics = self.observer.metrics or obs.MetricsRegistry()
        self.runtime = runtime or Runtime(observer=self.observer)
        self.started_at = time.time()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.Queue[_Inflight] | None = None
        self._batcher: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._exec_slots: asyncio.Semaphore | None = None
        self._inflight: dict[tuple, _Inflight] = {}
        # result cache: key -> (monotonic expiry, CountResponse); guarded by a
        # threading lock because executor threads populate it.
        self._cache: OrderedDict[tuple, tuple[float, CountResponse]] = OrderedDict()
        self._cache_lock = threading.Lock()
        # executor="pool": CPU-bound counts leave the thread pool and run
        # on the persistent spawn-context WorkerPool (true multi-core;
        # the executor thread merely dispatches and waits).
        if self.config.executor == "pool":
            from ..parallel import ParallelConfig

            self._parallel: "ParallelConfig | None" = ParallelConfig(
                num_workers=self.config.pool_workers, pool="persistent"
            )
        else:
            self._parallel = None
        registry.subscribe(self._on_registry_event)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bind to the running event loop and start the batcher task."""
        if self._batcher is not None:
            raise RuntimeError("service already started")
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.config.max_queue)
        self._exec_slots = asyncio.Semaphore(self.config.executor_workers)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_workers, thread_name_prefix="repro-serve"
        )
        self._batcher = asyncio.create_task(self._batch_loop(), name="repro-serve-batcher")

    async def stop(self) -> None:
        """Cancel the batcher, fail pending requests, release the executor."""
        if self._batcher is None:
            return
        self._batcher.cancel()
        try:
            await self._batcher
        except asyncio.CancelledError:
            pass
        self._batcher = None
        for entry in list(self._inflight.values()):
            if not entry.future.done():
                entry.future.set_result(
                    ErrorResponse(code=INTERNAL, message="service stopped")
                )
        self._inflight.clear()
        assert self._executor is not None
        self._executor.shutdown(wait=True, cancel_futures=True)
        self._executor = None

    # ------------------------------------------------------------------
    # the request pipeline
    # ------------------------------------------------------------------
    async def submit(self, request: CountRequest) -> CountResponse | ErrorResponse:
        """Run one request through the full pipeline; never raises
        :class:`ServeError` — typed failures come back as
        :class:`ErrorResponse` so every caller handles one shape."""
        if self._queue is None:
            raise RuntimeError("service not started (call start() in a running loop)")
        t0 = time.perf_counter()
        self._count_request()
        deadline = Deadline.after(
            request.timeout_s if request.timeout_s is not None
            else self.config.default_timeout_s
        )
        try:
            response = await self._submit_inner(request, deadline, t0)
        except ServeError as exc:
            response = exc.response()
        except Exception as exc:  # defensive: a pipeline bug must not kill callers
            response = ErrorResponse(code=INTERNAL, message=f"{type(exc).__name__}: {exc}")
        self._finish(response, t0)
        return response

    async def _submit_inner(
        self, request: CountRequest, deadline: Deadline, t0: float
    ) -> CountResponse | ErrorResponse:
        with self._span("serve.admit", graph=request.graph, pattern=request.pattern):
            gentry = self.registry.get(request.graph)
            try:
                pattern = parse_pattern(request.pattern)
            except Exception as exc:
                raise ServeError(BAD_PATTERN, f"bad pattern {request.pattern!r}: {exc}") from exc
            config = request.engine_config()
            key = self.runtime.result_cache_key(
                gentry.graph, pattern, config, engine=request.engine
            )

        # result cache (read side)
        if request.use_cache:
            hit = self._cache_get(key)
            if hit is not None:
                self.metrics.counter("repro_serve_result_cache_hits_total").inc()
                self._cache_ratio()
                return replace(hit, cached=True, coalesced=False)
            self.metrics.counter("repro_serve_result_cache_misses_total").inc()
            self._cache_ratio()

        # coalesce onto identical in-flight work
        entry = self._inflight.get(key)
        if entry is not None and not entry.future.done():
            entry.waiters += 1
            entry.deadline.extend_to(deadline)
            self.metrics.counter("repro_serve_coalesced_total").inc()
            return await self._await_entry(entry, deadline, coalesced=True)

        # admission control: a full queue rejects rather than buffers
        entry = _Inflight(
            key, request, gentry, pattern, config, deadline,
            self._loop.create_future(),
        )
        try:
            self._queue.put_nowait(entry)
        except asyncio.QueueFull:
            self.metrics.counter("repro_serve_rejected_total").inc()
            return ErrorResponse(
                code=OVERLOADED,
                message=f"admission queue full ({self.config.max_queue} pending)",
                details={"max_queue": self.config.max_queue},
            )
        self._inflight[key] = entry
        self._gauge_depth()
        return await self._await_entry(entry, deadline, coalesced=False)

    async def _await_entry(
        self, entry: _Inflight, deadline: Deadline, *, coalesced: bool
    ) -> CountResponse | ErrorResponse:
        """Wait for the shared execution, bounded by *this* waiter's deadline.

        ``shield`` keeps a lapsed waiter from cancelling work other
        waiters (and the result cache) still want.
        """
        try:
            response = await asyncio.wait_for(
                asyncio.shield(entry.future), timeout=deadline.remaining()
            )
        except asyncio.TimeoutError:
            self.metrics.counter("repro_serve_expired_total").inc()
            return ErrorResponse(
                code=DEADLINE_EXCEEDED, message="deadline expired while waiting for result"
            )
        if coalesced and isinstance(response, CountResponse):
            response = replace(response, coalesced=True)
        return response

    # ------------------------------------------------------------------
    # batching + execution
    # ------------------------------------------------------------------
    async def _batch_loop(self) -> None:
        assert self._queue is not None and self._exec_slots is not None
        while True:
            first = await self._queue.get()
            batch = [first]
            window = Deadline.after(self.config.batch_window_s or None)
            while len(batch) < self.config.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                    continue
                except asyncio.QueueEmpty:
                    pass
                remaining = window.remaining()
                if self.config.batch_window_s <= 0 or remaining is None or remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), timeout=remaining)
                    )
                except asyncio.TimeoutError:
                    break
            self._gauge_depth()
            self.metrics.counter("repro_serve_batches_total").inc()
            self.metrics.histogram("repro_serve_batch_size").observe(len(batch))
            # group per graph so each executor job shares one input
            groups: dict[str, list[_Inflight]] = {}
            for entry in batch:
                groups.setdefault(entry.gentry.fingerprint, []).append(entry)
            with self._span("serve.batch", size=len(batch), graphs=len(groups)):
                for items in groups.values():
                    await self._exec_slots.acquire()
                    fut = self._loop.run_in_executor(
                        self._executor, self._execute_group, items
                    )
                    fut.add_done_callback(lambda _f: self._exec_slots.release())

    def _execute_group(self, items: list[_Inflight]) -> None:
        """Executor-thread body: run one per-graph group through the Runtime."""
        with self.observer:
            with self._span("serve.execute", graph=items[0].gentry.name, size=len(items)):
                for entry in items:
                    self._execute_one(entry, batch_size=len(items))

    def _execute_one(self, entry: _Inflight, *, batch_size: int) -> None:
        queued_s = time.perf_counter() - entry.enqueued_at
        self.metrics.histogram("repro_serve_queue_wait_seconds").observe(queued_s)
        if entry.deadline.expired:
            self.metrics.counter("repro_serve_expired_total").inc()
            self._resolve(
                entry,
                ErrorResponse(
                    code=DEADLINE_EXCEEDED, message="deadline expired before execution"
                ),
            )
            return
        try:
            result = self.runtime.count(
                entry.gentry.graph,
                entry.pattern,
                engine=entry.request.engine,
                config=entry.config,
                parallel=self._parallel,
            )
            response = CountResponse(
                graph=entry.gentry.name,
                pattern=entry.request.pattern,
                count=result.count,
                fingerprint=entry.gentry.fingerprint,
                engine=result.engine,
                elapsed_s=result.elapsed_s,
                batch_size=batch_size,
            )
        except Exception as exc:
            self._resolve(
                entry,
                ErrorResponse(code=INTERNAL, message=f"{type(exc).__name__}: {exc}"),
            )
            return
        if entry.request.use_cache:
            self._cache_put(entry.key, response)
        self._resolve(entry, response)

    def _resolve(self, entry: _Inflight, response) -> None:
        """Hand the result back to the event loop thread."""
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self._respond, entry, response)

    def _respond(self, entry: _Inflight, response) -> None:
        with self._span("serve.respond", waiters=entry.waiters):
            self._inflight.pop(entry.key, None)
            if not entry.future.done():
                entry.future.set_result(response)

    # ------------------------------------------------------------------
    # result cache (LRU + TTL)
    # ------------------------------------------------------------------
    def _cache_get(self, key: tuple) -> CountResponse | None:
        if self.config.result_cache_size == 0:
            return None
        with self._cache_lock:
            slot = self._cache.get(key)
            if slot is None:
                return None
            expires_at, response = slot
            if time.monotonic() >= expires_at:
                del self._cache[key]
                return None
            self._cache.move_to_end(key)
            return response

    def _cache_put(self, key: tuple, response: CountResponse) -> None:
        if self.config.result_cache_size == 0:
            return
        expires_at = time.monotonic() + self.config.result_cache_ttl_s
        with self._cache_lock:
            self._cache[key] = (expires_at, response)
            self._cache.move_to_end(key)
            while len(self._cache) > self.config.result_cache_size:
                self._cache.popitem(last=False)
            self.metrics.gauge("repro_serve_result_cache_size").set(len(self._cache))

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop every cached result computed on graph content ``fingerprint``."""
        with self._cache_lock:
            stale = [key for key in self._cache if key[0] == fingerprint]
            for key in stale:
                del self._cache[key]
            self.metrics.gauge("repro_serve_result_cache_size").set(len(self._cache))
        if stale:
            self.metrics.counter("repro_serve_result_cache_invalidations_total").inc(
                len(stale)
            )
        return len(stale)

    def _on_registry_event(
        self, name: str, old: GraphEntry | None, new: GraphEntry | None
    ) -> None:
        # replace or evict: results for the old content are dead weight
        # (fingerprint keys already prevent stale hits).
        if old is not None and (new is None or new.fingerprint != old.fingerprint):
            self.invalidate_fingerprint(old.fingerprint)

    # ------------------------------------------------------------------
    # observability plumbing
    # ------------------------------------------------------------------
    def _span(self, name: str, **attrs):
        tracer = self.observer.tracer
        return tracer.span(name, **attrs) if tracer is not None else nullcontext()

    def _count_request(self) -> None:
        self.metrics.counter("repro_serve_requests_total").inc()

    def _gauge_depth(self) -> None:
        if self._queue is not None:
            self.metrics.gauge("repro_serve_queue_depth").set(self._queue.qsize())

    def _cache_ratio(self) -> None:
        hits = self.metrics.counter("repro_serve_result_cache_hits_total").value
        misses = self.metrics.counter("repro_serve_result_cache_misses_total").value
        total = hits + misses
        self.metrics.gauge("repro_serve_result_cache_hit_ratio").set(
            hits / total if total else 0.0
        )

    def _finish(self, response, t0: float) -> None:
        latency = time.perf_counter() - t0
        self.metrics.histogram("repro_serve_latency_seconds").observe(latency)
        code = "ok" if response.ok else response.code
        self.metrics.counter("repro_serve_responses_total", code=code).inc()
