"""Seeded synthetic graph generators.

The paper evaluates on ten real-world inputs (Table 1) spanning several
topology classes: power-law social/web graphs, a Kronecker graph, an RMAT
graph, a planar triangulation, an Internet AS topology, and a road network.
Those files are hundreds of MB to tens of GB and are not redistributable
here, so every input is substituted by a *seeded generator of the same
topology class*, scaled down (see ``repro.graph.datasets`` for the mapping).
What matters for the paper's conclusions — degree skew, clustering, hub
structure — is a property of the class, which these generators preserve.

All generators are deterministic given ``seed`` and return
:class:`~repro.graph.csr.CSRGraph`.
"""

from __future__ import annotations

import numpy as np

from .build import graph_from_raw_edges
from .csr import INDEX_DTYPE, CSRGraph

__all__ = [
    "rmat",
    "kronecker",
    "erdos_renyi",
    "barabasi_albert",
    "powerlaw_cluster",
    "random_geometric",
    "delaunay",
    "road_network",
    "internet_topology",
    "web_copying",
    "complete_graph",
    "cycle_graph",
    "star_graph",
    "path_graph",
    "grid_graph",
]


# ----------------------------------------------------------------------
# skewed-degree generators (vectorized NumPy)
# ----------------------------------------------------------------------
def rmat(
    scale: int,
    edge_factor: int = 8,
    *,
    a: float = 0.45,
    b: float = 0.22,
    c: float = 0.22,
    seed: int = 0,
) -> CSRGraph:
    """Recursive-MATrix generator (Chakrabarti et al.).

    Produces ``2**scale`` vertices and about ``edge_factor * 2**scale``
    undirected edges (fewer after dedup). The default (a, b, c) gives the
    mildly skewed distribution of the paper's ``rmat16.sym`` input.

    The bit-by-bit quadrant choice is fully vectorized: one ``(m, scale)``
    uniform draw decides every bit of every endpoint at once.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    d = 1.0 - a - b - c
    if d < -1e-12 or min(a, b, c) < 0:
        raise ValueError("quadrant probabilities must be non-negative and sum to <= 1")
    rng = np.random.default_rng(seed)
    m = edge_factor << scale
    # For each edge and each bit level, pick a quadrant according to
    # (a, b, c, d); quadrant index kk in {0,1,2,3} sets (src_bit, dst_bit).
    u = rng.random((m, scale))
    quadrant = np.searchsorted(np.cumsum([a, b, c]), u)  # 0..3
    src_bits = (quadrant >> 1) & 1  # quadrants 2,3 set the src bit
    dst_bits = quadrant & 1  # quadrants 1,3 set the dst bit
    weights = (1 << np.arange(scale, dtype=INDEX_DTYPE))[::-1]
    src = src_bits.astype(INDEX_DTYPE) @ weights
    dst = dst_bits.astype(INDEX_DTYPE) @ weights
    return graph_from_raw_edges(np.column_stack([src, dst]))


def kronecker(scale: int, edge_factor: int = 16, *, seed: int = 0) -> CSRGraph:
    """Graph500-style Kronecker generator (RMAT with the Graph500 seed
    matrix a=0.57, b=0.19, c=0.19), the class of ``kron_g500-logn20``."""
    return rmat(scale, edge_factor, a=0.57, b=0.19, c=0.19, seed=seed)


def erdos_renyi(n: int, p: float, *, seed: int = 0) -> CSRGraph:
    """G(n, p) via geometric skipping over the upper triangle (O(m))."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = np.random.default_rng(seed)
    if p == 0.0 or n < 2:
        return CSRGraph.from_edges(np.empty((0, 2), dtype=INDEX_DTYPE), num_vertices=n)
    total_pairs = n * (n - 1) // 2
    if p == 1.0:
        idx = np.arange(total_pairs, dtype=INDEX_DTYPE)
    else:
        # Draw the gaps between successive present pairs geometrically.
        expected = int(total_pairs * p)
        margin = expected + 10 * int(np.sqrt(expected + 1)) + 10
        gaps = rng.geometric(p, size=margin)
        idx = np.cumsum(gaps) - 1
        idx = idx[idx < total_pairs]
    # Invert the linear upper-triangle index into (row, col).
    row = (n - 2 - np.floor(np.sqrt(-8 * idx + 4 * n * (n - 1) - 7) / 2.0 - 0.5)).astype(
        INDEX_DTYPE
    )
    col = (idx + row + 1 - n * (n - 1) // 2 + (n - row) * ((n - row) - 1) // 2).astype(
        INDEX_DTYPE
    )
    return CSRGraph.from_edges(np.column_stack([row, col]), num_vertices=n)


def barabasi_albert(n: int, m: int, *, seed: int = 0) -> CSRGraph:
    """Preferential attachment (class of the co-purchase and journal
    community graphs). Uses the repeated-endpoints trick for O(m) sampling."""
    if m < 1 or n <= m:
        raise ValueError("need n > m >= 1")
    rng = np.random.default_rng(seed)
    targets = list(range(m))
    repeated: list[int] = []
    edges = np.empty(((n - m) * m, 2), dtype=INDEX_DTYPE)
    k = 0
    for v in range(m, n):
        for t in targets:
            edges[k] = (v, t)
            k += 1
        repeated.extend(targets)
        repeated.extend([v] * m)
        # sample m distinct endpoints proportional to degree
        picked: set[int] = set()
        while len(picked) < m:
            picked.add(repeated[rng.integers(len(repeated))])
        targets = list(picked)
    return graph_from_raw_edges(edges[:k])


def powerlaw_cluster(n: int, m: int, p: float, *, seed: int = 0) -> CSRGraph:
    """Holme–Kim power-law graph with tunable clustering (class of the
    citation graph ``coPapersDBLP``, which is both skewed and clustered)."""
    import networkx as nx

    nxg = nx.powerlaw_cluster_graph(n, m, p, seed=seed)
    return CSRGraph.from_networkx(nxg)


def internet_topology(n: int, *, seed: int = 0) -> CSRGraph:
    """Internet AS-level topology (Elmokashfi model; class of ``internet``)."""
    import networkx as nx

    nxg = nx.random_internet_as_graph(n, seed=seed)
    return CSRGraph.from_networkx(nx.convert_node_labels_to_integers(nxg))


def web_copying(n: int, out_degree: int = 7, copy_prob: float = 0.5, *, seed: int = 0) -> CSRGraph:
    """Kleinberg copying model for web link graphs (class of ``in-2004``
    and ``uk-2002``): each new page copies a fraction of a random prototype
    page's links, producing heavy-tailed in-degree and many bipartite cores.
    """
    rng = np.random.default_rng(seed)
    return _web_copying_impl(n, out_degree, copy_prob, rng)


def _web_copying_impl(n: int, out_degree: int, copy_prob: float, rng) -> CSRGraph:
    k0 = out_degree + 1
    adj: list[list[int]] = [[j for j in range(k0) if j != i] for i in range(k0)]
    edges: list[tuple[int, int]] = [(i, j) for i in range(k0) for j in range(i + 1, k0)]
    for v in range(k0, n):
        proto = int(rng.integers(v))
        proto_links = adj[proto]
        chosen: set[int] = set()
        for slot in range(out_degree):
            if proto_links and rng.random() < copy_prob:
                t = proto_links[int(rng.integers(len(proto_links)))]
            else:
                t = int(rng.integers(v))
            if t != v:
                chosen.add(t)
        adj.append(sorted(chosen))
        for t in chosen:
            edges.append((v, t))
    return graph_from_raw_edges(np.asarray(edges, dtype=INDEX_DTYPE))


# ----------------------------------------------------------------------
# geometric / planar / sparse generators
# ----------------------------------------------------------------------
def random_geometric(n: int, radius: float, *, seed: int = 0) -> CSRGraph:
    """Random geometric graph in the unit square (cKDTree pair query)."""
    from scipy.spatial import cKDTree

    rng = np.random.default_rng(seed)
    points = rng.random((n, 2))
    tree = cKDTree(points)
    pairs = tree.query_pairs(radius, output_type="ndarray")
    return CSRGraph.from_edges(pairs.astype(INDEX_DTYPE), num_vertices=n)


def delaunay(n: int, *, seed: int = 0) -> CSRGraph:
    """Delaunay triangulation of random points (class of ``delaunay_n22``):
    planar, near-constant degree (avg ~6), tiny max degree."""
    from scipy.spatial import Delaunay as _Delaunay

    rng = np.random.default_rng(seed)
    points = rng.random((n, 2))
    tri = _Delaunay(points)
    simplices = tri.simplices
    edges = np.concatenate(
        [simplices[:, [0, 1]], simplices[:, [1, 2]], simplices[:, [0, 2]]]
    )
    return graph_from_raw_edges(edges.astype(INDEX_DTYPE))


def road_network(rows: int, cols: int, *, keep_prob: float = 0.7, seed: int = 0) -> CSRGraph:
    """Road-map-like graph (class of ``USA-road-d.NY``): a grid with random
    street removals, giving avg degree ~2.8 and max degree <= 4."""
    rng = np.random.default_rng(seed)
    n = rows * cols
    vid = np.arange(n, dtype=INDEX_DTYPE).reshape(rows, cols)
    horiz = np.column_stack([vid[:, :-1].ravel(), vid[:, 1:].ravel()])
    vert = np.column_stack([vid[:-1, :].ravel(), vid[1:, :].ravel()])
    edges = np.concatenate([horiz, vert])
    mask = rng.random(len(edges)) < keep_prob
    graph = CSRGraph.from_edges(edges[mask], num_vertices=n)
    return graph


def grid_graph(rows: int, cols: int) -> CSRGraph:
    """Full 2-D grid (deterministic)."""
    return road_network(rows, cols, keep_prob=1.0, seed=0)


# ----------------------------------------------------------------------
# canonical small graphs (used heavily in tests)
# ----------------------------------------------------------------------
def complete_graph(n: int) -> CSRGraph:
    idx = np.arange(n, dtype=INDEX_DTYPE)
    row, col = np.meshgrid(idx, idx, indexing="ij")
    mask = row < col
    return CSRGraph.from_edges(
        np.column_stack([row[mask], col[mask]]), num_vertices=n
    )


def cycle_graph(n: int) -> CSRGraph:
    if n < 3:
        raise ValueError("cycle needs >= 3 vertices")
    idx = np.arange(n, dtype=INDEX_DTYPE)
    return CSRGraph.from_edges(np.column_stack([idx, (idx + 1) % n]), num_vertices=n)


def star_graph(k: int) -> CSRGraph:
    """Hub 0 with k spokes (k+1 vertices)."""
    spokes = np.arange(1, k + 1, dtype=INDEX_DTYPE)
    return CSRGraph.from_edges(
        np.column_stack([np.zeros(k, dtype=INDEX_DTYPE), spokes]), num_vertices=k + 1
    )


def path_graph(n: int) -> CSRGraph:
    idx = np.arange(n - 1, dtype=INDEX_DTYPE)
    return CSRGraph.from_edges(np.column_stack([idx, idx + 1]), num_vertices=n)
