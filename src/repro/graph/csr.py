"""Immutable CSR (compressed sparse row) graph.

This is the graph substrate every engine in the reproduction runs on. It
mirrors the data layout the paper's CUDA code uses: a ``rowptr`` offsets
array, a ``colidx`` array holding all adjacency lists back to back, and each
adjacency list **sorted ascending** so membership queries are binary
searches and set intersections are linear merges (paper §3.6).

The graph is undirected and simple: every edge ``{u, v}`` appears twice in
``colidx`` (once under ``u``, once under ``v``), self loops and duplicate
edges are removed at construction time.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["CSRGraph"]

# Index dtype used throughout the package. int64 keeps uk-2002-scale inputs
# (0.5 G directed edges in the paper) addressable without overflow checks.
INDEX_DTYPE = np.int64


class CSRGraph:
    """An immutable, undirected, simple graph in CSR form.

    Parameters
    ----------
    rowptr:
        ``(n + 1,)`` int64 array; adjacency list of vertex ``v`` occupies
        ``colidx[rowptr[v]:rowptr[v + 1]]``.
    colidx:
        ``(2 * m,)`` int64 array of neighbour ids, sorted within each list.
    validate:
        When true (the default), verify the CSR invariants. Constructors
        that already guarantee them pass ``False`` to skip the O(m) check.
    """

    # __weakref__: the shm export layer ties shared-memory segment
    # lifetime to graph objects via weakref.finalize
    __slots__ = ("rowptr", "colidx", "_degrees", "_fingerprint", "__weakref__")

    def __init__(self, rowptr: np.ndarray, colidx: np.ndarray, *, validate: bool = True):
        rowptr = np.ascontiguousarray(rowptr, dtype=INDEX_DTYPE)
        colidx = np.ascontiguousarray(colidx, dtype=INDEX_DTYPE)
        if validate:
            _validate_csr(rowptr, colidx)
        self.rowptr = rowptr
        self.colidx = colidx
        self._degrees = np.diff(rowptr)
        self._fingerprint: str | None = None
        # Freeze the buffers: engines may share one graph across worker
        # threads/processes and must never mutate it (paper §3.5: the graph
        # is read-only while counting).
        self.rowptr.setflags(write=False)
        self.colidx.setflags(write=False)
        self._degrees.setflags(write=False)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int]] | np.ndarray,
        num_vertices: int | None = None,
    ) -> "CSRGraph":
        """Build a graph from an iterable of (u, v) pairs.

        Duplicate edges, reversed duplicates, and self loops are dropped.
        ``num_vertices`` defaults to ``max vertex id + 1``.
        """
        arr = np.asarray(
            edges if isinstance(edges, np.ndarray) else list(edges), dtype=INDEX_DTYPE
        )
        if arr.size == 0:
            n = int(num_vertices or 0)
            return cls(np.zeros(n + 1, dtype=INDEX_DTYPE), np.empty(0, dtype=INDEX_DTYPE), validate=False)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError(f"edges must be an (m, 2) array, got shape {arr.shape}")
        if arr.min() < 0:
            raise ValueError("vertex ids must be non-negative")
        n = int(arr.max()) + 1
        if num_vertices is not None:
            if num_vertices < n:
                raise ValueError(f"num_vertices={num_vertices} < max vertex id + 1 = {n}")
            n = int(num_vertices)
        # Canonicalize to (min, max), drop self loops, dedup.
        lo = np.minimum(arr[:, 0], arr[:, 1])
        hi = np.maximum(arr[:, 0], arr[:, 1])
        keep = lo != hi
        lo, hi = lo[keep], hi[keep]
        key = lo * n + hi
        _, unique_idx = np.unique(key, return_index=True)
        lo, hi = lo[unique_idx], hi[unique_idx]
        # Symmetrize and sort by (src, dst): one np.lexsort gives both the
        # CSR ordering and sorted adjacency lists.
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        rowptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
        np.add.at(rowptr, src + 1, 1)
        np.cumsum(rowptr, out=rowptr)
        return cls(rowptr, dst, validate=False)

    @classmethod
    def from_networkx(cls, nxg) -> "CSRGraph":
        """Build from a :mod:`networkx` graph with integer labels 0..n-1."""
        n = nxg.number_of_nodes()
        labels = set(nxg.nodes)
        if labels != set(range(n)):
            raise ValueError("networkx graph must be labeled 0..n-1; use nx.convert_node_labels_to_integers")
        return cls.from_edges(list(nxg.edges()), num_vertices=n)

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (for tests and baselines)."""
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_nodes_from(range(self.num_vertices))
        src = np.repeat(np.arange(self.num_vertices, dtype=INDEX_DTYPE), self._degrees)
        mask = src < self.colidx  # each undirected edge once
        nxg.add_edges_from(zip(src[mask].tolist(), self.colidx[mask].tolist()))
        return nxg

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.rowptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of *undirected* edges."""
        return len(self.colidx) // 2

    @property
    def degrees(self) -> np.ndarray:
        """Degree of every vertex, shape ``(n,)`` (read-only view)."""
        return self._degrees

    def degree(self, v: int) -> int:
        return int(self.rowptr[v + 1] - self.rowptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted adjacency list of ``v`` (zero-copy view)."""
        return self.colidx[self.rowptr[v] : self.rowptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Binary-search membership test, O(log deg(u))."""
        adj = self.neighbors(u)
        i = int(np.searchsorted(adj, v))
        return i < len(adj) and adj[i] == v

    def edge_array(self) -> np.ndarray:
        """All undirected edges as an ``(m, 2)`` array with ``u < v``."""
        src = np.repeat(np.arange(self.num_vertices, dtype=INDEX_DTYPE), self._degrees)
        mask = src < self.colidx
        return np.column_stack([src[mask], self.colidx[mask]])

    def fingerprint(self) -> str:
        """Stable sha256 content digest of the graph (hex, cached).

        Hashes ``n`` plus the raw ``rowptr``/``colidx`` bytes, so two
        graphs built from the same edge list share a fingerprint across
        processes and machines (the arrays are canonical: int64,
        contiguous, adjacency sorted). This is the content identity used
        by serving-layer result caches; ``__hash__`` stays identity-based
        so live objects remain cheap dict keys.
        """
        fp = self._fingerprint
        if fp is None:
            h = hashlib.sha256()
            h.update(np.int64(self.num_vertices).tobytes())
            h.update(self.rowptr.tobytes())
            h.update(self.colidx.tobytes())
            fp = self._fingerprint = h.hexdigest()
        return fp

    def max_degree(self) -> int:
        return int(self._degrees.max(initial=0))

    def avg_degree(self) -> float:
        n = self.num_vertices
        return float(self._degrees.mean()) if n else 0.0

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def subgraph(self, vertices: Sequence[int]) -> "CSRGraph":
        """Vertex-induced subgraph, relabeled 0..len(vertices)-1."""
        verts = np.asarray(sorted(set(int(v) for v in vertices)), dtype=INDEX_DTYPE)
        remap = -np.ones(self.num_vertices, dtype=INDEX_DTYPE)
        remap[verts] = np.arange(len(verts), dtype=INDEX_DTYPE)
        edges = self.edge_array()
        mask = (remap[edges[:, 0]] >= 0) & (remap[edges[:, 1]] >= 0)
        kept = edges[mask]
        return CSRGraph.from_edges(
            np.column_stack([remap[kept[:, 0]], remap[kept[:, 1]]]), num_vertices=len(verts)
        )

    def relabel_by_degree(self, descending: bool = True) -> "CSRGraph":
        """Renumber vertices by degree (a common GPU preprocessing step)."""
        order = np.argsort(self._degrees, kind="stable")
        if descending:
            order = order[::-1]
        remap = np.empty(self.num_vertices, dtype=INDEX_DTYPE)
        remap[order] = np.arange(self.num_vertices, dtype=INDEX_DTYPE)
        edges = self.edge_array()
        return CSRGraph.from_edges(
            np.column_stack([remap[edges[:, 0]], remap[edges[:, 1]]]),
            num_vertices=self.num_vertices,
        )

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return np.array_equal(self.rowptr, other.rowptr) and np.array_equal(
            self.colidx, other.colidx
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hash is fine
        return id(self)

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.num_vertices}, m={self.num_edges})"

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.num_vertices))


def _validate_csr(rowptr: np.ndarray, colidx: np.ndarray) -> None:
    if rowptr.ndim != 1 or colidx.ndim != 1:
        raise ValueError("rowptr and colidx must be 1-D")
    if len(rowptr) == 0 or rowptr[0] != 0 or rowptr[-1] != len(colidx):
        raise ValueError("rowptr must start at 0 and end at len(colidx)")
    if np.any(np.diff(rowptr) < 0):
        raise ValueError("rowptr must be non-decreasing")
    n = len(rowptr) - 1
    if colidx.size and (colidx.min() < 0 or colidx.max() >= n):
        raise ValueError("colidx entries out of range")
    for v in range(n):
        adj = colidx[rowptr[v] : rowptr[v + 1]]
        if np.any(np.diff(adj) <= 0):
            raise ValueError(f"adjacency list of vertex {v} not strictly increasing")
        if np.any(adj == v):
            raise ValueError(f"self loop at vertex {v}")
