"""Graph statistics used by Table 1, the matcher's degree filter, and tests.

Everything here is vectorized NumPy or sorted-merge based; the triangle
counter in particular doubles as a fast independent check on the counting
engines (triangles via forward merge must equal ``count(triangle, G)``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = ["GraphSummary", "summarize", "triangle_count", "degeneracy_order", "num_components", "degree_histogram", "global_clustering", "degree_assortativity"]


@dataclass(frozen=True)
class GraphSummary:
    """The columns of the paper's Table 1."""

    name: str
    kind: str
    source: str
    vertices: int
    edges: int
    avg_degree: float
    max_degree: int

    def as_row(self) -> tuple:
        return (
            self.name,
            self.kind,
            self.source,
            self.vertices,
            self.edges,
            round(self.avg_degree, 1),
            self.max_degree,
        )


def summarize(graph: CSRGraph, name: str = "", kind: str = "", source: str = "") -> GraphSummary:
    return GraphSummary(
        name=name,
        kind=kind,
        source=source,
        vertices=graph.num_vertices,
        edges=graph.num_edges,
        avg_degree=graph.avg_degree(),
        max_degree=graph.max_degree(),
    )


def triangle_count(graph: CSRGraph) -> int:
    """Exact triangle count via forward adjacency intersection.

    For every edge (u, v) with u < v, intersect the *higher-id* parts of
    both sorted adjacency lists; summing the intersection sizes counts each
    triangle exactly once at its lowest-id vertex.
    """
    rowptr, colidx = graph.rowptr, graph.colidx
    total = 0
    for u in range(graph.num_vertices):
        adj_u = colidx[rowptr[u] : rowptr[u + 1]]
        fwd_u = adj_u[adj_u > u]
        for v in fwd_u:
            adj_v = colidx[rowptr[v] : rowptr[v + 1]]
            fwd_v = adj_v[adj_v > v]
            # |fwd_u ∩ fwd_v| with both sorted: searchsorted membership test
            if len(fwd_v) and len(fwd_u):
                hits = fwd_u[np.isin(fwd_u, fwd_v, assume_unique=True)]
                total += int(np.count_nonzero(hits > v))
    return total


def degeneracy_order(graph: CSRGraph) -> tuple[np.ndarray, int]:
    """Matula–Beck peeling order; returns (order, degeneracy)."""
    n = graph.num_vertices
    deg = graph.degrees.copy()
    removed = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    # bucket queue over degrees
    buckets: list[set[int]] = [set() for _ in range(graph.max_degree() + 1)]
    for v in range(n):
        buckets[deg[v]].add(v)
    degeneracy = 0
    lowest = 0
    for i in range(n):
        while lowest < len(buckets) and not buckets[lowest]:
            lowest += 1
        if lowest >= len(buckets):
            break
        v = buckets[lowest].pop()
        degeneracy = max(degeneracy, int(deg[v]))
        order[i] = v
        removed[v] = True
        for w in graph.neighbors(v):
            w = int(w)
            if not removed[w]:
                buckets[deg[w]].discard(w)
                deg[w] -= 1
                buckets[deg[w]].add(w)
                lowest = min(lowest, int(deg[w]))
    return order, degeneracy


def num_components(graph: CSRGraph) -> int:
    """Connected components via scipy's sparse BFS."""
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import connected_components

    n = graph.num_vertices
    if n == 0:
        return 0
    mat = csr_matrix(
        (np.ones(len(graph.colidx), dtype=np.int8), graph.colidx, graph.rowptr), shape=(n, n)
    )
    count, _ = connected_components(mat, directed=False)
    return int(count)


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """``hist[d]`` = number of vertices with degree ``d``."""
    return np.bincount(graph.degrees, minlength=1)


def global_clustering(graph: CSRGraph) -> float:
    """Transitivity: 3 · triangles / wedges (0.0 for wedge-free graphs)."""
    deg = graph.degrees.astype(np.int64)
    wedges = int((deg * (deg - 1) // 2).sum())
    if wedges == 0:
        return 0.0
    return 3.0 * triangle_count(graph) / wedges


def degree_assortativity(graph: CSRGraph) -> float:
    """Pearson correlation of endpoint degrees over edges (Newman).

    Positive for social-style graphs (hubs link hubs), negative for
    internet-style topologies (hubs link leaves) — one of the
    class-distinguishing statistics for the Table 1 stand-ins.
    """
    edges = graph.edge_array()
    if len(edges) == 0:
        return 0.0
    deg = graph.degrees.astype(np.float64)
    x = np.concatenate([deg[edges[:, 0]], deg[edges[:, 1]]])
    y = np.concatenate([deg[edges[:, 1]], deg[edges[:, 0]]])
    sx = x.std()
    if sx == 0:
        return 0.0  # regular graph: correlation undefined, report 0
    return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * y.std()))
