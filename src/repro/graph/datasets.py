"""Registry of the paper's Table 1 inputs, backed by seeded generators.

Each of the ten real inputs is mapped to a synthetic generator of the same
topology class (see DESIGN.md §3), at three sizes:

* ``tiny``  — sub-second construction, for unit/integration tests;
* ``small`` — the default benchmark size, a few thousand to ~100k edges;
* ``large`` — stress size for the scaling studies (still laptop friendly).

``make(name, scale)`` is memoized per process so benchmark modules can all
share one instance of each input.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from . import generators as gen
from .csr import CSRGraph
from .stats import GraphSummary, summarize

__all__ = ["DatasetSpec", "DATASETS", "dataset_names", "make", "table1", "paper_table1"]


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table 1: the real input and its synthetic stand-in."""

    name: str
    kind: str
    source: str
    paper_vertices: int
    paper_edges: int
    paper_avg_degree: float
    paper_max_degree: int
    builders: dict[str, Callable[[], CSRGraph]]


def _spec(name, kind, source, pv, pe, pavg, pmax, builders) -> DatasetSpec:
    return DatasetSpec(name, kind, source, pv, pe, pavg, pmax, builders)


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        _spec(
            "amazon0601",
            "co-purchases",
            "SNAP",
            403_394,
            2_443_408,
            12.1,
            2_752,
            {
                "tiny": lambda: gen.barabasi_albert(300, 6, seed=11),
                "small": lambda: gen.barabasi_albert(4_000, 6, seed=11),
                "large": lambda: gen.barabasi_albert(40_000, 6, seed=11),
            },
        ),
        _spec(
            "coPapersDBLP",
            "publication citations",
            "SMC",
            540_486,
            30_491_458,
            56.4,
            3_299,
            {
                "tiny": lambda: gen.powerlaw_cluster(250, 12, 0.7, seed=12),
                "small": lambda: gen.powerlaw_cluster(2_500, 20, 0.7, seed=12),
                "large": lambda: gen.powerlaw_cluster(20_000, 28, 0.7, seed=12),
            },
        ),
        _spec(
            "delaunay_n22",
            "triangulation",
            "SMC",
            4_194_304,
            25_165_738,
            6.0,
            23,
            {
                "tiny": lambda: gen.delaunay(300, seed=13),
                "small": lambda: gen.delaunay(5_000, seed=13),
                "large": lambda: gen.delaunay(50_000, seed=13),
            },
        ),
        _spec(
            "in-2004",
            "web links",
            "SMC",
            1_382_908,
            13_591_473,
            19.7,
            21_869,
            {
                "tiny": lambda: gen.web_copying(300, out_degree=10, seed=14),
                "small": lambda: gen.web_copying(4_000, out_degree=10, seed=14),
                "large": lambda: gen.web_copying(30_000, out_degree=10, seed=14),
            },
        ),
        _spec(
            "internet",
            "Internet topology",
            "SMC",
            124_651,
            193_620,
            3.1,
            151,
            {
                "tiny": lambda: gen.internet_topology(400, seed=15),
                "small": lambda: gen.internet_topology(6_000, seed=15),
                "large": lambda: gen.internet_topology(60_000, seed=15),
            },
        ),
        _spec(
            "kron_g500-logn20",
            "Kronecker",
            "SMC",
            1_048_576,
            89_238_804,
            85.1,
            131_503,
            {
                "tiny": lambda: gen.kronecker(8, 16, seed=16),
                "small": lambda: gen.kronecker(12, 16, seed=16),
                "large": lambda: gen.kronecker(15, 16, seed=16),
            },
        ),
        _spec(
            "rmat16.sym",
            "RMAT",
            "Galois",
            65_536,
            483_933,
            14.8,
            569,
            {
                "tiny": lambda: gen.rmat(8, 8, seed=17),
                "small": lambda: gen.rmat(12, 8, seed=17),
                "large": lambda: gen.rmat(16, 8, seed=17),
            },
        ),
        _spec(
            "soc-LiveJournal1",
            "journal community",
            "SNAP",
            4_847_571,
            85_702_474,
            17.7,
            20_333,
            {
                "tiny": lambda: gen.barabasi_albert(300, 9, seed=18),
                "small": lambda: gen.barabasi_albert(5_000, 9, seed=18),
                "large": lambda: gen.barabasi_albert(50_000, 9, seed=18),
            },
        ),
        _spec(
            "uk-2002",
            "Web links",
            "SMC",
            18_520_486,
            523_574_516,
            28.3,
            194_955,
            {
                "tiny": lambda: gen.web_copying(350, out_degree=14, seed=19),
                "small": lambda: gen.web_copying(6_000, out_degree=14, seed=19),
                "large": lambda: gen.web_copying(60_000, out_degree=14, seed=19),
            },
        ),
        _spec(
            "USA-road-d.NY",
            "road map",
            "Dimacs",
            264_346,
            730_100,
            2.8,
            3,
            {
                "tiny": lambda: gen.road_network(18, 18, keep_prob=0.7, seed=20),
                "small": lambda: gen.road_network(80, 80, keep_prob=0.7, seed=20),
                "large": lambda: gen.road_network(250, 250, keep_prob=0.7, seed=20),
            },
        ),
    ]
}


def dataset_names() -> list[str]:
    """The ten inputs, in the order of the paper's Table 1."""
    return list(DATASETS)


@lru_cache(maxsize=None)
def make(name: str, scale: str = "small") -> CSRGraph:
    """Instantiate (and memoize) a dataset stand-in.

    Parameters
    ----------
    name:
        A Table 1 graph name, e.g. ``"kron_g500-logn20"``.
    scale:
        ``"tiny"``, ``"small"``, or ``"large"``.
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; known: {dataset_names()}") from None
    try:
        builder = spec.builders[scale]
    except KeyError:
        raise KeyError(f"unknown scale {scale!r}; known: {sorted(spec.builders)}") from None
    return builder()


def table1(scale: str = "small") -> list[GraphSummary]:
    """Regenerate Table 1 for the synthetic stand-ins at ``scale``."""
    return [
        summarize(make(spec.name, scale), spec.name, spec.kind, spec.source)
        for spec in DATASETS.values()
    ]


def paper_table1() -> list[GraphSummary]:
    """The paper's published Table 1 numbers (for side-by-side reporting)."""
    return [
        GraphSummary(
            s.name, s.kind, s.source, s.paper_vertices, s.paper_edges, s.paper_avg_degree, s.paper_max_degree
        )
        for s in DATASETS.values()
    ]
