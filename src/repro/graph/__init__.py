"""Graph substrate: CSR storage, I/O, generators, datasets, statistics."""

from .csr import CSRGraph
from .build import clean_edges, compact_labels, graph_from_raw_edges
from . import generators, datasets, io, stats

__all__ = [
    "CSRGraph",
    "clean_edges",
    "compact_labels",
    "graph_from_raw_edges",
    "generators",
    "datasets",
    "io",
    "stats",
]
