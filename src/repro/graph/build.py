"""Helpers for assembling and cleaning edge lists before CSR construction.

The paper's inputs come from heterogeneous sources (SNAP, SuiteSparse,
DIMACS, Galois) with different conventions: directed vs undirected, 0- vs
1-based ids, duplicate arcs, self loops. Everything funnels through
:func:`clean_edges` so each loader stays a thin format parser.
"""

from __future__ import annotations

import numpy as np

from .csr import INDEX_DTYPE, CSRGraph

__all__ = ["clean_edges", "compact_labels", "graph_from_raw_edges"]


def clean_edges(edges: np.ndarray) -> np.ndarray:
    """Drop self loops and duplicate (including reversed) edges.

    Returns an ``(m, 2)`` array with ``u < v`` per row, sorted.
    """
    arr = np.asarray(edges, dtype=INDEX_DTYPE)
    if arr.size == 0:
        return arr.reshape(0, 2)
    lo = np.minimum(arr[:, 0], arr[:, 1])
    hi = np.maximum(arr[:, 0], arr[:, 1])
    keep = lo != hi
    lo, hi = lo[keep], hi[keep]
    if lo.size == 0:
        return np.empty((0, 2), dtype=INDEX_DTYPE)
    n = int(hi.max()) + 1
    key = lo * n + hi
    key = np.unique(key)
    return np.column_stack([key // n, key % n])


def compact_labels(edges: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Relabel arbitrary vertex ids to 0..k-1.

    Returns ``(relabeled_edges, original_ids)`` where ``original_ids[i]`` is
    the source id of the new vertex ``i``.
    """
    arr = np.asarray(edges, dtype=INDEX_DTYPE)
    if arr.size == 0:
        return arr.reshape(0, 2), np.empty(0, dtype=INDEX_DTYPE)
    ids, inverse = np.unique(arr, return_inverse=True)
    return inverse.reshape(arr.shape).astype(INDEX_DTYPE), ids


def graph_from_raw_edges(edges: np.ndarray, *, compact: bool = False) -> CSRGraph:
    """One-stop cleaning + CSR construction used by every loader."""
    cleaned = clean_edges(edges)
    if compact:
        cleaned, _ = compact_labels(cleaned)
    return CSRGraph.from_edges(cleaned)
