"""Graph readers and writers for the formats the paper's inputs ship in.

Supported formats:

* SNAP/Galois edge lists (``.txt``/``.el``): whitespace-separated pairs,
  ``#``/``%`` comment lines.
* Matrix Market coordinate (``.mtx``): SuiteSparse Matrix Collection (the
  paper's "SMC" source) symmetric pattern matrices; 1-based.
* DIMACS shortest-path (``.gr``): ``a u v w`` arc lines, 1-based (the
  USA-road-d inputs).
* Binary ``.npz``: our own round-trip format storing the CSR arrays
  directly, for fast benchmark startup.

All loaders return an undirected simple :class:`~repro.graph.csr.CSRGraph`.
"""

from __future__ import annotations

import io as _io
from pathlib import Path

import numpy as np

from .build import graph_from_raw_edges
from .csr import INDEX_DTYPE, CSRGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_mtx",
    "write_mtx",
    "read_dimacs_gr",
    "read_metis",
    "write_metis",
    "read_npz",
    "write_npz",
    "load_graph",
]


def _open_text(path) -> _io.TextIOBase:
    return open(path, "r", encoding="utf-8")


def read_edge_list(path, *, comments: str = "#%", compact: bool = False) -> CSRGraph:
    """Read a SNAP-style whitespace-separated edge list."""
    rows: list[tuple[int, int]] = []
    with _open_text(path) as fh:
        for line in fh:
            line = line.strip()
            if not line or line[0] in comments:
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            rows.append((int(parts[0]), int(parts[1])))
    edges = np.asarray(rows, dtype=INDEX_DTYPE).reshape(-1, 2)
    return graph_from_raw_edges(edges, compact=compact)


def write_edge_list(graph: CSRGraph, path) -> None:
    """Write each undirected edge once as ``u v`` per line."""
    edges = graph.edge_array()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# undirected simple graph: {graph.num_vertices} vertices, {graph.num_edges} edges\n")
        for u, v in edges:
            fh.write(f"{u} {v}\n")


def read_mtx(path) -> CSRGraph:
    """Read a Matrix Market coordinate file as an undirected graph.

    Handles both ``symmetric`` and ``general`` storage; entry values (if
    present) are ignored — we only use the sparsity pattern, matching how
    the paper treats SMC matrices as graphs.
    """
    with _open_text(path) as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError("not a MatrixMarket file")
        if "coordinate" not in header:
            raise ValueError("only coordinate (sparse) MatrixMarket supported")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        nrows, ncols, nnz = (int(x) for x in line.split())
        n = max(nrows, ncols)
        edges = np.empty((nnz, 2), dtype=INDEX_DTYPE)
        k = 0
        for line in fh:
            line = line.strip()
            if not line:
                continue
            parts = line.split()
            edges[k, 0] = int(parts[0]) - 1
            edges[k, 1] = int(parts[1]) - 1
            k += 1
        if k != nnz:
            raise ValueError(f"expected {nnz} entries, found {k}")
    graph = graph_from_raw_edges(edges)
    if graph.num_vertices < n:
        # preserve isolated trailing vertices declared in the header
        rowptr = np.concatenate(
            [graph.rowptr, np.full(n - graph.num_vertices, graph.rowptr[-1], dtype=INDEX_DTYPE)]
        )
        graph = CSRGraph(rowptr, graph.colidx, validate=False)
    return graph


def write_mtx(graph: CSRGraph, path) -> None:
    edges = graph.edge_array()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("%%MatrixMarket matrix coordinate pattern symmetric\n")
        fh.write(f"{graph.num_vertices} {graph.num_vertices} {len(edges)}\n")
        for u, v in edges:
            # MatrixMarket symmetric stores the lower triangle, 1-based.
            fh.write(f"{max(u, v) + 1} {min(u, v) + 1}\n")


def read_dimacs_gr(path) -> CSRGraph:
    """Read a 9th DIMACS challenge ``.gr`` file (arc weights dropped)."""
    rows: list[tuple[int, int]] = []
    declared_n = None
    with _open_text(path) as fh:
        for line in fh:
            if line.startswith("c") or not line.strip():
                continue
            if line.startswith("p"):
                parts = line.split()
                declared_n = int(parts[2])
                continue
            if line.startswith("a") or line.startswith("e"):
                parts = line.split()
                rows.append((int(parts[1]) - 1, int(parts[2]) - 1))
    edges = np.asarray(rows, dtype=INDEX_DTYPE).reshape(-1, 2)
    graph = graph_from_raw_edges(edges)
    if declared_n is not None and graph.num_vertices < declared_n:
        rowptr = np.concatenate(
            [
                graph.rowptr,
                np.full(declared_n - graph.num_vertices, graph.rowptr[-1], dtype=INDEX_DTYPE),
            ]
        )
        graph = CSRGraph(rowptr, graph.colidx, validate=False)
    return graph


def read_metis(path) -> CSRGraph:
    """Read a METIS ``.graph`` file (1-based adjacency lists per line).

    Supports the unweighted format: first non-comment line is
    ``<n> <m> [fmt]``; line ``i`` lists the neighbours of vertex ``i``.
    Weighted variants (fmt != 0) are rejected explicitly.
    """
    with _open_text(path) as fh:
        header = None
        rows: list[list[int]] = []
        for line in fh:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            if header is None:
                parts = line.split()
                if len(parts) >= 3 and parts[2] not in ("0", "00", "000"):
                    raise ValueError("weighted METIS graphs are not supported")
                header = (int(parts[0]), int(parts[1]))
                continue
            rows.append([int(x) - 1 for x in line.split()])
        if header is None:
            raise ValueError("empty METIS file")
    n, m = header
    if len(rows) != n:
        raise ValueError(f"METIS header declares {n} vertices, found {len(rows)} lines")
    edges = [(v, w) for v, nbrs in enumerate(rows) for w in nbrs]
    arr = np.asarray(edges, dtype=INDEX_DTYPE).reshape(-1, 2)
    graph = CSRGraph.from_edges(arr, num_vertices=n)
    if graph.num_edges != m:
        raise ValueError(
            f"METIS header declares {m} edges, adjacency lists yield {graph.num_edges}"
        )
    return graph


def write_metis(graph: CSRGraph, path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"{graph.num_vertices} {graph.num_edges}\n")
        for v in range(graph.num_vertices):
            fh.write(" ".join(str(int(w) + 1) for w in graph.neighbors(v)) + "\n")


def write_npz(graph: CSRGraph, path) -> None:
    np.savez_compressed(path, rowptr=graph.rowptr, colidx=graph.colidx)


def read_npz(path) -> CSRGraph:
    with np.load(path) as data:
        return CSRGraph(data["rowptr"], data["colidx"], validate=False)


_LOADERS = {
    ".graph": read_metis,
    ".metis": read_metis,
    ".txt": read_edge_list,
    ".el": read_edge_list,
    ".edges": read_edge_list,
    ".mtx": read_mtx,
    ".gr": read_dimacs_gr,
    ".npz": read_npz,
}


def load_graph(path) -> CSRGraph:
    """Dispatch on file extension to the right reader."""
    suffix = Path(path).suffix.lower()
    try:
        loader = _LOADERS[suffix]
    except KeyError:
        raise ValueError(f"unknown graph format {suffix!r}; supported: {sorted(_LOADERS)}") from None
    return loader(path)
