"""T-DFS stand-in: task-decomposed depth-first subgraph matching.

T-DFS (ICDE '24) improves on STMatch by splitting the search into
fixed-size *tasks* (sub-trees of the DFS rooted at the first matched
vertex), distributing them round-robin, and re-queuing straggler tasks via
a timeout mechanism backed by a lock-free queue. The *algorithm* per task
is still whole-pattern enumeration, so its asymptotics match STMatch; the
task layer changes constants and load balance.

This stand-in reproduces that structure on the CPU: the root-vertex space
is chunked into tasks, tasks run through the same stack matcher, and an
(optional) straggler threshold re-splits long-running tasks into
single-root tasks, mimicking T-DFS's timeout redistribution. The benchmark
harness runs it single-threaded (deterministic); the parallel layer can
fan tasks out across processes.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from ..core.matcher import build_plan, match_cores
from ..graph.csr import CSRGraph
from ..patterns.decompose import decomposition_from_core
from ..patterns.pattern import Pattern
from .common import BaselineResult, Deadline

__all__ = ["TDFSCounter", "count_tdfs"]


class TDFSCounter:
    """Pattern-compiled task-decomposed DFS counter (T-DFS stand-in)."""

    name = "tdfs-like"
    MAX_PATTERN_VERTICES = 10

    def __init__(
        self,
        pattern: Pattern,
        *,
        task_size: int = 64,
        straggler_factor: float = 8.0,
        max_vertices: int | None = None,
    ):
        limit = max_vertices if max_vertices is not None else self.MAX_PATTERN_VERTICES
        if pattern.n > limit:
            raise ValueError(
                f"{self.name} supports patterns up to {limit} vertices (got {pattern.n})"
            )
        if not pattern.is_connected:
            raise ValueError("pattern must be connected")
        self.pattern = pattern
        self.task_size = task_size
        self.straggler_factor = straggler_factor
        if pattern.n >= 2:
            decomp = decomposition_from_core(pattern, range(pattern.n))
            self.plan = build_plan(decomp, symmetry_breaking=True)
        else:
            self.plan = None

    def count(self, graph: CSRGraph, *, timeout_s: float | None = None) -> BaselineResult:
        start = time.perf_counter()
        if self.pattern.n == 1:
            return BaselineResult(
                count=graph.num_vertices,
                engine=self.name,
                elapsed_s=time.perf_counter() - start,
                embeddings_visited=graph.num_vertices,
            )
        deadline = Deadline(timeout_s, self.name)
        roots = np.arange(graph.num_vertices, dtype=np.int64)
        queue: deque[np.ndarray] = deque(
            roots[i : i + self.task_size] for i in range(0, len(roots), self.task_size)
        )
        total = 0
        visited = 0
        task_times: list[float] = []
        while queue:
            task = queue.popleft()
            t0 = time.perf_counter()
            budget = self._straggler_budget(task_times)
            resplit_at = None
            produced = 0
            for i, root in enumerate(task.tolist()):
                for _ in match_cores(graph, self.plan, start_vertices=[root]):
                    total += 1
                    produced += 1
                    deadline.check()
                # timeout mechanism: if this task overruns and still has
                # roots left, requeue the remainder as single-root tasks
                if budget is not None and time.perf_counter() - t0 > budget and i + 1 < len(task):
                    resplit_at = i + 1
                    break
            if resplit_at is not None:
                for root in task[resplit_at:].tolist():
                    queue.append(np.asarray([root], dtype=np.int64))
            task_times.append(time.perf_counter() - t0)
            visited += produced
        return BaselineResult(
            count=total,
            engine=self.name,
            elapsed_s=time.perf_counter() - start,
            embeddings_visited=visited,
        )

    def _straggler_budget(self, task_times: list[float]) -> float | None:
        if len(task_times) < 8:
            return None
        recent = task_times[-64:]
        return self.straggler_factor * (sum(recent) / len(recent)) + 1e-3


def count_tdfs(graph: CSRGraph, pattern: Pattern, *, timeout_s: float | None = None) -> BaselineResult:
    return TDFSCounter(pattern).count(graph, timeout_s=timeout_s)
