"""Approximate counting by core sampling (the approximation school, §2).

The paper notes that some SGC systems "rely on heuristics and
approximations" and positions Fringe-SGC as exact. This module provides
the natural approximate counterpart of the fringe method — and a striking
demonstration of why the decomposition helps even there:

sample *cores* uniformly (vertices for 1-vertex cores, edges for 2-vertex
cores), evaluate the **exact** fringe-set count F at each sampled core,
and scale by the sampling fraction. F is itself computed by the fringe
formula, so a single sample absorbs the full combinatorial weight of all
fringes around that core — the estimator's relative variance depends only
on how concentrated the per-core masses are, not on the pattern size.

Estimates come with a normal-approximation confidence interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.backends import SerialBackend
from ..core.engine import EngineConfig
from ..core.plan import compile_pattern
from ..graph.csr import CSRGraph
from ..patterns.pattern import Pattern

__all__ = ["SampledCount", "estimate_count"]


@dataclass(frozen=True)
class SampledCount:
    """An estimate with its uncertainty."""

    estimate: float
    std_error: float
    samples: int
    population: int  # number of sampling units (candidate roots)

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        return (self.estimate - z * self.std_error, self.estimate + z * self.std_error)

    def relative_error_vs(self, truth: int) -> float:
        if truth == 0:
            return 0.0 if self.estimate == 0 else math.inf
        return abs(self.estimate - truth) / truth


def estimate_count(
    graph: CSRGraph,
    pattern: Pattern,
    *,
    samples: int = 1000,
    seed: int = 0,
) -> SampledCount:
    """Unbiased estimate of ``count(P, G)`` by root-vertex sampling.

    Sampling unit: a start vertex of the core matcher. For each sampled
    root we run the exact engine restricted to that root (all core
    matches rooted there, each with its exact fringe count) — a textbook
    Horvitz–Thompson estimator over roots.
    """
    if pattern.n <= 2:
        exact = graph.num_vertices if pattern.n == 1 else graph.num_edges
        return SampledCount(float(exact), 0.0, 0, graph.num_vertices)

    plan = compile_pattern(pattern, EngineConfig(fc_impl="recursive"))
    backend = SerialBackend()
    n = graph.num_vertices
    rng = np.random.default_rng(seed)
    take = min(samples, n)
    roots = rng.choice(n, size=take, replace=False)

    scale = plan.group_order / plan.denominator
    masses = np.empty(take, dtype=np.float64)
    for i, root in enumerate(roots.tolist()):
        partial = backend.run(plan, graph, start_vertices=[int(root)])
        masses[i] = float(partial.sigma) * scale

    mean = float(masses.mean())
    estimate = mean * n
    if take > 1 and take < n:
        # finite-population correction for sampling without replacement
        var = float(masses.var(ddof=1)) / take * (1 - take / n)
        std_error = n * math.sqrt(max(var, 0.0))
    else:
        std_error = 0.0
    return SampledCount(estimate=estimate, std_error=std_error, samples=take, population=n)
