"""GraphSet stand-in: set-transformation counting via inclusion–exclusion.

GraphSet (SC '23) transforms the innermost disconnected loop variables of
a pattern-matching loop nest into set expressions evaluated with the
inclusion–exclusion principle (IEP) — the approach the paper discusses and
rejects as its own §3.3 alternative ("its complexity increases as we apply
it to a pattern with multiple fringe types").

Faithful to that design, this baseline:

1. picks **one** fringe type — the one with the most fringes, the best
   candidate loop variables to eliminate (GraphSet extracts unconnected
   loop variables; same-anchor fringes are exactly those);
2. enumerates the *reduced pattern* (everything except that type's
   fringes) with the conventional stack DFS;
3. per reduced embedding, counts ordered placements of the k eliminated
   fringes allowing collisions (``c^k`` where ``c`` is the common external
   neighbourhood size) and corrects with IEP over coincidence partitions —
   i.e. evaluates the falling factorial as the signed-Stirling polynomial
   ``c_(k) = Σ_j s(k, j) c^j``.

Cost is exponential in ``n − k_max`` pattern vertices: adding fringes of
the eliminated type is nearly free (matching GraphSet's best case), while
adding any other vertex degrades throughput (matching Fig. 9–11).
"""

from __future__ import annotations

import time

from ..core.matcher import build_plan, match_cores
from ..core.venn import venn_hash
from ..graph.csr import CSRGraph
from ..patterns.decompose import decompose, decomposition_from_core
from ..patterns.pattern import Pattern
from .common import BaselineResult, Deadline

__all__ = ["IEPCounter", "count_iep", "signed_stirling_first"]


def signed_stirling_first(k: int) -> list[int]:
    """Coefficients ``s(k, j)`` with ``x_(k) = Σ_j s(k, j) x^j``.

    These are the IEP weights: ``s(k, j)`` aggregates the Möbius function
    over partitions of k labelled items into j blocks.
    """
    coeffs = [1]  # x_(0) = 1
    for i in range(k):
        # x_(i+1) = x_(i) * (x - i)
        nxt = [0] * (len(coeffs) + 1)
        for j, cj in enumerate(coeffs):
            nxt[j + 1] += cj
            nxt[j] -= cj * i
        coeffs = nxt
    return coeffs


class IEPCounter:
    """Pattern-compiled IEP counter (GraphSet stand-in)."""

    name = "graphset-like"
    MAX_PATTERN_VERTICES = 10

    def __init__(self, pattern: Pattern, *, max_vertices: int | None = None):
        if not pattern.is_connected:
            raise ValueError("pattern must be connected")
        self.pattern = pattern
        if pattern.n <= 2:
            self.plan = None
            return
        decomp = decompose(pattern)
        # eliminate the largest fringe type
        best = max(decomp.fringe_types, key=lambda ft: ft.count)
        self.k = best.count
        self.stirling = signed_stirling_first(self.k)
        kept = [v for v in range(pattern.n) if v not in best.fringe_vertices]
        limit = max_vertices if max_vertices is not None else self.MAX_PATTERN_VERTICES
        if len(kept) > limit:
            raise ValueError(
                f"{self.name} must still enumerate {len(kept)} vertices — over the "
                f"{limit}-vertex limit (the paper's codes cap patterns at 7 vertices)"
            )
        self.reduced = pattern.induced(kept)
        self.kept = kept
        # anchors of the eliminated type, as positions in the reduced pattern
        index_in_reduced = {v: i for i, v in enumerate(sorted(kept))}
        self.anchor_reduced = sorted(index_in_reduced[a] for a in best.anchors)
        reduced_decomp = decomposition_from_core(self.reduced, range(self.reduced.n))
        self.plan = build_plan(reduced_decomp, symmetry_breaking=False)
        self.order = reduced_decomp.matching_order
        self.anchor_positions = [self.order.index(a) for a in self.anchor_reduced]
        # structural normalizer: the same sum evaluated on the pattern itself
        pattern_graph = CSRGraph.from_edges(pattern.edges(), num_vertices=pattern.n)
        self.denominator = self._raw_sum(pattern_graph, None)
        if self.denominator <= 0:
            raise AssertionError("pattern must embed in itself")

    # ------------------------------------------------------------------
    def _raw_sum(self, graph: CSRGraph, deadline: Deadline | None) -> int:
        """Σ over ordered reduced embeddings of x_(k)(c) via IEP weights."""
        stirling = self.stirling
        anchor_positions = self.anchor_positions
        total = 0
        for match in match_cores(graph, self.plan):
            if deadline is not None:
                deadline.check()
            anchors = [match[i] for i in anchor_positions]
            venn = venn_hash(graph, anchors, match)
            # c = external vertices adjacent to ALL anchors: the region
            # whose bitset has every anchor bit set
            full = (1 << len(anchors)) - 1
            c = venn[full]
            # evaluate Σ_j s(k, j) c^j   (IEP over coincidence partitions)
            acc = 0
            power = 1
            for coeff in stirling:
                acc += coeff * power
                power *= c
            total += acc
        return total

    def count(self, graph: CSRGraph, *, timeout_s: float | None = None) -> BaselineResult:
        start = time.perf_counter()
        if self.pattern.n == 1:
            value = graph.num_vertices
        elif self.pattern.n == 2:
            value = graph.num_edges
        else:
            deadline = Deadline(timeout_s, self.name, stride=512)
            raw = self._raw_sum(graph, deadline)
            value, rem = divmod(raw, self.denominator)
            if rem:
                raise AssertionError("non-integral IEP count")
        return BaselineResult(
            count=value,
            engine=self.name,
            elapsed_s=time.perf_counter() - start,
            embeddings_visited=-1,
        )


def count_iep(graph: CSRGraph, pattern: Pattern, *, timeout_s: float | None = None) -> BaselineResult:
    return IEPCounter(pattern).count(graph, timeout_s=timeout_s)
