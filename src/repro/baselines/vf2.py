"""Brute-force ground truth: count subgraph copies via backtracking.

This is the reference every engine is validated against (the paper
validates the same way, §3.4: "comparing the number of occurrences it
returns to the corresponding number returned by the other codes").

``count_vf2`` counts *edge-induced embeddings up to automorphism* — the
number of subgraphs of G isomorphic to the pattern — by enumerating
injective edge-preserving maps and dividing by |Aut(P)| (enumerated by
brute force, so patterns must be small). Exponential; test-scale only.
"""

from __future__ import annotations

from ..graph.csr import CSRGraph
from ..patterns.isomorphism import automorphisms_of, _connect_order
from ..patterns.pattern import Pattern

__all__ = ["count_injective_maps", "count_vf2"]


def count_injective_maps(graph: CSRGraph, pattern: Pattern) -> int:
    """Number of injective maps V(P) -> V(G) preserving every pattern edge
    (extra graph edges between images are allowed: edge-induced)."""
    n = pattern.n
    if n == 0:
        return 0
    order = _connect_order(pattern)
    deg_p = pattern.degrees()
    adjacency = [set(graph.neighbors(v).tolist()) for v in range(graph.num_vertices)]
    degrees = graph.degrees
    mapping = [-1] * n
    used: set[int] = set()
    count = 0

    # precompute, per order position, the earlier pattern neighbours
    earlier_nbrs = []
    placed: set[int] = set()
    for v in order:
        earlier_nbrs.append([w for w in pattern.adj[v] if w in placed])
        placed.add(v)

    def extend(pos: int) -> None:
        nonlocal count
        if pos == n:
            count += 1
            return
        pv = order[pos]
        back = earlier_nbrs[pos]
        if back:
            # candidates: graph neighbours of the first mapped back-neighbour
            base = adjacency[mapping[back[0]]]
            candidates = base
        else:
            candidates = range(graph.num_vertices)
        for gv in candidates:
            if gv in used or degrees[gv] < deg_p[pv]:
                continue
            if all(gv in adjacency[mapping[w]] for w in back):
                mapping[pv] = gv
                used.add(gv)
                extend(pos + 1)
                used.discard(gv)
                mapping[pv] = -1

    extend(0)
    return count


def count_vf2(graph: CSRGraph, pattern: Pattern) -> int:
    """Subgraph copies of ``pattern`` in ``graph`` (exact, brute force)."""
    if pattern.n == 1:
        return graph.num_vertices
    inj = count_injective_maps(graph, pattern)
    aut = len(automorphisms_of(pattern))
    copies, rem = divmod(inj, aut)
    if rem:
        raise AssertionError("injective map count not divisible by |Aut|")
    return copies
