"""STMatch stand-in: conventional stack-based whole-pattern enumeration.

This is what the paper calls the "conventional search" (§2): a depth-first
stack-based matcher that extends partial embeddings one *pattern vertex*
at a time — fringe vertices included — with matching order, degree
filtering, and symmetry breaking, exactly the STMatch recipe the paper's
own core-search borrows. Its work is exponential in the number of
**pattern** vertices, which is precisely the behaviour Fringe-SGC's
fringe formula removes; benchmarks compare the two.

Implementation note: we reuse the engine's matcher by declaring *every*
pattern vertex part of the core (``decomposition_from_core`` with the full
vertex set). With no fringes, each symmetry-reduced core match is exactly
one subgraph copy.
"""

from __future__ import annotations

import time

from ..core.matcher import build_plan, match_cores
from ..graph.csr import CSRGraph
from ..patterns.decompose import decomposition_from_core
from ..patterns.pattern import Pattern
from .common import BaselineResult, Deadline

__all__ = ["StackEnumerator", "count_enumerator"]


class StackEnumerator:
    """Pattern-compiled whole-pattern DFS counter (STMatch stand-in)."""

    name = "stmatch-like"
    # Real STMatch/GraphSet/T-DFS refuse patterns above 7 vertices; we keep
    # a slightly larger guard so tests can push past it deliberately.
    MAX_PATTERN_VERTICES = 10

    def __init__(self, pattern: Pattern, *, max_vertices: int | None = None):
        limit = max_vertices if max_vertices is not None else self.MAX_PATTERN_VERTICES
        if pattern.n > limit:
            raise ValueError(
                f"{self.name} supports patterns up to {limit} vertices "
                f"(got {pattern.n}) — the paper's third-party codes cap at 7"
            )
        if not pattern.is_connected:
            raise ValueError("pattern must be connected")
        self.pattern = pattern
        if pattern.n >= 2:
            decomp = decomposition_from_core(pattern, range(pattern.n))
            self.plan = build_plan(decomp, symmetry_breaking=True)
        else:
            self.plan = None

    def count(self, graph: CSRGraph, *, timeout_s: float | None = None) -> BaselineResult:
        start = time.perf_counter()
        if self.pattern.n == 1:
            return BaselineResult(
                count=graph.num_vertices,
                engine=self.name,
                elapsed_s=time.perf_counter() - start,
                embeddings_visited=graph.num_vertices,
            )
        deadline = Deadline(timeout_s, self.name)
        total = 0
        for _ in match_cores(graph, self.plan):
            total += 1
            deadline.check()
        return BaselineResult(
            count=total,
            engine=self.name,
            elapsed_s=time.perf_counter() - start,
            embeddings_visited=total,
        )


def count_enumerator(
    graph: CSRGraph, pattern: Pattern, *, timeout_s: float | None = None
) -> BaselineResult:
    return StackEnumerator(pattern).count(graph, timeout_s=timeout_s)
