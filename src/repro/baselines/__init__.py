"""Baseline SGC implementations: ground truth + stand-ins for the paper's
comparison systems (STMatch, GraphSet, T-DFS)."""

from .common import BaselineResult, BaselineTimeout, Deadline
from .local_counting import LocalCounts, count_local, local_counts
from .sampling import SampledCount, estimate_count
from .enumerator import StackEnumerator, count_enumerator
from .iep import IEPCounter, count_iep
from .tdfs import TDFSCounter, count_tdfs
from .vf2 import count_injective_maps, count_vf2

__all__ = [
    "BaselineResult",
    "LocalCounts",
    "count_local",
    "local_counts",
    "SampledCount",
    "estimate_count",
    "BaselineTimeout",
    "Deadline",
    "StackEnumerator",
    "count_enumerator",
    "IEPCounter",
    "count_iep",
    "TDFSCounter",
    "count_tdfs",
    "count_injective_maps",
    "count_vf2",
]
