"""Shared infrastructure for the baseline SGC implementations.

The paper runs every third-party code with a half-hour per-input budget
and reports "did not finish" entries; :class:`Deadline` reproduces that
censoring semantics, and :class:`BaselineResult` mirrors the engine's
:class:`~repro.core.engine.CountResult` shape so the benchmark harness can
treat all systems uniformly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["BaselineTimeout", "Deadline", "BaselineResult"]


class BaselineTimeout(Exception):
    """Raised when a baseline exceeds its time budget (a DNF entry)."""

    def __init__(self, engine: str, budget_s: float):
        super().__init__(f"{engine} exceeded {budget_s:.1f}s budget")
        self.engine = engine
        self.budget_s = budget_s


class Deadline:
    """Cheap cooperative timeout: call :meth:`check` in hot loops."""

    __slots__ = ("t_end", "engine", "budget_s", "_counter", "stride")

    def __init__(self, budget_s: float | None, engine: str, stride: int = 4096):
        self.budget_s = budget_s
        self.t_end = (time.perf_counter() + budget_s) if budget_s else None
        self.engine = engine
        self.stride = stride
        self._counter = 0

    def check(self) -> None:
        if self.t_end is None:
            return
        self._counter += 1
        if self._counter >= self.stride:
            self._counter = 0
            if time.perf_counter() > self.t_end:
                raise BaselineTimeout(self.engine, self.budget_s)


@dataclass(frozen=True)
class BaselineResult:
    count: int
    engine: str
    elapsed_s: float
    embeddings_visited: int

    def throughput(self, graph_edges: int) -> float:
        return graph_edges / self.elapsed_s if self.elapsed_s > 0 else float("inf")
