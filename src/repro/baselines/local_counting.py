"""ESCAPE-style local counting: closed-form counts for small motifs.

The paper's related work (§4) discusses *local counting* — computing a
pattern's count from other patterns' counts and degree statistics instead
of enumeration (ESCAPE covers all 5-vertex patterns; Suganami et al. list
20+ formulas). This module implements the classic formulas for every
connected 3- and 4-vertex pattern (the paper's Fig. 1 set) from three
primitives: the degree array, per-edge common-neighbour counts, and
per-vertex triangle counts.

It serves two roles here:

* an independent *oracle* for the engine on all Fig. 1 patterns (the
  formulas share no code with the fringe machinery);
* a baseline representing the local-counting school, "orthogonal to our
  approach" per the paper.

All counts are edge-induced subgraph counts (consistent with the rest of
the library).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.specialized import common_neighbor_counts
from ..graph.csr import CSRGraph

__all__ = ["LocalCounts", "local_counts", "count_local"]


@dataclass(frozen=True)
class LocalCounts:
    """Counts of every connected pattern with 3 or 4 vertices."""

    wedge: int
    triangle: int
    three_star: int
    four_path: int
    tailed_triangle: int
    four_cycle: int
    diamond: int
    four_clique: int

    def as_dict(self) -> dict[str, int]:
        return {
            "wedge": self.wedge,
            "triangle": self.triangle,
            "3-star": self.three_star,
            "4-path": self.four_path,
            "tailed triangle": self.tailed_triangle,
            "4-cycle": self.four_cycle,
            "diamond": self.diamond,
            "4-clique": self.four_clique,
        }


def local_counts(graph: CSRGraph) -> LocalCounts:
    """All Fig. 1 counts from degree/codegree statistics (no search)."""
    deg = graph.degrees.astype(np.int64)
    edges = graph.edge_array()
    m = len(edges)

    # wedges and 3-stars: pure degree sums
    wedge = int(sum(math.comb(int(d), 2) for d in deg))
    three_star = int(sum(math.comb(int(d), 3) for d in deg))

    # per-edge common neighbours (t_e = triangles through edge e)
    t_e = common_neighbor_counts(graph, edges) if m else np.zeros(0, dtype=np.int64)
    triangle3 = int(t_e.sum())  # = 3 * triangles
    triangle, rem = divmod(triangle3, 3)
    if rem:
        raise AssertionError("per-edge triangle sum not divisible by 3")

    # per-vertex triangle participation t_v
    t_v = np.zeros(graph.num_vertices, dtype=np.int64)
    if m:
        np.add.at(t_v, edges[:, 0], t_e)
        np.add.at(t_v, edges[:, 1], t_e)
    t_v //= 2  # each triangle at v was counted on both of v's triangle edges

    # 4-path: Σ_e (d_u - 1)(d_v - 1) - 3T  (wedge-extensions minus triangles)
    if m:
        du = deg[edges[:, 0]] - 1
        dv = deg[edges[:, 1]] - 1
        four_path = int((du * dv).sum()) - 3 * triangle
    else:
        four_path = 0

    # tailed triangle: a triangle at v plus a non-triangle neighbour of v
    tailed = int(sum(int(t) * (int(d) - 2) for t, d in zip(t_v, deg)))

    # 4-cycle: pairs of common neighbours over ALL vertex pairs; each
    # cycle owns two diagonal pairs. Pairs with c >= 2 all show up as
    # common-neighbour pairs of the wedge endpoints.
    four_cycle = _four_cycles(graph)

    # diamond: an edge plus 2 of its common neighbours
    diamond = int(sum(math.comb(int(c), 2) for c in t_e))

    # 4-clique: an edge plus an *adjacent* pair of common neighbours
    four_clique = _four_cliques(graph, edges, t_e)

    return LocalCounts(
        wedge=wedge,
        triangle=triangle,
        three_star=three_star,
        four_path=four_path,
        tailed_triangle=tailed,
        four_cycle=four_cycle,
        diamond=diamond,
        four_clique=four_clique,
    )


def _four_cycles(graph: CSRGraph) -> int:
    """Σ over unordered vertex pairs of C(codegree, 2), halved.

    Codegrees are accumulated per wedge: each wedge (x, v, y) contributes
    one to codeg(x, y). Implemented with a dict keyed on the pair (small
    graphs; the benchmark harness uses the fringe engine for scale).
    """
    codeg: dict[tuple[int, int], int] = {}
    for center in range(graph.num_vertices):
        adj = graph.neighbors(center).tolist()
        for i in range(len(adj)):
            for j in range(i + 1, len(adj)):
                key = (adj[i], adj[j])
                codeg[key] = codeg.get(key, 0) + 1
    total = sum(math.comb(c, 2) for c in codeg.values())
    half, rem = divmod(total, 2)
    if rem:
        raise AssertionError("4-cycle diagonal sum must be even")
    return half


def _four_cliques(graph: CSRGraph, edges: np.ndarray, t_e: np.ndarray) -> int:
    total = 0
    for (u, v), c in zip(edges.tolist(), t_e.tolist()):
        if c < 2:
            continue
        au, av = graph.neighbors(u), graph.neighbors(v)
        common = au[np.isin(au, av, assume_unique=True)]
        for i in range(len(common)):
            x = int(common[i])
            adj_x = graph.neighbors(x)
            rest = common[i + 1 :]
            if len(rest):
                pos = np.searchsorted(adj_x, rest)
                pos = np.minimum(pos, len(adj_x) - 1)
                total += int(np.count_nonzero(adj_x[pos] == rest))
    # every K4 counted once per edge (6) times once per ordered... each K4
    # has 6 edges; for each edge the other two vertices form one adjacent
    # common pair -> counted 6 times
    clique, rem = divmod(total, 6)
    if rem:
        raise AssertionError("4-clique edge sum must be divisible by 6")
    return clique


_NAME_TO_FIELD = {
    "wedge": "wedge",
    "triangle": "triangle",
    "3-star": "three_star",
    "4-path": "four_path",
    "tailed triangle": "tailed_triangle",
    "4-cycle": "four_cycle",
    "diamond": "diamond",
    "4-clique": "four_clique",
}


def count_local(graph: CSRGraph, name: str) -> int:
    """Count one Fig. 1 pattern by its catalog name."""
    try:
        field_name = _NAME_TO_FIELD[name]
    except KeyError:
        raise ValueError(
            f"local counting covers the Fig. 1 patterns only; got {name!r}"
        ) from None
    return getattr(local_counts(graph), field_name)
