"""The Runtime layer: plan caching + execution routing + statistics.

The paper's system amortizes all pattern-side work ahead of time and
reuses it across inputs; :class:`Runtime` is the front door that makes
the amortization automatic for a *serving* workload. It holds an LRU
cache of compiled :class:`~repro.core.plan.CountingPlan` artifacts keyed
by :func:`~repro.core.plan.plan_key` (canonical pattern form + config),
routes each call to the right execution substrate (specialized engine,
serial/batch backend, fork pool, or the persistent spawn pool), owns the
persistent pool's lifecycle (lazy start on first use, :meth:`Runtime.close`,
``atexit``), and reports per-call
:class:`~repro.core.engine.ExecutionStats` — compile vs. match vs.
Venn/fc time, batch flushes, and plan-cache hit/miss counters — on
``CountResult.stats``.

``count_subgraphs`` and ``parallel_count`` are thin wrappers over the
process-wide :func:`get_runtime` instance, so every caller (CLI,
benchmarks, library users) shares one plan cache.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence

from . import obs
from .core.backends import select_backend
from .core.engine import CountResult, EngineConfig, ExecutionStats
from .core.plan import CountingPlan, compile_pattern, plan_key
from .graph.csr import CSRGraph
from .patterns.decompose import Decomposition
from .patterns.pattern import Pattern

if TYPE_CHECKING:  # pragma: no cover
    from .parallel.pool import ParallelConfig

__all__ = ["Runtime", "RuntimeStats", "get_runtime", "set_runtime"]


@dataclass
class RuntimeStats:
    """Cumulative counters for one Runtime instance.

    Mutable and written under ``Runtime._lock``; read a consistent copy
    via :meth:`Runtime.stats_snapshot` rather than the live object when
    other threads may be counting. ``compile_races`` counts plan-cache
    misses where a concurrent thread compiled and stored the same key
    first — those calls are served the winner's plan and recorded as
    hits, so hit-ratio metrics stay truthful.
    """

    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    plan_cache_evictions: int = 0
    compile_s: float = 0.0  # total time spent compiling patterns
    compile_races: int = 0  # lost compile races (served the winner's plan)
    counts_served: int = 0

    def snapshot(self) -> "RuntimeStats":
        return replace(self)


class Runtime:
    """Serving front door: LRU plan cache + backend routing + stats.

    ``max_plans`` bounds the cache (least-recently-used eviction). The
    cache is guarded by a lock, so one Runtime can serve many threads;
    compiled plans are immutable and safely shared.

    ``observer`` optionally attaches a :class:`repro.obs.Observer`: every
    :meth:`count` then runs with that observer active, collecting spans
    (compile → execute → venn/fc) and metrics without any global state.
    """

    def __init__(self, max_plans: int = 128, observer: "obs.Observer | None" = None):
        if max_plans < 1:
            raise ValueError("max_plans must be positive")
        self.max_plans = max_plans
        self.observer = observer
        self.stats = RuntimeStats()
        self._plans: OrderedDict[tuple, CountingPlan] = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # plan cache
    # ------------------------------------------------------------------
    def plan_for(
        self, pattern: Pattern, config: EngineConfig | None = None
    ) -> tuple[CountingPlan, bool, float]:
        """(plan, cache_hit, compile_seconds) for a pattern + config.

        A hit returns the identical cached object and spends no compile
        time; a miss compiles, stores, and possibly evicts the LRU entry.
        """
        cfg = config or EngineConfig()
        key = plan_key(pattern, cfg)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.stats.plan_cache_hits += 1
                self._record_cache_metrics()
                return plan, True, 0.0
        # compile outside the lock: compilation can be expensive and two
        # racing compiles of the same key are idempotent
        t0 = time.perf_counter()
        with obs.span("compile", pattern_vertices=pattern.n):
            plan = compile_pattern(pattern, cfg)
        compile_s = time.perf_counter() - t0
        with self._lock:
            existing = self._plans.get(key)
            if existing is not None:
                # lost the race: another thread compiled and stored this
                # key while we were compiling. Serve the winner's plan
                # (preserving the hit-returns-the-identical-object
                # invariant) and account it as a hit-after-race so the
                # cache hit ratio stays truthful.
                self._plans.move_to_end(key)
                self.stats.plan_cache_hits += 1
                self.stats.compile_races += 1
                self._record_cache_metrics()
                return existing, True, compile_s
            self.stats.plan_cache_misses += 1
            self.stats.compile_s += compile_s
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.max_plans:
                self._plans.popitem(last=False)
                self.stats.plan_cache_evictions += 1
            self._record_cache_metrics()
        obs.observe("repro_compile_seconds", compile_s)
        return plan, False, compile_s

    def _record_cache_metrics(self) -> None:
        """Mirror plan-cache counters into the active registry (if any).

        Called with ``_lock`` held — reads are consistent, and the gauge
        writes only touch the observer's own lock.
        """
        registry = obs.active_metrics()
        if registry is None:
            return
        s = self.stats
        registry.gauge("repro_plan_cache_hits").set(s.plan_cache_hits)
        registry.gauge("repro_plan_cache_misses").set(s.plan_cache_misses)
        registry.gauge("repro_plan_cache_evictions").set(s.plan_cache_evictions)
        registry.gauge("repro_plan_compile_races").set(s.compile_races)
        total = s.plan_cache_hits + s.plan_cache_misses
        registry.gauge("repro_plan_cache_hit_ratio").set(
            s.plan_cache_hits / total if total else 0.0
        )

    def result_cache_key(
        self,
        graph: CSRGraph,
        pattern: Pattern,
        config: EngineConfig | None = None,
        *,
        engine: str = "auto",
    ) -> tuple:
        """Canonical key for caching a *count result* across calls.

        ``(graph content fingerprint, plan key, engine)`` — two requests
        share a key iff they are guaranteed the same count: same graph
        bytes (via :meth:`CSRGraph.fingerprint`), isomorphic pattern under
        the same config (via :func:`plan_key`), same engine selection.
        ``repro.serve`` uses this for request coalescing and its result
        cache; it is exposed here so every caching layer agrees on one
        key construction.
        """
        cfg = config or EngineConfig()
        return (graph.fingerprint(), plan_key(pattern, cfg), engine)

    def count_batch(
        self,
        graph: CSRGraph,
        specs: Sequence[tuple[Pattern, str, EngineConfig | None]],
    ) -> list[CountResult]:
        """Executor-friendly batch entry: count several patterns on one graph.

        ``specs`` is a sequence of ``(pattern, engine, config)`` triples.
        The calls run sequentially on the calling thread (safe to offload
        to a thread-pool executor as one job), sharing the plan cache and
        the graph; one ``count_batch`` span groups them in traces.
        """
        with obs.span("count_batch", graph_edges=graph.num_edges, batch=len(specs)):
            return [
                self.count(graph, pattern, engine=engine, config=config)
                for pattern, engine, config in specs
            ]

    def cache_info(self) -> dict:
        with self._lock:
            return {
                "size": len(self._plans),
                "max_plans": self.max_plans,
                "hits": self.stats.plan_cache_hits,
                "misses": self.stats.plan_cache_misses,
                "evictions": self.stats.plan_cache_evictions,
                "compile_races": self.stats.compile_races,
            }

    def stats_snapshot(self) -> RuntimeStats:
        """A consistent copy of the cumulative counters (lock-protected)."""
        with self._lock:
            return self.stats.snapshot()

    def clear_cache(self) -> None:
        with self._lock:
            self._plans.clear()

    def close(self) -> None:
        """Release execution resources owned through this runtime.

        Shuts down the process-wide persistent worker pool (counts with
        ``ParallelConfig(pool="persistent")`` lazily restart it). The
        plan cache is left intact — plans are cheap, workers are not.
        An ``atexit`` hook performs the same sweep, so calling this is
        only needed to reclaim workers early (e.g. between test suites).
        """
        from .parallel.workerpool import shutdown_default_pool

        shutdown_default_pool()

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------
    def count(
        self,
        graph: CSRGraph,
        pattern: Pattern,
        *,
        engine: str = "auto",
        config: EngineConfig | None = None,
        parallel: "ParallelConfig | None" = None,
        decomposition: Decomposition | None = None,
        start_vertices: Sequence[int] | None = None,
    ) -> CountResult:
        """Count ``pattern`` in ``graph`` through the cached-plan pipeline.

        Same semantics as the historical ``count_subgraphs`` /
        ``parallel_count`` entry points (which now wrap this method);
        ``parallel`` selects the fork-pool backend. A call with an
        explicit ``decomposition`` compiles a fresh plan and bypasses the
        cache — the cache key cannot see the core choice.
        """
        if engine not in ("auto", "general", "specialized", "frontier"):
            raise ValueError(f"unknown engine {engine!r}")
        if self.observer is not None:
            with self.observer:
                return self._count(
                    graph,
                    pattern,
                    engine=engine,
                    config=config,
                    parallel=parallel,
                    decomposition=decomposition,
                    start_vertices=start_vertices,
                )
        return self._count(
            graph,
            pattern,
            engine=engine,
            config=config,
            parallel=parallel,
            decomposition=decomposition,
            start_vertices=start_vertices,
        )

    def _count(
        self,
        graph: CSRGraph,
        pattern: Pattern,
        *,
        engine: str,
        config: EngineConfig | None,
        parallel: "ParallelConfig | None",
        decomposition: Decomposition | None,
        start_vertices: Sequence[int] | None,
    ) -> CountResult:
        cfg = config or EngineConfig()
        with self._lock:
            self.stats.counts_served += 1
        with obs.span("count", pattern_vertices=pattern.n, engine=engine):
            result = self._count_inner(
                graph, pattern, engine, cfg, parallel, decomposition, start_vertices
            )
        registry = obs.active_metrics()
        if registry is not None:
            registry.counter("repro_counts_total").inc()
            registry.histogram("repro_count_latency_seconds").observe(result.elapsed_s)
            if result.elapsed_s > 0:
                registry.gauge("repro_edges_per_second").set(
                    graph.num_edges / result.elapsed_s
                )
        return result

    def _count_inner(
        self,
        graph: CSRGraph,
        pattern: Pattern,
        engine: str,
        cfg: EngineConfig,
        parallel: "ParallelConfig | None",
        decomposition: Decomposition | None,
        start_vertices: Sequence[int] | None,
    ) -> CountResult:
        if decomposition is not None:
            t0 = time.perf_counter()
            with obs.span("compile", pattern_vertices=pattern.n, cached=False):
                plan = compile_pattern(pattern, cfg, decomposition=decomposition)
            hit, compile_s = False, time.perf_counter() - t0
        else:
            plan, hit, compile_s = self.plan_for(pattern, cfg)

        # trivial patterns: count vertices / edges directly
        if pattern.n <= 2:
            t0 = time.perf_counter()
            value = graph.num_vertices if pattern.n == 1 else graph.num_edges
            return CountResult(
                count=value,
                pattern=pattern,
                core_matches=value,
                elapsed_s=time.perf_counter() - t0,
                engine=f"fringe-general({cfg.venn_impl},{cfg.fc_impl})",
                decomposition=None,
                stats=self._stats(plan_hit=hit, compile_s=compile_s, backend="trivial"),
            )

        # specialized closed-form engines (never under the fork pool —
        # they are whole-graph vectorized formulas, not root-sliceable;
        # "general" and "frontier" both force the matcher pipeline)
        if parallel is None and start_vertices is None and engine in ("auto", "specialized"):
            if cfg.specialized or engine == "specialized":
                special = plan.specialized_engine()
                if special is not None:
                    with obs.span("execute", backend=special.name):
                        res = special(graph)
                    return replace(
                        res,
                        stats=self._stats(
                            plan_hit=hit,
                            compile_s=compile_s,
                            backend=special.name,
                            execute_s=res.elapsed_s,
                        ),
                    )
                if engine == "specialized":
                    raise ValueError(
                        f"no specialized engine for a {plan.decomp.num_core}-vertex core"
                    )

        backend = select_backend(cfg, parallel, engine=engine)
        t0 = time.perf_counter()
        with obs.span("execute", backend=backend.name):
            partial = backend.run(plan, graph, start_vertices=start_vertices)
        execute_s = time.perf_counter() - t0
        value = plan.normalize(partial.sigma, context="parallel count" if parallel else "count")
        if parallel is not None and getattr(parallel, "pool", "fork") == "persistent":
            engine_str = f"fringe-pool(x{parallel.num_workers},{parallel.schedule})"
        elif parallel is not None:
            engine_str = f"fringe-parallel(x{parallel.num_workers},{parallel.schedule})"
        elif engine == "frontier":
            engine_str = f"fringe-frontier(max_rows={cfg.max_frontier_rows})"
        else:
            engine_str = f"fringe-general({cfg.venn_impl},{cfg.fc_impl})"
        return CountResult(
            count=value,
            pattern=pattern,
            core_matches=partial.matches,
            elapsed_s=execute_s,
            engine=engine_str,
            decomposition=plan.decomp,
            stats=self._stats(
                plan_hit=hit,
                compile_s=compile_s,
                backend=backend.name,
                execute_s=execute_s,
                venn_fc_s=partial.venn_fc_s,
                batches=partial.batches,
                workers=len({w.pid for w in partial.workers}),
            ),
        )

    # ------------------------------------------------------------------
    def _stats(
        self,
        *,
        plan_hit: bool,
        compile_s: float,
        backend: str,
        execute_s: float = 0.0,
        venn_fc_s: float = 0.0,
        batches: int = 0,
        workers: int = 0,
    ) -> ExecutionStats:
        with self._lock:
            cache_hits = self.stats.plan_cache_hits
            cache_misses = self.stats.plan_cache_misses
        return ExecutionStats(
            backend=backend,
            plan_cache_hit=plan_hit,
            compile_s=compile_s,
            execute_s=execute_s,
            match_s=max(0.0, execute_s - venn_fc_s),
            venn_fc_s=venn_fc_s,
            batches_flushed=batches,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            workers=workers,
        )


# ----------------------------------------------------------------------
# process-wide default runtime
# ----------------------------------------------------------------------
_default_runtime: Runtime | None = None
_default_lock = threading.Lock()


def get_runtime() -> Runtime:
    """The process-wide Runtime shared by count_subgraphs / the CLI."""
    global _default_runtime
    if _default_runtime is None:
        with _default_lock:
            if _default_runtime is None:
                _default_runtime = Runtime()
    return _default_runtime


def set_runtime(runtime: Runtime | None) -> Runtime | None:
    """Swap the process-wide Runtime (tests use this); returns the old one."""
    global _default_runtime
    with _default_lock:
        old, _default_runtime = _default_runtime, runtime
    return old
