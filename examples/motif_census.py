#!/usr/bin/env python
"""Motif census: count every 3- and 4-vertex pattern (the paper's Fig. 1).

Motif censuses drive social-network analysis (the triad census), biology
(graphlet degree signatures), and fraud detection — the applications the
paper's introduction cites. This example counts all eight connected
3-/4-vertex motifs on two contrasting inputs and prints the normalized
motif profile, showing how topology classes differ.

Run:  python examples/motif_census.py
"""

from repro import count_subgraphs
from repro.graph import datasets
from repro.patterns import catalog


def census(graph):
    counts = {}
    for name, pattern in catalog.fig1_patterns().items():
        counts[name] = count_subgraphs(graph, pattern).count
    return counts


def main() -> None:
    inputs = {
        "internet (AS topology)": datasets.make("internet", "tiny"),
        "coPapersDBLP (citations)": datasets.make("coPapersDBLP", "tiny"),
        "USA-road (road map)": datasets.make("USA-road-d.NY", "tiny"),
    }
    names = list(catalog.fig1_patterns())
    header = f"{'motif':<18}" + "".join(f"{n[:22]:>26}" for n in inputs)
    print(header)
    print("-" * len(header))
    results = {label: census(g) for label, g in inputs.items()}
    for motif in names:
        row = f"{motif:<18}"
        for label in inputs:
            row += f"{results[label][motif]:>26,}"
        print(row)

    # clustering signature: triangles per wedge (global clustering x3)
    print("\ntriangles / wedges (clustering signal):")
    for label in inputs:
        r = results[label]
        ratio = 3 * r["triangle"] / r["wedge"] if r["wedge"] else 0.0
        print(f"  {label:<26} {ratio:.4f}")
    # citation graphs cluster heavily; road networks have almost no
    # triangles; the AS topology sits in between — the paper's Table 1
    # classes, recovered from motif counts alone.


if __name__ == "__main__":
    main()
