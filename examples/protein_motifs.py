#!/usr/bin/env python
"""Graphlet signatures in a protein-interaction-like network.

Biological network analysis counts small graphlets around proteins to
predict function (graphlet degree signatures, cited by the paper). Hub
proteins participate in star- and clique-like graphlets whose counts grow
combinatorially with degree — exactly the fringe regime.

This example builds a PPI-like network (a geometric graph with hub
rewiring, the standard model for PPI topology), computes a graphlet
signature per pattern family, and demonstrates a *large* graphlet — the
paper's Fig. 4 pattern plus extra fringes — that only the fringe
formulation can count.

Run:  python examples/protein_motifs.py
"""

import numpy as np

from repro import count_subgraphs
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from repro.patterns import catalog


def build_ppi_like(n: int = 800, seed: int = 11) -> CSRGraph:
    """Geometric graph (spatial binding domains) + a few hub proteins."""
    base = gen.random_geometric(n, 0.06, seed=seed)
    edges = base.edge_array().tolist()
    rng = np.random.default_rng(seed)
    hubs = rng.integers(0, n, size=8)
    for h in hubs:
        for t in rng.integers(0, n, size=25):
            if int(t) != int(h):
                edges.append((int(h), int(t)))
    return CSRGraph.from_edges(np.asarray(edges, dtype=np.int64))


def main() -> None:
    graph = build_ppi_like()
    print(f"PPI-like network: {graph.num_vertices} proteins, {graph.num_edges} interactions")
    print(f"max degree: {graph.max_degree()}, avg: {graph.avg_degree():.1f}")

    print("\ngraphlet signature (counts per family):")
    families = {
        "k-star (binding hubs)": [catalog.star(k) for k in (3, 4, 5, 6)],
        "k-tailed triangle": [catalog.k_tailed_triangle(k) for k in (1, 2, 3, 4)],
        "cliques": [catalog.clique(k) for k in (3, 4)],
    }
    for family, patterns in families.items():
        counts = [count_subgraphs(graph, p).count for p in patterns]
        rendered = ", ".join(f"{c:,}" for c in counts)
        print(f"  {family:<24} {rendered}")

    # ------------------------------------------------------------------
    # a graphlet beyond enumeration: Fig. 4 (16 vertices) + more fringes
    # ------------------------------------------------------------------
    print("\nlarge-graphlet counting (impossible for 7-vertex-limited tools):")
    big = catalog.fig4_pattern()
    for label, pattern in [
        ("fig4 (16 vertices)", big),
        ("fig4 + 4 wedge fringes (20 vertices)", big.with_fringe((0, 1), 4)),
    ]:
        res = count_subgraphs(graph, pattern)
        digits = len(str(res.count))
        print(
            f"  {label:<38} count has {digits:>3} digits "
            f"({res.elapsed_s:6.2f} s, {res.core_matches} core matches)"
        )
    # counts overflow 64-bit integers by dozens of digits; the library's
    # residue-number-system path keeps them exact.


if __name__ == "__main__":
    main()
