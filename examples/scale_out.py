#!/usr/bin/env python
"""Scaling out: multi-pattern batching, partitioning, and parallelism.

Three production concerns beyond a single count, all answered by the
library with bit-identical results:

1. **Motif families** — a census of related patterns shares one core
   search and one Venn pass per batch (``MultiPatternCounter``);
2. **Graphs bigger than one device** — the paper's §3.6 multi-GPU plan:
   partition with ghost regions as wide as the pattern core's diameter
   (+1 for fringes), count partitions independently, reduce once;
3. **Multicore CPUs** — fork-based workers over start-vertex chunks with
   static/strided/dynamic schedules.

Run:  python examples/scale_out.py
"""

import time

from repro import MultiPatternCounter, count_subgraphs
from repro.graph import datasets
from repro.parallel import ParallelConfig, ghost_width, parallel_count, partitioned_count
from repro.patterns import catalog
from repro.patterns.decompose import decompose


def main() -> None:
    graph = datasets.make("rmat16.sym", "tiny")
    print(f"input: rmat16.sym stand-in ({graph.num_vertices} vertices, {graph.num_edges} edges)")

    # ------------------------------------------------------------------
    # 1. a k-tailed-triangle census in one shared pass
    # ------------------------------------------------------------------
    family = {f"{k}-tailed triangle": catalog.k_tailed_triangle(k) for k in range(1, 7)}
    t0 = time.perf_counter()
    mpc = MultiPatternCounter(family)
    shared = mpc.count_all(graph)
    t_shared = time.perf_counter() - t0

    t0 = time.perf_counter()
    individual = {n: count_subgraphs(graph, p, engine="general") for n, p in family.items()}
    t_each = time.perf_counter() - t0

    print(f"\nk-tailed-triangle census ({mpc.num_groups} shared core group):")
    for name in family:
        assert shared[name].count == individual[name].count
        print(f"  {name:<22} {shared[name].count:>22,}")
    print(f"  shared pass: {t_shared:.2f}s   individual passes: {t_each:.2f}s")

    # ------------------------------------------------------------------
    # 2. partitioned counting with ghost regions (§3.6)
    # ------------------------------------------------------------------
    pattern = catalog.diamond()
    halo = ghost_width(decompose(pattern))
    print(f"\npartitioned counting of the diamond (ghost width {halo}):")
    reference = count_subgraphs(graph, pattern).count
    for parts in (1, 2, 4, 8):
        res = partitioned_count(graph, pattern, num_parts=parts)
        marker = "ok" if res.count == reference else "MISMATCH"
        print(f"  {parts} partition(s): {res.count:,}  [{marker}]")

    # ------------------------------------------------------------------
    # 3. multiprocess counting
    # ------------------------------------------------------------------
    print("\nmultiprocess counting (dynamic schedule):")
    for workers in (1, 2, 4):
        res = parallel_count(
            graph, pattern, parallel=ParallelConfig(num_workers=workers)
        )
        marker = "ok" if res.count == reference else "MISMATCH"
        print(f"  {workers} worker(s): {res.count:,} in {res.elapsed_s:.2f}s  [{marker}]")


if __name__ == "__main__":
    main()
