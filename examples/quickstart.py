#!/usr/bin/env python
"""Quickstart: count patterns with Fringe-SGC in a few lines.

Builds the paper's Fig. 2 example graph, counts the patterns discussed in
the introduction, and shows the pieces a power user can inspect: the
core/fringe decomposition, the automorphism group size, and per-run
statistics.

Run:  python examples/quickstart.py
"""

from repro import CSRGraph, count_subgraphs
from repro.patterns import catalog, decompose


def main() -> None:
    # --- the paper's Fig. 2 graph: a hub (vertex 0) with 7 neighbours,
    #     one triangle 0-1-2 ------------------------------------------
    graph = CSRGraph.from_edges(
        [(0, 1), (0, 2), (1, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7)]
    )
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # --- count the intro's patterns ----------------------------------
    for name, pattern in [
        ("triangle", catalog.triangle()),
        ("tailed triangle", catalog.tailed_triangle()),
        ("3-star", catalog.star(3)),
    ]:
        result = count_subgraphs(graph, pattern)
        print(f"{name:>16}: {result.count:>4}   (engine: {result.engine})")
    # paper: 1 triangle, 5 tailed triangles, 35 3-stars around vertex 0

    # --- inspect a decomposition -------------------------------------
    pattern = catalog.tailed_triangle()
    d = decompose(pattern)
    print(f"\ntailed triangle decomposition: {d}")
    print(f"  core vertices : {list(d.core_vertices)}")
    for ft in d.fringe_types:
        kind = {1: "tail", 2: "wedge", 3: "tri"}[ft.arity]
        print(f"  {ft.count} {kind} fringe(s) anchored at {sorted(ft.anchors)}")

    # --- a pattern no enumerator can touch ----------------------------
    big = catalog.fig4_pattern()  # 16 vertices, 25 edges (paper Fig. 4)
    result = count_subgraphs(graph, big)
    print(f"\nFig. 4 pattern (16 vertices) in this tiny graph: {result.count}")

    from repro import FringeCounter

    counter = FringeCounter(catalog.k_tailed_triangle(6))
    print(f"|Aut| of the 6-tailed triangle (structural, no enumeration): {counter.aut_size()}")


if __name__ == "__main__":
    main()
