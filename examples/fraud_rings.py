#!/usr/bin/env python
"""Fraud-ring screening on a transaction-like graph.

A standard fraud pattern in payment networks is the *fan-in/fan-out hub
pair*: two colluding accounts that share several mule accounts (wedge
fringes) while each also touches its own set of one-off counterparties
(tail fringes). As a subgraph, that is exactly an edge-core pattern with
k and l tails and m wedge fringes — the paper's §3.1 family — and its
count explodes combinatorially around dense hubs, which is why
enumeration-based tooling cannot screen for it at scale.

This example synthesizes a payment-like graph (preferential attachment +
planted collusion structures), counts fraud-signature patterns of growing
size with Fringe-SGC, and ranks hub pairs by their signature density
using the per-edge closed form.

Run:  python examples/fraud_rings.py
"""

import numpy as np

from repro import count_subgraphs
from repro.core.specialized import EdgeCoreEngine, common_neighbor_counts
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from repro.patterns import catalog
from repro.patterns.decompose import decompose


def build_payment_graph(seed: int = 7) -> CSRGraph:
    """Preferential-attachment base + planted collusion hub pairs."""
    base = gen.barabasi_albert(1500, 2, seed=seed)
    edges = base.edge_array().tolist()
    rng = np.random.default_rng(seed)
    next_id = base.num_vertices
    planted = []
    for _ in range(3):  # three collusion rings
        a, b = rng.integers(0, base.num_vertices, size=2)
        edges.append((int(a), int(b)))
        for _ in range(12):  # shared mule accounts
            edges.append((int(a), next_id))
            edges.append((int(b), next_id))
            next_id += 1
        planted.append((int(a), int(b)))
    graph = CSRGraph.from_edges(np.asarray(edges, dtype=np.int64))
    print(f"payment graph: {graph.num_vertices} accounts, {graph.num_edges} transfers")
    print(f"planted collusion pairs: {planted}")
    return graph


def fraud_signature(tails_a: int, tails_b: int, mules: int):
    """Edge core with two tail sets and `mules` wedge fringes."""
    return catalog.core_with_fringes(
        "edge", [((0,), tails_a), ((1,), tails_b), ((0, 1), mules)]
    )


def main() -> None:
    graph = build_payment_graph()

    print("\nfraud-signature counts (edge core + tails + shared mules):")
    for mules in (2, 3, 4, 5, 6):
        pattern = fraud_signature(2, 2, mules)
        res = count_subgraphs(graph, pattern)
        print(
            f"  {pattern.n:>2}-vertex signature, {mules} shared mules: "
            f"{res.count:>16,}  ({res.elapsed_s * 1e3:7.1f} ms)"
        )
    # enumeration cost would grow ~combinatorially in `mules`; the fringe
    # formula's run time barely moves.

    # ------------------------------------------------------------------
    # rank hub pairs: the per-edge F value of §3.1 *is* a suspicion score
    # ------------------------------------------------------------------
    # for ranking, drop the tails: hub degree should not drown out the
    # collusion signal, so score purely by shared-mule combinations C(c, 5)
    pattern = catalog.core_with_fringes("edge", [((0, 1), 5)])
    engine = EdgeCoreEngine(decompose(pattern))
    edges = graph.edge_array()
    c = common_neighbor_counts(graph, edges)
    deg = graph.degrees
    nu = deg[edges[:, 0]] - 1 - c
    nv = deg[edges[:, 1]] - 1 - c
    scores = engine._f_vector(nu.astype(float), nv.astype(float), c.astype(float))
    top = np.argsort(scores)[::-1][:5]
    print("\ntop suspicious account pairs (per-edge signature density):")
    for i in top:
        u, v = edges[i]
        print(f"  ({u}, {v})  shared counterparties={int(c[i])}  score={scores[i]:.3g}")
    # the planted pairs dominate: 12 shared mules each, far above the
    # organic common-neighbour counts of a preferential-attachment graph


if __name__ == "__main__":
    main()
