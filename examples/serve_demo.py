#!/usr/bin/env python
"""Serve demo: boot the counting service, query it like 32 clients would.

Shows the whole ``repro.serve`` pipeline in one file: a graph registry
shared across requests, a real HTTP server on a background thread, a
burst of concurrent (and deliberately duplicated) queries through the
blocking client, and the Prometheus metrics that show coalescing and the
result cache doing their job.

Run:  python examples/serve_demo.py
"""

from concurrent.futures import ThreadPoolExecutor

from repro.serve import CountingService, GraphRegistry, ServiceConfig
from repro.serve.client import CountClient
from repro.serve.http import start_in_thread


def main() -> None:
    # --- registry: load each graph once, share it across all requests --
    registry = GraphRegistry()
    for name in ("internet", "amazon0601"):
        entry = registry.load_dataset(name, "tiny")
        print(f"loaded {entry.name}: {entry.graph.num_vertices} vertices, "
              f"{entry.graph.num_edges} edges (fingerprint {entry.fingerprint[:12]})")

    # --- service + HTTP server on a daemon thread ---------------------
    service = CountingService(
        registry,
        config=ServiceConfig(max_queue=64, max_batch=8, executor_workers=2),
    )
    handle = start_in_thread(service)  # port=0 -> ephemeral
    print(f"\nserving on http://{handle.host}:{handle.port}\n")

    client = CountClient(port=handle.port)

    # --- a burst of concurrent clients, many asking the same thing ----
    workload = [
        ("internet", "triangle"), ("internet", "3-star"), ("internet", "paw"),
        ("amazon0601", "triangle"), ("amazon0601", "diamond"),
    ] * 6  # 30 queries, each unique question asked 6 times
    with ThreadPoolExecutor(max_workers=16) as pool:
        responses = list(pool.map(lambda gp: client.count(gp[0], gp[1]), workload))

    executed = sum(1 for r in responses if not r.cached and not r.coalesced)
    print(f"{len(responses)} responses: {executed} executed, "
          f"{sum(r.coalesced for r in responses)} coalesced, "
          f"{sum(r.cached for r in responses)} cache hits")
    for graph, pattern in sorted({gp for gp in workload}):
        count = next(r.count for gp, r in zip(workload, responses) if gp == (graph, pattern))
        print(f"  {graph:>12} / {pattern:<10} = {count:,}")

    # --- the service's own telemetry ----------------------------------
    print("\nselected metrics:")
    for line in client.metrics().splitlines():
        if line.startswith(("repro_serve_coalesced", "repro_serve_result_cache_hit",
                            "repro_serve_batches_total", "repro_serve_rejected")):
            print(f"  {line}")

    handle.stop()
    print("\nserver stopped")


if __name__ == "__main__":
    main()
