"""CI smoke for the persistent worker pool behind serve.

Fires 32 concurrent queries through :class:`~repro.serve.CountingService`
configured with ``executor="pool"`` (counts dispatched to the resident
spawn-context worker pool over shared memory), cross-checks every
response against a direct serial ``Runtime.count``, and asserts the pool
actually executed them (engine string, pool call stats).

Must live in a file — spawn-context workers re-import ``__main__``, so
the pool cannot be driven from a stdin heredoc. Everything below the
``if __name__ == "__main__"`` guard for the same reason.
"""

import asyncio
import sys
import time


def main() -> int:
    from repro.parallel.workerpool import get_default_pool, shutdown_default_pool
    from repro.patterns.dsl import parse_pattern
    from repro.runtime import Runtime
    from repro.serve import CountRequest, CountingService, GraphRegistry, ServiceConfig

    registry = GraphRegistry()
    registry.load_dataset("kron_g500-logn20", "tiny")
    registry.load_dataset("amazon0601", "tiny")

    workload = [
        ("kron_g500-logn20", "triangle"), ("kron_g500-logn20", "diamond"),
        ("kron_g500-logn20", "paw"), ("kron_g500-logn20", "4-star"),
        ("amazon0601", "triangle"), ("amazon0601", "diamond"),
        ("amazon0601", "wedge"), ("amazon0601", "3-star"),
    ] * 4  # 32 queries, every unique question asked 4 times

    async def scenario():
        service = CountingService(
            registry,
            config=ServiceConfig(
                executor="pool", pool_workers=2,
                result_cache_size=0, executor_workers=2,
            ),
        )
        service.start()
        try:
            t0 = time.perf_counter()
            responses = await asyncio.gather(*[
                service.submit(CountRequest(graph=g, pattern=p, use_cache=False))
                for g, p in workload
            ])
            elapsed = time.perf_counter() - t0
        finally:
            await service.stop()
        return responses, elapsed

    responses, elapsed = asyncio.run(scenario())

    bad = [r for r in responses if not r.ok]
    assert not bad, f"failed responses: {bad}"

    direct = Runtime()
    graphs = {name: registry.get(name).graph for name in registry.names()}
    expected = {
        gp: direct.count(graphs[gp[0]], parse_pattern(gp[1])).count
        for gp in set(workload)
    }
    mismatches = [
        (gp, r.count, expected[gp])
        for gp, r in zip(workload, responses)
        if r.count != expected[gp]
    ]
    assert not mismatches, f"count mismatches: {mismatches}"

    pooled = sum(1 for r in responses if "fringe-pool" in r.engine)
    stats = get_default_pool(2).stats
    shutdown_default_pool()
    assert pooled > 0, "no response executed on the persistent pool"
    assert stats.calls > 0, "pool recorded no calls"
    print(
        f"32/32 responses correct in {elapsed:.2f}s ({32 / elapsed:.1f} qps); "
        f"{pooled} on the pool, calls={stats.calls} steals={stats.steals}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
