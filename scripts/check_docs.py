#!/usr/bin/env python
"""Documentation consistency checker (the CI ``docs-check`` job).

Two checks, both cheap enough for tier-1:

* **API coverage** — every name in the ``__all__`` of the public
  modules (``repro.core``, ``repro.serve``, ``repro.runtime``) must
  appear in ``docs/API.md``. A new public name without a line in the
  API reference fails CI, which is the mechanism that keeps the docs
  tracking the code.
* **Link integrity** — every intra-repo markdown link in the tracked
  doc set (``README.md``, ``DESIGN.md``, ``docs/*.md``, ...) must
  resolve to an existing file, including ``file#Lnn`` / ``file#anchor``
  forms (the anchor is checked for existence of the *file* only).

Run from the repo root (or anywhere — paths resolve relative to this
file): ``python scripts/check_docs.py``. Exit status 0 = clean.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# modules whose __all__ must be fully covered by docs/API.md
PUBLIC_MODULES = ("repro.core", "repro.serve", "repro.runtime")

# markdown files whose intra-repo links are validated
DOC_FILES = (
    "README.md",
    "DESIGN.md",
    "ROADMAP.md",
    "EXPERIMENTS.md",
    "docs/API.md",
    "docs/ARCHITECTURE.md",
    "docs/TUNING.md",
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def missing_api_names() -> list[str]:
    """Public names absent from docs/API.md, as ``module.name`` strings."""
    import importlib

    sys.path.insert(0, str(REPO / "src"))
    api_text = (REPO / "docs" / "API.md").read_text(encoding="utf-8")
    missing = []
    for modname in PUBLIC_MODULES:
        module = importlib.import_module(modname)
        for name in module.__all__:
            # word-boundary match so e.g. "count" doesn't cover "count_many"
            if not re.search(rf"\b{re.escape(name)}\b", api_text):
                missing.append(f"{modname}.{name}")
    return missing


def broken_links() -> list[str]:
    """Intra-repo markdown links whose target file does not exist."""
    broken = []
    for relpath in DOC_FILES:
        doc = REPO / relpath
        if not doc.exists():
            broken.append(f"{relpath}: file listed in DOC_FILES is missing")
            continue
        in_fence = False
        for lineno, line in enumerate(doc.read_text(encoding="utf-8").splitlines(), 1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in _LINK.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                path = target.split("#", 1)[0]  # drop #anchor / #Lnn
                if not path:
                    continue
                resolved = (doc.parent / path).resolve()
                if not resolved.exists():
                    broken.append(f"{relpath}:{lineno}: broken link -> {target}")
    return broken


def main() -> int:
    failures = []
    missing = missing_api_names()
    if missing:
        failures.append(
            "public names missing from docs/API.md:\n  " + "\n  ".join(missing)
        )
    dead = broken_links()
    if dead:
        failures.append("broken intra-repo links:\n  " + "\n  ".join(dead))
    if failures:
        print("docs-check FAILED\n" + "\n".join(failures))
        return 1
    names = sum(
        len(__import__("importlib").import_module(m).__all__) for m in PUBLIC_MODULES
    )
    print(f"docs-check OK: {names} public names covered, all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
