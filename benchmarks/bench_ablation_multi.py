"""Ablation A6: multi-pattern batching vs independent counting.

Counting the whole Fig. 3 family (k-tailed triangles) shares the core
search and the Venn batches across members; this measures the saving
against running the general engine once per member. Counts must match
exactly, member for member.
"""

import json

import pytest

from repro import count_subgraphs
from repro.core.multi import MultiPatternCounter
from repro.graph import datasets
from repro.patterns import catalog

FAMILY = {f"{k}-tailed": catalog.k_tailed_triangle(k) for k in range(1, 6)}


@pytest.fixture(scope="module")
def graph():
    return datasets.make("rmat16.sym", "tiny")


def test_multi_shared_pass(benchmark, graph, results_dir):
    mpc = MultiPatternCounter(FAMILY)
    results = benchmark.pedantic(lambda: mpc.count_all(graph), rounds=1, iterations=1)
    _record(results_dir, "shared", benchmark.stats.stats.mean)
    for name, pattern in FAMILY.items():
        assert results[name].count == count_subgraphs(graph, pattern).count


def test_individual_passes(benchmark, graph, results_dir):
    def run():
        return {
            name: count_subgraphs(graph, pattern, engine="general").count
            for name, pattern in FAMILY.items()
        }

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    _record(results_dir, "individual", benchmark.stats.stats.mean)
    assert len(counts) == len(FAMILY)


def test_shared_is_faster(graph):
    import time

    t0 = time.perf_counter()
    MultiPatternCounter(FAMILY).count_all(graph)
    shared = time.perf_counter() - t0
    t0 = time.perf_counter()
    for pattern in FAMILY.values():
        count_subgraphs(graph, pattern, engine="general")
    individual = time.perf_counter() - t0
    assert shared < individual


def _record(results_dir, key, seconds):
    path = results_dir / "ablation_multi.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data[key] = {"seconds": seconds}
    path.write_text(json.dumps(data, indent=1))
