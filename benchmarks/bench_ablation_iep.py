"""Ablation A2: the §3.3 alternative — IEP vs the Venn-subtract formula.

The paper tried the inclusion–exclusion principle and found it "very
efficient in simpler cases" but worse once patterns carry multiple fringe
types. This ablation measures both on the same inputs: single-type
patterns (k-stars, diamonds) where IEP is competitive, and multi-type
patterns (tailed diamonds) where the fringe formula wins because IEP must
fall back to enumerating the extra types.
"""

import json

import pytest

from repro import count_subgraphs
from repro.baselines import IEPCounter
from repro.graph import datasets
from repro.patterns import catalog

SINGLE_TYPE = {
    "4-star": catalog.star(4),
    "diamond": catalog.diamond(),
}
MULTI_TYPE = {
    "tailed diamond": catalog.core_with_fringes("edge", [((0, 1), 2), ((0,), 1)]),
    "2-tailed diamond": catalog.core_with_fringes(
        "edge", [((0, 1), 2), ((0,), 1), ((1,), 1)]
    ),
}


@pytest.fixture(scope="module")
def graph():
    return datasets.make("rmat16.sym", "tiny")


@pytest.mark.parametrize("name", list(SINGLE_TYPE) + list(MULTI_TYPE))
def test_iep_vs_fringe(benchmark, graph, name, results_dir):
    pattern = {**SINGLE_TYPE, **MULTI_TYPE}[name]
    iep = IEPCounter(pattern)

    import time

    t0 = time.perf_counter()
    iep_count = iep.count(graph).count
    iep_s = time.perf_counter() - t0

    res = benchmark.pedantic(lambda: count_subgraphs(graph, pattern), rounds=1, iterations=1)
    assert res.count == iep_count  # both exact

    path = results_dir / "ablation_iep.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data[name] = {
        "fringe_seconds": res.elapsed_s,
        "iep_seconds": iep_s,
        "multi_type": name in MULTI_TYPE,
    }
    path.write_text(json.dumps(data, indent=1))


def test_multi_type_favors_fringe(graph):
    """IEP's relative cost grows when a second fringe type appears."""
    import time

    def ratio(pattern):
        t0 = time.perf_counter()
        IEPCounter(pattern).count(graph)
        iep_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        count_subgraphs(graph, pattern)
        fringe_s = time.perf_counter() - t0
        return iep_s / fringe_s

    single = ratio(SINGLE_TYPE["diamond"])
    multi = ratio(MULTI_TYPE["2-tailed diamond"])
    assert multi > single, (single, multi)
