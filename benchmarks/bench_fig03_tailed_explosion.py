"""Fig. 2/3 narrative: the counting explosion from adding tails.

The paper motivates fringes with the `internet` input: 19,523 triangles
vs 880,555 tailed triangles vs 21,095,445 2-tailed triangles — each tail
multiplies the count by ~45/~24. This benchmark counts the same three
patterns on the internet-like stand-in and checks the explosion (each
tail multiplies the count by well over an order of magnitude) while
benchmarking the fringe engine on all three.
"""

import json

import pytest

from repro import count_subgraphs
from repro.graph import datasets
from repro.patterns import catalog

PATTERNS = {
    "triangle": catalog.triangle(),
    "tailed triangle": catalog.k_tailed_triangle(1),
    "2-tailed triangle": catalog.k_tailed_triangle(2),
}

PAPER_COUNTS = {
    "triangle": 19_523,
    "tailed triangle": 880_555,
    "2-tailed triangle": 21_095_445,
}


@pytest.fixture(scope="module")
def internet():
    return datasets.make("internet", "small")


@pytest.mark.parametrize("name", list(PATTERNS))
def test_fig03_count(benchmark, internet, name, results_dir):
    res = benchmark.pedantic(
        lambda: count_subgraphs(internet, PATTERNS[name]), rounds=1, iterations=1
    )
    assert res.count > 0
    path = results_dir / "fig03.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data[name] = {"count": res.count, "paper_count": PAPER_COUNTS[name], "seconds": res.elapsed_s}
    path.write_text(json.dumps(data, indent=1))


def test_fig03_explosion_shape(internet, results_dir):
    counts = {n: count_subgraphs(internet, p).count for n, p in PATTERNS.items()}
    # each added tail multiplies the count by over an order of magnitude
    assert counts["tailed triangle"] > 10 * counts["triangle"]
    assert counts["2-tailed triangle"] > 10 * counts["tailed triangle"]
