"""Table 1: the input graphs and their summary statistics.

Regenerates the paper's Table 1 columns (vertices, edges, d_avg, d_max)
for the synthetic stand-ins and benchmarks the dataset construction +
summary pipeline.
"""

import json

from repro.graph import datasets


def test_table1_generation(benchmark, results_dir):
    def build():
        return datasets.table1("tiny")

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(rows) == 10

    paper = {s.name: s for s in datasets.paper_table1()}
    payload = []
    for row in rows:
        p = paper[row.name]
        payload.append(
            {
                "name": row.name,
                "kind": row.kind,
                "source": row.source,
                "vertices": row.vertices,
                "edges": row.edges,
                "avg_degree": round(row.avg_degree, 1),
                "max_degree": row.max_degree,
                "paper_vertices": p.vertices,
                "paper_edges": p.edges,
                "paper_avg_degree": p.avg_degree,
                "paper_max_degree": p.max_degree,
            }
        )
    (results_dir / "table1.json").write_text(json.dumps(payload, indent=1))

    # topology-class sanity: the stand-ins must preserve the paper's
    # degree-profile ordering (road lowest avg degree, kron most skewed)
    by_name = {r.name: r for r in rows}
    assert by_name["USA-road-d.NY"].avg_degree == min(r.avg_degree for r in rows)
    assert by_name["kron_g500-logn20"].max_degree == max(r.max_degree for r in rows)
    assert by_name["delaunay_n22"].max_degree < 40
    assert by_name["USA-road-d.NY"].max_degree <= 4
