"""Fig. 15: per-input detail on kron_g500-logn20 across all core types.

Paper shape on this input (highest average degree, widest degree
distribution): Fringe-SGC wins on *every* pattern — 1.06-240x over
GraphSet, 7.8-2334x over STMatch, 2-961x over T-DFS — and its throughput
drops only when a *core* vertex is added, not a fringe vertex.
"""

import pytest

from repro.bench import render_figure, render_speedups, run_figure, save_figure, workloads as W


@pytest.fixture(scope="module")
def figure(kron_tiny, results_dir):
    res = run_figure(
        "fig15-kron-perinput",
        W.fig15_patterns(),
        {"kron_g500-logn20": kron_tiny},
        W.ALL_SYSTEMS,
        timeout_s=5.0,
    )
    save_figure(res, results_dir / "fig15.json")
    print()
    print(render_figure(res))
    for other in ("graphset-like", "stmatch-like", "tdfs-like"):
        print(render_speedups(res, over=other))
    return res


def test_fig15_full_sweep(figure, benchmark, kron_tiny):
    res = benchmark.pedantic(
        lambda: run_figure(
            "fig15-kron-perinput",
            W.fig15_patterns(),
            {"kron_g500-logn20": kron_tiny},
            ("fringe-sgc",),
            timeout_s=30.0,
        ),
        rounds=1,
        iterations=1,
    )
    assert all(m.status == "ok" for m in res.measurements)


def test_fig15_fringe_never_slower(figure):
    """'there is not a single pattern where Fringe-SGC is slower' on this
    input (paper §6.3)."""
    for p in W.fig15_patterns():
        fringe = figure.geomean_throughput("fringe-sgc", p)
        assert fringe is not None
        for other in ("graphset-like", "stmatch-like", "tdfs-like"):
            tp = figure.geomean_throughput(other, p)
            if tp is not None:
                assert fringe >= tp, (p, other, fringe, tp)


def test_fig15_fringe_vertices_cheaper_than_core_vertices(figure):
    """Adding a fringe vertex (triangle -> tailed triangle) hurts
    Fringe-SGC far less than adding a core vertex class change
    (edge-core triangle family vs triangle-core clique family)."""
    tri = figure.geomean_throughput("fringe-sgc", "triangle")
    tailed = figure.geomean_throughput("fringe-sgc", "tailed triangle")
    clique = figure.geomean_throughput("fringe-sgc", "4-clique")
    assert tri is not None and tailed is not None and clique is not None
    fringe_drop = tri / tailed  # add one fringe vertex
    core_drop = tri / clique  # move to a 3-vertex core
    assert core_drop > fringe_drop
