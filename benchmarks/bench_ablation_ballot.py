"""Ablation A1: Listing 7 ballot strategy vs Listing 6 naive nesting.

The paper: "We found this approach to greatly improve performance on
GPUs" (§3.6). On the SIMT simulator the effect is directly measurable:
the ballot kernel keeps every lane active (SIMT efficiency ~1.0) while
the naive per-lane nesting serializes divergent lanes; its makespan is a
multiple of the ballot kernel's.
"""

import json

import pytest

from repro.graph import datasets
from repro.gpusim import GPUMachine, MachineConfig, run_ballot_warp, run_naive_warp


@pytest.fixture(scope="module")
def graph():
    return datasets.make("kron_g500-logn20", "tiny")


@pytest.fixture(scope="module")
def machine():
    return GPUMachine(MachineConfig(num_sms=16))


def test_ballot_kernel_cycles(benchmark, graph, machine, results_dir):
    report = benchmark.pedantic(
        lambda: machine.launch(graph, run_ballot_warp), rounds=1, iterations=1
    )
    assert report.simt_efficiency > 0.95  # all lanes march together
    _record(results_dir, "ballot", report)


def test_naive_kernel_cycles(benchmark, graph, machine, results_dir):
    report = benchmark.pedantic(
        lambda: machine.launch(graph, run_naive_warp), rounds=1, iterations=1
    )
    assert report.simt_efficiency < 0.7  # divergence wastes most lanes
    _record(results_dir, "naive", report)


def test_ballot_beats_naive(graph, machine, results_dir):
    ballot = machine.launch(graph, run_ballot_warp)
    naive = machine.launch(graph, run_naive_warp)
    assert ballot.makespan_steps < naive.makespan_steps
    assert ballot.simt_efficiency > 2 * naive.simt_efficiency
    _record(
        results_dir,
        "summary",
        None,
        extra={
            "makespan_speedup": naive.makespan_steps / ballot.makespan_steps,
            "ballot_simt_efficiency": ballot.simt_efficiency,
            "naive_simt_efficiency": naive.simt_efficiency,
        },
    )


def _record(results_dir, key, report, extra=None):
    path = results_dir / "ablation_ballot.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    if report is not None:
        data[key] = {
            "makespan_steps": report.makespan_steps,
            "total_steps": report.total_steps,
            "simt_efficiency": report.simt_efficiency,
            "mem_transactions": report.total_mem_transactions,
        }
    if extra:
        data[key] = extra
    path.write_text(json.dumps(data, indent=1))
