"""Ablation A5: dynamic vs static work scheduling (§3.6).

Two views of the same design choice:

* on the SIMT simulator — chunk makespans under dynamic (atomic counter)
  vs static (round-robin) assignment on the skewed Kronecker input;
* on the CPU parallel layer — contiguous vs strided vs dynamic chunking
  must all return identical counts (scheduling never changes results).
"""

import json

import pytest

from repro import count_subgraphs
from repro.graph import datasets
from repro.gpusim import GPUMachine, MachineConfig, run_ballot_warp
from repro.parallel import ParallelConfig, parallel_count
from repro.patterns import catalog


@pytest.fixture(scope="module")
def graph():
    return datasets.make("kron_g500-logn20", "tiny")


@pytest.mark.parametrize("schedule", ["dynamic", "static"])
def test_simt_schedule(benchmark, graph, schedule, results_dir):
    machine = GPUMachine(MachineConfig(num_sms=16, schedule=schedule, chunk_size=8))
    report = benchmark.pedantic(
        lambda: machine.launch(graph, run_ballot_warp), rounds=1, iterations=1
    )
    path = results_dir / "ablation_schedule.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data[f"simt_{schedule}"] = {
        "makespan_steps": report.makespan_steps,
        "load_imbalance": report.load_imbalance,
    }
    path.write_text(json.dumps(data, indent=1))


def test_dynamic_beats_static_makespan(graph):
    dyn = GPUMachine(MachineConfig(num_sms=16, schedule="dynamic", chunk_size=8)).launch(
        graph, run_ballot_warp
    )
    sta = GPUMachine(MachineConfig(num_sms=16, schedule="static", chunk_size=8)).launch(
        graph, run_ballot_warp
    )
    assert dyn.makespan_steps <= sta.makespan_steps


@pytest.mark.parametrize("schedule", ["static", "strided", "dynamic"])
def test_cpu_schedules_exact(benchmark, graph, schedule, results_dir):
    pattern = catalog.tailed_triangle()
    expect = count_subgraphs(graph, pattern).count
    res = benchmark.pedantic(
        lambda: parallel_count(
            graph, pattern, parallel=ParallelConfig(num_workers=2, schedule=schedule)
        ),
        rounds=1,
        iterations=1,
    )
    assert res.count == expect
    path = results_dir / "ablation_schedule.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data[f"cpu_{schedule}"] = {"seconds": res.elapsed_s}
    path.write_text(json.dumps(data, indent=1))
