"""Fig. 11: throughput for patterns with a wedge core.

Paper shape: like the triangle core — 0.6x to 4.35x vs GraphSet, 89-535x
vs STMatch, 41-156x vs T-DFS, with the benefit growing with fringe count.
"""

import pytest

from repro.bench import render_figure, render_speedups, run_figure, save_figure, workloads as W


@pytest.fixture(scope="module")
def figure(tiny_inputs, results_dir):
    res = run_figure(
        "fig11-wedge-core",
        W.fig11_patterns(),
        tiny_inputs,
        W.ALL_SYSTEMS,
        timeout_s=5.0,
    )
    save_figure(res, results_dir / "fig11.json")
    print()
    print(render_figure(res))
    print(render_speedups(res, over="graphset-like"))
    return res


def test_fig11_full_sweep(figure, benchmark, tiny_inputs):
    res = benchmark.pedantic(
        lambda: run_figure(
            "fig11-wedge-core",
            W.fig11_patterns(),
            tiny_inputs,
            ("fringe-sgc",),
            timeout_s=20.0,
        ),
        rounds=1,
        iterations=1,
    )
    assert all(m.status == "ok" for m in res.measurements)


def test_fig11_fringe_always_finishes(figure):
    for p in W.fig11_patterns():
        assert figure.geomean_throughput("fringe-sgc", p) is not None


def test_fig11_benefit_grows(figure):
    """Fringe-SGC's advantage over the enumerators grows as wedge fringes
    are added to the wedge core (4-cycle -> K_{2,5})."""
    series = ["4-cycle", "k23", "k24", "k25"]
    speedups = [figure.speedup(p, over="stmatch-like") for p in series]
    known = [s for s in speedups if s is not None]
    if len(known) >= 2:
        assert known[-1] > known[0]
