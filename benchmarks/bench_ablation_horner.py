"""Ablation A7: flat vs Horner-factorized polynomial evaluation.

The compiled fringe polynomial can be evaluated term by term (flat) or
with a shared-prefix (multivariate Horner) plan that multiplies each
common prefix once. Both produce identical per-row values; this ablation
measures the float-pass cost on a fringe-heavy pattern where the
polynomial has thousands of terms.
"""

import json

import numpy as np
import pytest

from repro.core.fringe_poly import compile_fringe_polynomial
from repro.patterns import catalog
from repro.patterns.decompose import decompose


@pytest.fixture(scope="module")
def workload():
    pat = catalog.fig4_pattern().with_fringe((0,), 4)  # tail-heavy: many terms
    dec = decompose(pat)
    anch, k = dec.anchor_bitsets()
    poly = compile_fringe_polynomial(anch, k, dec.q)
    venns = np.random.default_rng(3).integers(0, 40, size=(20_000, 1 << dec.q)).astype(np.int64)
    return poly, venns


def test_flat_eval(benchmark, workload, results_dir):
    poly, venns = workload
    benchmark(lambda: poly._per_row_float(venns))
    _record(results_dir, "flat", benchmark.stats.stats.mean, poly.num_terms)


def test_horner_eval(benchmark, workload, results_dir):
    poly, venns = workload
    benchmark(lambda: poly.per_row_float_horner(venns))
    _record(results_dir, "horner", benchmark.stats.stats.mean, poly.num_terms)


def test_identical_values(workload):
    poly, venns = workload
    flat = poly._per_row_float(venns)
    horner = poly.per_row_float_horner(venns)
    assert np.allclose(flat, horner, equal_nan=True)


def test_plan_shares_prefixes(workload):
    poly, _ = workload
    plan = poly.horner_plan()
    shared = sum(lcp for lcp, _ in plan)
    assert shared > 0  # lex-sorted terms must share some prefixes


def _record(results_dir, key, seconds, terms):
    path = results_dir / "ablation_horner.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data[key] = {"mean_seconds": seconds, "terms": terms}
    path.write_text(json.dumps(data, indent=1))
