"""Fig. 8: throughput for patterns with a 1-vertex core (k-stars).

Paper shape to reproduce: Fringe-SGC is fastest and ~flat in k; the
enumerative systems decay sharply with k (they must visit every star) and
start timing out; geomean speedups over GraphSet grow from ~1.6x at
2-stars to ~19x at 6-stars.
"""

import pytest

from repro.bench import render_figure, render_speedups, run_figure, save_figure, workloads as W


@pytest.fixture(scope="module")
def figure(tiny_inputs, results_dir):
    res = run_figure(
        "fig08-vertex-core",
        W.fig08_patterns(),
        tiny_inputs,
        W.ALL_SYSTEMS,
        timeout_s=3.0,
    )
    save_figure(res, results_dir / "fig08.json")
    print()
    print(render_figure(res))
    print(render_speedups(res, over="graphset-like"))
    return res


def test_fig08_full_sweep(figure, benchmark, tiny_inputs, results_dir):
    """The whole figure as one benchmark (it already loops internally)."""
    res = benchmark.pedantic(
        lambda: run_figure(
            "fig08-vertex-core",
            W.fig08_patterns(),
            tiny_inputs,
            ("fringe-sgc",),
            timeout_s=3.0,
        ),
        rounds=1,
        iterations=1,
    )
    assert all(m.status == "ok" for m in res.measurements)


def test_fig08_shape(figure):
    """Who wins, and how the gap trends with k."""
    stars = list(W.fig08_patterns())
    for star in stars:
        fringe = figure.geomean_throughput("fringe-sgc", star)
        assert fringe is not None and fringe > 0
        for other in ("graphset-like", "stmatch-like", "tdfs-like"):
            tp = figure.geomean_throughput(other, star)
            if tp is not None:
                assert fringe > tp, (star, other)
    # the speedup over graphset grows with k (paper: 1.64x -> 18.76x)
    first = figure.speedup(stars[0], over="graphset-like")
    last_available = [
        figure.speedup(s, over="graphset-like")
        for s in stars
        if figure.speedup(s, over="graphset-like") is not None
    ]
    assert first is not None and last_available[-1] > first


def test_fig08_enumerators_decay_then_dnf(figure):
    """STMatch-like throughput decays with k until it cannot finish."""
    stars = list(W.fig08_patterns())
    tps = [figure.geomean_throughput("stmatch-like", s) for s in stars]
    seen_none = False
    prev = None
    for tp in tps:
        if tp is None:
            seen_none = True
            continue
        assert not seen_none, "throughput reappeared after DNF"
        if prev is not None:
            assert tp < prev, "enumerator should slow down as k grows"
        prev = tp
    assert seen_none, "largest stars must exceed the budget (as in the paper)"
