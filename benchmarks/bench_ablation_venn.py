"""Ablation A4: Venn-diagram implementations.

Compares the four interchangeable implementations — dict reference,
NumPy sort-reduce, the paper's later-stack binary-search-with-correction
scheme (§3.6), and the batched sort-reduce used by the poly engine —
on identical anchor workloads from a high-degree input.
"""

import json
import random

import numpy as np
import pytest

from repro.core.venn import venn_batch, venn_hash, venn_merge, venn_sorted
from repro.graph import datasets


@pytest.fixture(scope="module")
def workload():
    graph = datasets.make("kron_g500-logn20", "tiny")
    rng = random.Random(7)
    n = graph.num_vertices
    anchors = [rng.sample(range(n), 3) for _ in range(600)]
    return graph, anchors


@pytest.mark.parametrize(
    "impl", [venn_hash, venn_sorted, venn_merge], ids=["hash", "sorted", "merge"]
)
def test_venn_scalar_impl(benchmark, workload, impl, results_dir):
    graph, anchors = workload

    def run():
        out = 0
        for a in anchors:
            out += sum(impl(graph, a, a))
        return out

    total = benchmark(run)
    _record(results_dir, impl.__name__, benchmark.stats.stats.mean, total)


def test_venn_batched(benchmark, workload, results_dir):
    graph, anchors = workload
    arr = np.asarray(anchors, dtype=np.int64)

    def run():
        return int(venn_batch(graph, arr, arr).sum())

    total = benchmark(run)
    _record(results_dir, "venn_batch", benchmark.stats.stats.mean, total)


def test_all_impls_agree(workload):
    graph, anchors = workload
    arr = np.asarray(anchors[:50], dtype=np.int64)
    batched = venn_batch(graph, arr, arr)
    for i, a in enumerate(anchors[:50]):
        ref = venn_hash(graph, a, a)
        assert venn_sorted(graph, a, a) == ref
        assert venn_merge(graph, a, a) == ref
        assert batched[i].tolist() == ref


def _record(results_dir, name, mean_s, checksum):
    path = results_dir / "ablation_venn.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data[name] = {"mean_seconds": mean_s, "checksum": int(checksum)}
    path.write_text(json.dumps(data, indent=1))
