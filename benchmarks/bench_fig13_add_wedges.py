"""Fig. 13: Fringe-SGC throughput while adding wedge fringes to Fig. 4.

Paper shape: an even smaller drop than Fig. 12's tails — wedge fringes
only extend the summation over two Venn regions ({u,v} and {u,v,w}), so
throughput stays nearly flat across 10 added vertices.
"""

import json

import pytest

from repro import count_subgraphs
from repro.bench import workloads as W

SERIES = W.fig13_series(10)


@pytest.fixture(scope="module")
def graph():
    return W.small_fig4_graph()["kron-small"]


@pytest.mark.parametrize("name", list(SERIES))
def test_fig13_point(benchmark, graph, name, results_dir):
    res = benchmark.pedantic(
        lambda: count_subgraphs(graph, SERIES[name]), rounds=1, iterations=1
    )
    assert res.count > 0
    path = results_dir / "fig13.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data[name] = {
        "seconds": res.elapsed_s,
        "throughput_eps": graph.num_edges / res.elapsed_s,
        "pattern_vertices": SERIES[name].n,
        "count_digits": len(str(res.count)),
    }
    path.write_text(json.dumps(data, indent=1))


def test_fig13_wedges_cheaper_than_tails(graph):
    """The paper observes adding wedges costs less than adding tails
    (fewer covering regions: 2 vs 4)."""
    import time

    t0 = time.perf_counter()
    count_subgraphs(graph, W.fig12_series(10)["fig4+10"])
    tails = time.perf_counter() - t0
    t0 = time.perf_counter()
    count_subgraphs(graph, SERIES["fig4+10"])
    wedges = time.perf_counter() - t0
    assert wedges < tails
