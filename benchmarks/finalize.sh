#!/bin/sh
# Post-benchmark finalization: render the report from results JSONs.
set -e
cd "$(dirname "$0")/.."
python -m repro.bench.report --write
echo "report at benchmarks/results/report.md"
