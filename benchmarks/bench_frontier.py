"""Frontier backend vs the serial per-match engine.

The repo's first recorded perf trajectory: the vectorized
frontier-at-a-time matcher (``engine="frontier"``) against the scalar
stack matcher with per-match venn + iterative fc (``fringe-serial``),
on patterns whose core has >= 3 vertices — the regime where matching,
not fringe evaluation, dominates. Cells land in
``benchmarks/results/BENCH_frontier.json``; every cell is exact-count
cross-checked against the serial engine by ``verify_counts_agree``.

Target (ISSUE): >= 5x on the Kronecker/dataset inputs for at least one
pattern with >= 3 core vertices.
"""

import pytest

from repro.bench import render_figure, render_speedups, run_figure, save_figure, workloads as W


@pytest.fixture(scope="module")
def figure(results_dir):
    res = run_figure(
        "frontier",
        W.frontier_patterns(),
        W.frontier_inputs("tiny"),
        W.FRONTIER_VS_SERIAL,
        timeout_s=30.0,
        record_dir=results_dir,
    )
    save_figure(res, results_dir / "frontier.json")
    print()
    print(render_figure(res))
    print(render_speedups(res, over="fringe-serial", of="fringe-frontier"))
    return res


def test_frontier_full_sweep(figure, benchmark):
    res = benchmark.pedantic(
        lambda: run_figure(
            "frontier",
            W.frontier_patterns(),
            W.frontier_inputs("tiny"),
            ("fringe-frontier",),
            timeout_s=30.0,
        ),
        rounds=1,
        iterations=1,
    )
    assert all(m.status == "ok" for m in res.measurements)


def test_frontier_counts_match_serial(figure):
    """Every (pattern, graph) cell: frontier count == serial count."""
    figure.verify_counts_agree()  # raises on any disagreement
    ok = [m for m in figure.measurements if m.status == "ok"]
    assert len(ok) == len(figure.measurements), "a cell did not finish"


def test_frontier_speedup_target(figure):
    """>= 5x over serial on at least one >= 3-core-vertex pattern."""
    speedups = {
        p: figure.speedup(p, over="fringe-serial", of="fringe-frontier")
        for p in W.frontier_patterns()
    }
    print("frontier speedups over serial:", speedups)
    assert any(s is not None and s >= 5.0 for s in speedups.values()), speedups
