"""Fig. 9: throughput for patterns with a 2-vertex (edge) core.

Paper shape: Fringe-SGC near-constant as fringes are added up to the
7-vertex limit of the other codes; the others decay. Geomean speedups
1.07–4.7x over GraphSet, 42–465x over STMatch, 2–664x over T-DFS.
"""

import pytest

from repro.bench import render_figure, render_speedups, run_figure, save_figure, workloads as W


@pytest.fixture(scope="module")
def figure(tiny_inputs, results_dir):
    res = run_figure(
        "fig09-edge-core",
        W.fig09_patterns(),
        tiny_inputs,
        W.ALL_SYSTEMS,
        timeout_s=3.0,
    )
    save_figure(res, results_dir / "fig09.json")
    print()
    print(render_figure(res))
    print(render_speedups(res, over="graphset-like"))
    return res


def test_fig09_full_sweep(figure, benchmark, tiny_inputs):
    res = benchmark.pedantic(
        lambda: run_figure(
            "fig09-edge-core", W.fig09_patterns(), tiny_inputs, ("fringe-sgc",), timeout_s=10.0
        ),
        rounds=1,
        iterations=1,
    )
    assert all(m.status == "ok" for m in res.measurements)


def test_fig09_fringe_near_constant(figure):
    """Fringe-SGC throughput varies far less than the enumerators' as
    fringes are added to the edge core."""
    pats = list(W.fig09_patterns())
    fringe = [figure.geomean_throughput("fringe-sgc", p) for p in pats]
    assert all(tp is not None for tp in fringe)
    spread = max(fringe) / min(fringe)
    stm = [figure.geomean_throughput("stmatch-like", p) for p in pats]
    stm_ok = [tp for tp in stm if tp is not None]
    stm_spread = max(stm_ok) / min(stm_ok)
    assert spread < stm_spread, (spread, stm_spread)


def test_fig09_fringe_wins_on_fringe_heavy(figure):
    """On the most fringe-heavy pattern every other system is slower or
    DNF (the paper's Fig. 9 right edge)."""
    heaviest = list(W.fig09_patterns())[-1]
    fringe = figure.geomean_throughput("fringe-sgc", heaviest)
    for other in ("graphset-like", "stmatch-like", "tdfs-like"):
        tp = figure.geomean_throughput(other, heaviest)
        assert tp is None or tp < fringe
