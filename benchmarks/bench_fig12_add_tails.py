"""Fig. 12: Fringe-SGC throughput while adding tail fringes to Fig. 4.

The starting pattern (16 vertices, 25 edges) is already beyond every
other framework, so — exactly as in the paper — only Fringe-SGC runs.
Paper shape: 10 extra tails cost < 3.5x throughput; our Python engine
pays a larger (but still polynomial, emphatically non-exponential)
factor because the per-match fringe polynomial dominates at this small
graph scale. The shape assertion is therefore: the cost of +10 fringes
stays within a polynomial envelope, vastly below the >2^10 growth a
whole-pattern enumerator would exhibit.
"""

import json

import pytest

from repro import count_subgraphs
from repro.bench import workloads as W

SERIES = W.fig12_series(10)


@pytest.fixture(scope="module")
def graph():
    return W.small_fig4_graph()["kron-small"]


@pytest.mark.parametrize("name", list(SERIES))
def test_fig12_point(benchmark, graph, name, results_dir):
    res = benchmark.pedantic(
        lambda: count_subgraphs(graph, SERIES[name]), rounds=1, iterations=1
    )
    assert res.count > 0
    path = results_dir / "fig12.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data[name] = {
        "seconds": res.elapsed_s,
        "throughput_eps": graph.num_edges / res.elapsed_s,
        "pattern_vertices": SERIES[name].n,
        "count_digits": len(str(res.count)),
    }
    path.write_text(json.dumps(data, indent=1))


def test_fig12_no_exponential_blowup(graph):
    import time

    t0 = time.perf_counter()
    count_subgraphs(graph, SERIES["fig4+0"])
    base = time.perf_counter() - t0
    t0 = time.perf_counter()
    count_subgraphs(graph, SERIES["fig4+10"])
    extended = time.perf_counter() - t0
    # +10 pattern vertices would cost an enumerator >= 2^10; the fringe
    # formula pays a small polynomial factor
    assert extended / base < 128, (base, extended)
