"""Ablation A3: symmetry breaking on/off in the core matcher.

With symmetry breaking the matcher visits each decoration-preserving
orbit once and multiplies by the group order; without it, every ordered
embedding is enumerated. Counts are identical; visited core matches (and
time) differ by the group order on symmetric cores.
"""

import json

import pytest

from repro.core.engine import EngineConfig, count_subgraphs
from repro.graph import datasets
from repro.patterns import catalog

PATTERNS = {
    "diamond": catalog.diamond(),  # group order 2
    "4-clique": catalog.four_clique(),  # group order 6
    "3-trifringe triangle": catalog.core_with_fringes("triangle", [((0, 1, 2), 3)]),
}


@pytest.fixture(scope="module")
def graph():
    return datasets.make("coPapersDBLP", "tiny")


@pytest.mark.parametrize("name", list(PATTERNS))
def test_symmetry_on(benchmark, graph, name, results_dir):
    cfg = EngineConfig(symmetry_breaking=True)
    res = benchmark.pedantic(
        lambda: count_subgraphs(graph, PATTERNS[name], engine="general", config=cfg),
        rounds=1,
        iterations=1,
    )
    _record(results_dir, name, "on", res)


@pytest.mark.parametrize("name", list(PATTERNS))
def test_symmetry_off(benchmark, graph, name, results_dir):
    cfg = EngineConfig(symmetry_breaking=False)
    res = benchmark.pedantic(
        lambda: count_subgraphs(graph, PATTERNS[name], engine="general", config=cfg),
        rounds=1,
        iterations=1,
    )
    _record(results_dir, name, "off", res)


def test_symmetry_reduces_matches_not_counts(graph):
    for name, pattern in PATTERNS.items():
        on = count_subgraphs(graph, pattern, engine="general", config=EngineConfig(symmetry_breaking=True))
        off = count_subgraphs(graph, pattern, engine="general", config=EngineConfig(symmetry_breaking=False))
        assert on.count == off.count
        assert on.core_matches <= off.core_matches
        if name != "tailed":  # all three patterns have non-trivial groups
            assert on.core_matches < off.core_matches


def _record(results_dir, name, mode, res):
    path = results_dir / "ablation_symmetry.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data.setdefault(name, {})[mode] = {
        "seconds": res.elapsed_s,
        "core_matches": res.core_matches,
    }
    path.write_text(json.dumps(data, indent=1))
