"""Fig. 10: throughput for patterns with a triangle core.

Paper shape: speedups over GraphSet range from 0.6x (a slowdown on the
4-clique, the single-fringe case) to 2.89x on the 3-tailed 4-clique; the
advantage grows with the number of fringes. STMatch/T-DFS are far slower
throughout.
"""

import pytest

from repro.bench import render_figure, render_speedups, run_figure, save_figure, workloads as W


@pytest.fixture(scope="module")
def figure(tiny_inputs, results_dir):
    res = run_figure(
        "fig10-triangle-core",
        W.fig10_patterns(),
        tiny_inputs,
        W.ALL_SYSTEMS,
        timeout_s=5.0,
    )
    save_figure(res, results_dir / "fig10.json")
    print()
    print(render_figure(res))
    print(render_speedups(res, over="graphset-like"))
    return res


def test_fig10_full_sweep(figure, benchmark, tiny_inputs):
    res = benchmark.pedantic(
        lambda: run_figure(
            "fig10-triangle-core",
            W.fig10_patterns(),
            tiny_inputs,
            ("fringe-sgc",),
            timeout_s=15.0,
        ),
        rounds=1,
        iterations=1,
    )
    assert all(m.status == "ok" for m in res.measurements)


def test_fig10_advantage_grows_with_fringes(figure):
    """Speedup over the enumerators on the 4-fringe pattern exceeds the
    single-fringe 4-clique speedup (the paper's 0.6x -> 2.89x trend)."""
    single = figure.speedup("4-clique", over="stmatch-like")
    multi = figure.speedup("3-tailed 4-clique", over="stmatch-like")
    if single is not None and multi is not None:
        assert multi > single
    # and fringe-sgc completes everything
    for p in W.fig10_patterns():
        assert figure.geomean_throughput("fringe-sgc", p) is not None
