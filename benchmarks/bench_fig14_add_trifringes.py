"""Fig. 14: Fringe-SGC throughput while adding tri-fringes to Fig. 4.

Paper shape: adding 10 tri-fringes *speeds counting up* by 1.56x — each
tri-fringe raises the pattern's core degree requirements, so fewer
triangles in the graph qualify as cores (the degree filter prunes more).
Tri-fringes draw from a single Venn region ({u,v,w}), so the formula
itself barely grows.
"""

import json

import pytest

from repro import count_subgraphs
from repro.bench import workloads as W

SERIES = W.fig14_series(10)


@pytest.fixture(scope="module")
def graph():
    return W.small_fig4_graph()["kron-small"]


@pytest.mark.parametrize("name", list(SERIES))
def test_fig14_point(benchmark, graph, name, results_dir):
    res = benchmark.pedantic(
        lambda: count_subgraphs(graph, SERIES[name]), rounds=1, iterations=1
    )
    assert res.count >= 0
    path = results_dir / "fig14.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data[name] = {
        "seconds": res.elapsed_s,
        "throughput_eps": graph.num_edges / res.elapsed_s,
        "pattern_vertices": SERIES[name].n,
        "count_digits": len(str(res.count)),
    }
    path.write_text(json.dumps(data, indent=1))


def test_fig14_trifringes_nearly_free(graph):
    """Tri-fringes add only single-region draws: the +10 pattern must not
    cost more than a small multiple of the base (the paper even sees a
    1.56x speedup from stronger degree filtering)."""
    import time

    t0 = time.perf_counter()
    count_subgraphs(graph, SERIES["fig4+0"])
    base = time.perf_counter() - t0
    t0 = time.perf_counter()
    count_subgraphs(graph, SERIES["fig4+10"])
    extended = time.perf_counter() - t0
    assert extended < 8 * base, (base, extended)
