"""Cold fork pool vs the warm persistent worker pool.

The perf claim of the worker-pool PR: once the spawn-context pool is
resident (workers started, graph exported to shared memory), a parallel
``count()`` costs a fraction of the per-call fork pool, which pays
process spin-up on every call — the CPU analogue of the paper keeping
the graph and workers resident on the device across queries (§3.6).

Cells land in ``benchmarks/results/BENCH_pool.json``; every
(pattern, graph) cell is exact-count cross-checked across the serial
engine, the fork pool, and the spawn-context persistent pool by
``verify_counts_agree``. A serve-throughput record (32 concurrent
queries through :class:`~repro.serve.CountingService` on the persistent
pool executor) is appended to the same file.

Target (ISSUE): warm persistent-pool ``count()`` >= 3x faster than the
cold per-call fork pool on the small inputs.
"""

import asyncio
import time

import pytest

from repro.bench import render_figure, render_speedups, run_figure, save_figure, workloads as W
from repro.bench.harness import RecordAppender, _bench_record_path
from repro.parallel import ParallelConfig, parallel_count
from repro.parallel.shm import shm_available
from repro.parallel.workerpool import shutdown_default_pool
from repro.patterns import catalog

pytestmark = pytest.mark.skipif(not shm_available(), reason="no shared memory")


@pytest.fixture(scope="module")
def figure(results_dir):
    # Warm the persistent pool once (workers spawned, kron graph
    # exported) so the figure measures the steady state the pool is for;
    # the fork side has no steady state — it pays spin-up per call.
    warm_graph = next(iter(W.pool_inputs("tiny").values()))
    parallel_count(
        warm_graph, catalog.triangle(),
        parallel=ParallelConfig(num_workers=2, chunk_size=64, pool="persistent"),
    )
    res = run_figure(
        "pool",
        W.pool_patterns(),
        W.pool_inputs("tiny"),
        W.POOL_SYSTEMS,
        timeout_s=60.0,
        record_dir=results_dir,
    )
    save_figure(res, results_dir / "pool.json")
    print()
    print(render_figure(res))
    print(render_speedups(res, over="fringe-fork", of="fringe-pool"))
    yield res
    shutdown_default_pool()


def test_pool_counts_match_serial(figure):
    """fork, persistent (spawn), and serial paths agree on every cell."""
    figure.verify_counts_agree()  # raises on any disagreement
    ok = [m for m in figure.measurements if m.status == "ok"]
    assert len(ok) == len(figure.measurements), "a cell did not finish"


def test_warm_pool_beats_cold_fork(figure):
    """Warm persistent pool >= 3x the per-call fork pool (geomean)."""
    from repro.bench import geomean

    speedups = {
        pat: figure.speedup(pat, over="fringe-fork", of="fringe-pool")
        for pat in figure.patterns()
    }
    assert all(s is not None for s in speedups.values()), speedups
    # the pool wins on every pattern; >= 3x overall, where the cells are
    # dominated by the per-call spin-up the resident pool eliminates
    assert all(s > 1.0 for s in speedups.values()), speedups
    overall = geomean(list(speedups.values()))
    assert overall >= 3.0, f"warm pool speedup below target: {overall:.2f}x {speedups}"


def test_serve_throughput_on_pool_executor(results_dir):
    """32 concurrent serve queries through the persistent pool executor."""
    from repro.serve import CountRequest, CountingService, GraphRegistry, ServiceConfig

    graph = next(iter(W.pool_inputs("tiny").values()))

    async def scenario():
        registry = GraphRegistry()
        registry.register("bench", graph)
        config = ServiceConfig(executor="pool", pool_workers=2, result_cache_size=0)
        service = CountingService(registry, config=config)
        service.start()
        try:
            patterns = ["diamond", "paw", "4-star", "triangle"]
            t0 = time.perf_counter()
            responses = await asyncio.gather(*[
                service.submit(CountRequest(
                    graph="bench", pattern=patterns[i % len(patterns)],
                    use_cache=False,
                ))
                for i in range(32)
            ])
            elapsed = time.perf_counter() - t0
        finally:
            await service.stop()
        return responses, elapsed

    try:
        responses, elapsed = asyncio.run(scenario())
    finally:
        shutdown_default_pool()
    assert all(r.ok for r in responses), [r for r in responses if not r.ok]
    path = _bench_record_path("pool", results_dir)
    appender = RecordAppender(path)
    try:
        appender.append({
            "figure": "pool",
            "system": "serve-pool",
            "pattern": "mixed[diamond,paw,4-star,triangle]",
            "graph": "kron_g500-logn20",
            "status": "ok",
            "count": None,
            "seconds": elapsed,
            "queries": 32,
            "throughput_qps": 32 / elapsed,
            "unix_time": time.time(),
        })
    finally:
        appender.close()
    print(f"\nserve on pool executor: 32 queries in {elapsed:.2f}s "
          f"({32 / elapsed:.1f} qps)")
