"""Shared fixtures for the benchmark suite.

Every figure benchmark saves its measurements to ``benchmarks/results/``
as JSON; ``python -m repro.bench.report`` renders them into the tables
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def tiny_inputs():
    from repro.bench import workloads

    return workloads.ten_inputs("tiny")


@pytest.fixture(scope="session")
def kron_tiny():
    from repro.graph import datasets

    return datasets.make("kron_g500-logn20", "tiny")
